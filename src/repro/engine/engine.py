"""The :class:`RankingEngine` facade: one-call context-aware ranking.

The paper's pipeline — context capture → preference view → ranked query
results (Section 5) — previously required wiring ABox/TBox, EventSpace,
RuleRepository, Database and PreferenceView by hand.  The engine owns
that wiring behind four protocol-typed backends and a cached
request/response pipeline::

    from repro import RankRequest, RankingEngine, build_tvtouch, \
        set_breakfast_weekend_context

    world = build_tvtouch()
    set_breakfast_weekend_context(world)
    engine = RankingEngine.from_world(world)
    response = engine.rank(RankRequest(query=(
        "SELECT name, preferencescore FROM Programs "
        "WHERE preferencescore > 0.5 ORDER BY preferencescore DESC"
    )))

Repeated requests under an unchanged context are served from a
per-context-signature memo of the preference view; any context or rule
change invalidates it by construction (the signature changes).

**Thread safety.**  Every public entry point that reads or writes the
engine's knowledge base (``rank``, ``rank_in_context``,
``preference_scores``, ``explain``, ``rank_top_k``,
``install_context``, ``context_covered``) serialises on one
per-engine reentrant lock, so a
context install can never interleave with a rank — the failure the
serving hammer test reproduces on an unlocked engine is a half-cleared
dynamic context being scored and memoized under a stale signature.
Different engines never share the lock: sibling tenants rank fully in
parallel, coordinating only through the internally synchronised shared
structures (the basis pool, the compiled-KB base tier).
"""

from __future__ import annotations

import json
import threading
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, Hashable, Iterable, Mapping, Sequence

from repro.core.explain import explain_ranking, explain_score
from repro.core.kernel import ScoringKernel, score_documents_batch
from repro.core.preference_view import PreferenceView
from repro.core.problem import bind_rules
from repro.core.scorer import ContextAwareScorer
from repro.core.scoring import DocumentScore
from repro.dl.abox import ABox
from repro.dl.concepts import Concept
from repro.dl.tbox import TBox
from repro.dl.vocabulary import Individual
from repro.errors import EngineConfigError, EngineError, ScoringError
from repro.events.space import EventSpace
from repro.engine.basis import build_view_basis, shared_basis_pool
from repro.engine.cache import CacheInfo, ViewCache
from repro.engine.protocols import (
    ContextBackend,
    PreferenceBackend,
    RelevanceBackend,
    StorageBackend,
)
from repro.engine.requests import RankedItem, RankRequest, RankResponse, as_requests
from repro.reason import CompiledKB, ReasonerInfo, compiled_kb

if TYPE_CHECKING:  # pragma: no cover - types only
    from repro.engine.builder import EngineBuilder
    from repro.multiuser.group import GroupMember

__all__ = ["PreparedRank", "RankingEngine", "score_prepared_batch"]


@dataclass
class PreparedRank:
    """A rank request snapshotted under the engine lock, scorable outside it.

    :meth:`RankingEngine.prepare_rank` either answers the request on the
    spot (``response`` set — cache hit, cold path, or a shape the
    batched scorer cannot serve) or captures everything a kernel pass
    needs: the context-bound ``kernel`` (sharing the compiled candidate
    matrix with every other request over the same basis), the view
    ``signature``, the ``group_key`` batch-mates are matched on, and
    the ``fingerprint`` response caches key on.  Scoring the kernel and
    calling :meth:`complete` never touches the engine lock, so
    batch-mates from different tenants don't serialise on each other.
    """

    engine: "RankingEngine"
    request: RankRequest
    kernel: ScoringKernel | None = None
    signature: Hashable = None
    group_key: Hashable = None
    fingerprint: tuple | None = field(default=None)
    prune_documents: bool = True
    response: RankResponse | None = None

    def complete(
        self, scores_map: Mapping[str, DocumentScore] | None = None
    ) -> RankResponse:
        """The response: immediate if prepare already answered, else
        assembled lock-free from the batched scores for this kernel."""
        if self.response is not None:
            return self.response
        if scores_map is None:
            raise EngineError("a batchable PreparedRank needs its scored view")
        return self.engine._complete_prepared(self, scores_map)


def score_prepared_batch(
    prepared: Sequence[PreparedRank],
) -> tuple[list[dict[str, DocumentScore] | None], int]:
    """Score every batchable :class:`PreparedRank` in fused kernel passes.

    Kernels are grouped by compiled-candidates identity (only those may
    share a pass) and, within a group, requests whose kernels carry an
    equal :attr:`~repro.core.kernel.ScoringKernel.coalesce_key` — the
    value identity of the context-bound coefficient vector — coalesce
    onto one scored row.  The key is tenant-blind: the same context
    installed for two different tenants over a shared basis produces
    distinct view signatures but equal coefficients, so a thundering
    herd of identical contexts costs one row.  Returns the per-request
    scores maps (``None`` where ``prepare_rank`` already answered) and
    the number of kernel rows actually scored — the coalescing win is
    ``batchable_requests - rows``.
    """
    results: list[dict[str, DocumentScore] | None] = [None] * len(prepared)
    groups: dict[tuple[int, bool], list[int]] = {}
    rows = 0
    for index, item in enumerate(prepared):
        if item.kernel is not None:
            groups.setdefault(
                (id(item.kernel.candidates), item.prune_documents), []
            ).append(index)
    for indices in groups.values():
        unique: dict[Hashable, int] = {}
        kernels: list[ScoringKernel] = []
        slots: list[tuple[int, int]] = []
        for index in indices:
            item = prepared[index]
            position = unique.get(item.kernel.coalesce_key)
            if position is None:
                position = len(kernels)
                unique[item.kernel.coalesce_key] = position
                kernels.append(item.kernel)
            slots.append((index, position))
        scored = score_documents_batch(
            kernels, prune_documents=prepared[indices[0]].prune_documents
        )
        rows += len(kernels)
        maps = [{score.document: score for score in scores} for scores in scored]
        for index, position in slots:
            results[index] = maps[position]
    return results, rows


class RankingEngine:
    """The canonical public entry point for context-aware ranking.

    Engines are assembled by :class:`~repro.engine.EngineBuilder` (or
    the :meth:`from_world` / :meth:`from_config` shortcuts) — construct
    one per knowledge base and reuse it across requests; the
    preference-view cache only pays off on a live engine.

    Parameters (normally supplied by the builder)
    ---------------------------------------------
    abox / tbox / user / space:
        The knowledge base and the situated user.
    context / preferences / storage / relevance:
        The four protocol backends.  ``storage`` may be ``None`` for
        engines that never run SQL.
    target:
        The concept whose members the preference view scores.
    method / rule_threshold / prune_documents:
        Scoring configuration (see
        :class:`~repro.core.scorer.ContextAwareScorer`).
    cache_size:
        LRU bound on remembered context signatures (and on compiled
        rescoring bases).
    incremental:
        Serve context-only changes by rescoring on the cached compiled
        candidate matrix (:mod:`repro.engine.basis`) instead of
        re-binding every document.  Safe to leave on: reuse is guarded
        by a conservative ABox delta analysis.
    kb:
        The compiled reasoner (:class:`repro.reason.CompiledKB`) cold
        binds run through.  Defaults to the shared registry instance
        for the knowledge base, so several engines over one world — the
        multi-user scenario — reason each membership event once per
        knowledge epoch.
    """

    def __init__(
        self,
        *,
        abox: ABox,
        tbox: TBox,
        user: Individual,
        space: EventSpace | None,
        context: ContextBackend,
        preferences: PreferenceBackend,
        relevance: RelevanceBackend,
        target: Concept,
        storage: StorageBackend | None = None,
        method: str = "factorised",
        rule_threshold: float = 0.0,
        prune_documents: bool = True,
        cache_size: int = 16,
        incremental: bool = True,
        kb: CompiledKB | None = None,
    ):
        self.abox = abox
        self.tbox = tbox
        self.user = user
        self.space = space
        self.context = context
        self.preferences = preferences
        self.relevance = relevance
        self.storage = storage
        self.target = target
        self.method = method
        self.rule_threshold = rule_threshold
        self.prune_documents = prune_documents
        self.incremental = incremental
        self.kb = kb if kb is not None else compiled_kb(abox, tbox, space)
        #: Overlay-backed engines exchange compiled bases process-wide.
        self._shares_bases = isinstance(getattr(abox, "base", None), ABox)
        #: One reentrant lock serialises every context write and rank on
        #: *this* engine (see the module docstring); reentrant so that
        #: ``rank_in_context`` can compose install + rank atomically.
        self._lock = threading.RLock()
        self._cache = ViewCache(max_entries=cache_size)
        self._scorer = self._build_scorer(preferences.repository())
        self._view = PreferenceView(
            self._scorer, target, getattr(storage, "database", None)
        )

    # -- construction shortcuts ------------------------------------------
    @staticmethod
    def builder() -> "EngineBuilder":
        """A fresh :class:`~repro.engine.EngineBuilder`."""
        from repro.engine.builder import EngineBuilder

        return EngineBuilder()

    @classmethod
    def from_world(cls, world: object, **options: object) -> "RankingEngine":
        """An engine over a ready-made world (TVTouch, Section 5, ...).

        ``world`` is duck-typed: it must carry ``abox``, ``tbox``,
        ``user`` and ``target``, and may carry ``space``,
        ``repository``, ``database`` and ``data_table`` /
        ``id_column``.  Builder options (``method``, ``relevance``,
        ``rules`` for worlds without a repository, ...) pass through as
        keyword arguments.
        """
        return cls.builder().world(world).options(**options).build()

    @classmethod
    def from_config(cls, config: Mapping[str, object] | str | Path) -> "RankingEngine":
        """An engine from a declarative config (mapping or JSON file).

        Recognised keys: ``workload`` (currently ``"tvtouch"``),
        ``rules`` (path to a rule DSL file), ``context`` (list of
        ``CONCEPT[:PROB]`` specs), ``method``, ``rule_threshold``,
        ``prune_documents``, ``relevance``, ``mixing_weight``,
        ``cache_size``, ``incremental``.  Unknown keys are rejected.
        """
        if isinstance(config, (str, Path)):
            try:
                config = json.loads(Path(config).read_text(encoding="utf-8"))
            except (OSError, json.JSONDecodeError) as exc:
                raise EngineConfigError(f"cannot load engine config: {exc}") from exc
        if not isinstance(config, Mapping):
            raise EngineConfigError(
                f"engine config must be a mapping or a JSON file path, got {config!r}"
            )
        known = {
            "workload",
            "rules",
            "context",
            "method",
            "rule_threshold",
            "prune_documents",
            "relevance",
            "mixing_weight",
            "cache_size",
            "incremental",
        }
        unknown = set(config) - known
        if unknown:
            raise EngineConfigError(
                f"unknown engine config keys {sorted(unknown)}; known keys: {sorted(known)}"
            )

        workload = config.get("workload", "tvtouch")
        if workload != "tvtouch":
            raise EngineConfigError(
                f"unknown workload {workload!r}; this release ships 'tvtouch'"
            )
        from repro.workloads import build_tvtouch

        world = build_tvtouch()
        builder = cls.builder().world(world)
        if "rules" in config:
            from repro.rules import load_rules

            builder.preferences(load_rules(str(config["rules"])))
        relevance_options = {}
        if "mixing_weight" in config:
            relevance_options["mixing_weight"] = config["mixing_weight"]
        if "relevance" in config or relevance_options:
            builder.relevance(config.get("relevance", "mixed"), **relevance_options)
        builder.options(
            **{
                key: config[key]
                for key in (
                    "method",
                    "rule_threshold",
                    "prune_documents",
                    "cache_size",
                    "incremental",
                )
                if key in config
            }
        )
        engine = builder.build()
        context_specs = config.get("context", ())
        if context_specs:
            if not isinstance(context_specs, (list, tuple)):
                raise EngineConfigError(
                    f"'context' must be a list of CONCEPT[:PROB] specs, got {context_specs!r}"
                )
            engine.install_context(*[str(spec) for spec in context_specs])
        return engine

    # -- scoring internals ------------------------------------------------
    def _build_scorer(self, repository) -> ContextAwareScorer:
        return ContextAwareScorer(
            abox=self.abox,
            tbox=self.tbox,
            user=self.user,
            repository=repository,
            space=self.space,
            method=self.method,
            rule_threshold=self.rule_threshold,
            prune_documents=self.prune_documents,
            kb=self.kb,
        )

    def _signature(self) -> Hashable:
        return (
            self.context.signature(),
            self.tbox.revision,
            self.space.revision if self.space is not None else -1,
            self.preferences.fingerprint(),
            self.method,
            self.rule_threshold,
            self.prune_documents,
            str(self.target),
        )

    def _static_epoch(self) -> Hashable:
        """The static-knowledge component of the basis key.

        For an overlay world this is the *base* identity and epoch —
        shared by every tenant over that base, so their bases land on
        one pool key; the per-user slice is covered by the snapshot
        diff in :meth:`ViewBasis.reusable_for`.  Because the pool spans
        engines, the key must also carry the TBox and space *identity*
        (two fresh TBoxes both sit at revision 0 — revisions alone
        would alias engines over different ontologies).  The key holds
        the objects themselves: identity-hashed and kept alive by the
        pool, so recycled ``id()`` values can never alias.
        """
        base = getattr(self.abox, "base", None)
        if isinstance(base, ABox):
            return (base, base.mutation_count, self.tbox, self.space)
        return self.abox.static_mutation_count

    def _basis_key(self) -> Hashable:
        """Everything the compiled candidate matrix depends on *except*
        the dynamic context — the key of the incremental-rescoring basis."""
        return (
            self._static_epoch(),
            self.tbox.revision,
            self.space.revision if self.space is not None else -1,
            self.preferences.fingerprint(),
            self.method,
            self.rule_threshold,
            self.prune_documents,
            str(self.target),
        )

    def _incremental_scores(self, repository) -> dict[str, DocumentScore] | None:
        """Serve a signature miss from a compiled basis, if provably safe.

        Only the rule-context vector is recomputed (one membership event
        per rule); the documents x rules matrix is reused as compiled.
        Returns ``None`` when no basis exists or the dynamic delta might
        have touched document events or target membership.
        """
        if not self.incremental:
            return None
        key = self._basis_key()
        basis = self._cache.basis_get(key)
        if basis is None and self._shares_bases:
            # Another tenant over the same base may have compiled the
            # matrix already; the reuse guard below decides safety.
            basis = shared_basis_pool().get(key)
        if basis is None or not basis.reusable_for(
            self.abox, self.tbox, self.target, kb=self.kb
        ):
            return None
        bindings = bind_rules(
            self.abox, self.tbox, self.user, [rule for rule in repository], self.space,
            kb=self.kb,
        )
        try:
            kernel = basis.kernel.with_context(bindings)
        except ScoringError:  # pragma: no cover - fingerprint should prevent this
            return None
        scored = kernel.score_documents(prune_documents=self.prune_documents)
        self._cache.note_context_refresh()
        return {score.document: score for score in scored}

    def _sync_scorer(self):
        """Rebuild the scorer when the preference backend swapped repositories."""
        repository = self.preferences.repository()
        if repository is not self._scorer.repository:
            self._scorer = self._build_scorer(repository)
            self._view.scorer = self._scorer
        return repository

    def _refresh_view(self) -> tuple[dict[str, DocumentScore], bool]:
        """The scored view for the current signature: cached, rescored
        incrementally from a basis, or computed cold."""
        repository = self._sync_scorer()
        key = self._signature()
        cached = self._cache.get(key)
        if cached is not None:
            self._view.load_scores(cached)
            return cached, True
        scores = self._incremental_scores(repository)
        if scores is not None:
            self._view.load_scores(scores)
        else:
            self._view.refresh()
            scores = self._view.scores_map()
            kernel = self._scorer.last_kernel
            if self.incremental and kernel is not None:
                basis_key = self._basis_key()
                basis = build_view_basis(self.abox, kernel)
                self._cache.basis_put(basis_key, basis)
                if self._shares_bases:
                    shared_basis_pool().put(basis_key, basis)
        self._cache.put(key, scores)
        return scores, False

    def _scores_for(
        self, documents: Iterable[str], view_scores: Mapping[str, DocumentScore]
    ) -> Mapping[str, DocumentScore]:
        """View scores for ``documents``; non-members are scored ad hoc.

        When ``documents`` *is* the view (the whole-target request
        shape), the view map itself is returned — downstream consumers
        only read it, and the copy would cost O(candidates) per
        request."""
        if documents is view_scores:
            return view_scores
        missing = [doc for doc in documents if doc not in view_scores]
        scores = {doc: view_scores[doc] for doc in documents if doc in view_scores}
        if missing:
            for score in self._scorer.score(missing):
                scores[score.document] = score
        return scores

    # -- the request/response pipeline ------------------------------------
    def rank(self, request: RankRequest | str | None = None) -> RankResponse:
        """Answer one ranking request.

        Accepts a :class:`RankRequest`, a bare SQL string (shorthand
        for ``RankRequest(query=...)``), or nothing (rank every member
        of the target concept by preference).

        SQL requests gate the ranked items by the query answer when the
        projection includes the storage backend's id column; without it
        the response carries the raw ``result`` only (empty ``items``),
        because the query's filter cannot be mapped back onto documents.
        """
        if request is None:
            request = RankRequest()
        elif isinstance(request, str):
            request = RankRequest(query=request)
        elif not isinstance(request, RankRequest):
            raise EngineError(f"expected RankRequest or SQL string, got {request!r}")
        with self._lock:
            return self._rank_locked(request)

    def _rank_locked(self, request: RankRequest) -> RankResponse:
        self.context.refresh()
        # A relevance backend that scores on its own (e.g. group
        # aggregation) opts out of the engine's preference view for
        # plain document-list requests; SQL and target-member requests
        # still need the view (for `preferencescore` / the candidates).
        needs_view = (
            getattr(self.relevance, "uses_preference_view", True)
            or request.query is not None
            or request.documents is None
        )
        if needs_view:
            view_scores, from_cache = self._refresh_view()
        else:
            view_scores, from_cache = {}, False

        result = None
        query_scores = request.query_score_map
        id_less_query = False
        if request.query is not None:
            if self.storage is None:
                raise EngineError(
                    "this engine has no storage backend; build one with "
                    ".storage(database, data_table) to run SQL requests"
                )
            result = self.storage.execute(request.query, self._view)
            ids = self.storage.document_ids(result)
            if ids is not None:
                query_scores = {document: 1.0 for document in ids}
            else:
                # The projection carries no document ids (e.g. the
                # paper's `SELECT name, preferencescore ...`), so the
                # query's answer cannot be mapped back onto ranked
                # items.  The response ships the raw result and an
                # empty item list rather than a ranking the WHERE
                # clause never filtered — select the id column to get
                # gated items.
                id_less_query = True

        if id_less_query:
            documents = []
        elif request.documents is not None:
            documents = list(dict.fromkeys(request.documents))
        elif query_scores is not None:
            documents = sorted(set(view_scores) | set(query_scores))
        else:
            # The whole-target shape: the ranking key is a total order,
            # so the combine step re-orders regardless — iterate the
            # view directly instead of sorting O(n log n) names.
            documents = view_scores
        if needs_view:
            document_scores = self._scores_for(documents, view_scores)
            # Captured inside the lock, so the epoch/signature pair can
            # never describe a state other than the one just scored —
            # response caches (repro.cache) key and order on it.
            fingerprint = (self.abox.mutation_count, self._signature())
        else:
            document_scores = {}
            fingerprint = None

        preference_scores = {name: score.value for name, score in document_scores.items()}
        items = self._combine_items(preference_scores, query_scores, documents, request)

        explanation = None
        if request.explain:
            explanation = self._explain_items(items, document_scores)

        return RankResponse(
            request=request,
            items=tuple(items),
            from_cache=from_cache,
            explanation=explanation,
            result=result,
            fingerprint=fingerprint,
        )

    def rank_many(
        self,
        requests: Iterable[RankRequest | str],
        contexts: Sequence[Iterable[str] | None] | None = None,
    ) -> list[RankResponse]:
        """Answer a batch of requests through one fused kernel pass.

        Each request is :meth:`prepare_rank`-snapshotted in order (so
        per-request ``contexts`` deltas interleave exactly as a
        sequential install+rank loop would), then every snapshot
        sharing a compiled candidate matrix is scored in a single
        batched pass and completed in order.  Under an unchanged
        context the whole batch still costs one view computation (the
        signature cache absorbs repeats); with per-request contexts the
        batch pays one matrix pass instead of N.
        """
        request_list = as_requests(requests)
        if contexts is None:
            specs_list: list[Iterable[str] | None] = [None] * len(request_list)
        else:
            specs_list = list(contexts)
            if len(specs_list) != len(request_list):
                raise EngineError(
                    f"rank_many got {len(request_list)} requests but "
                    f"{len(specs_list)} context deltas"
                )
        prepared = [
            self.prepare_rank(specs, request)
            for specs, request in zip(specs_list, request_list)
        ]
        scored, _rows = score_prepared_batch(prepared)
        return [item.complete(scores) for item, scores in zip(prepared, scored)]

    def prepare_rank(
        self,
        specs: Iterable[str] | None = None,
        request: RankRequest | str | None = None,
        *,
        tick: str = "ctx",
    ) -> PreparedRank:
        """Snapshot a request under the lock; score it outside.

        Installs ``specs`` (when given) and captures the context-bound
        kernel plus view signature atomically, then releases the lock —
        the expensive matrix pass happens in :func:`score_prepared_batch`
        / :meth:`PreparedRank.complete` without serialising batch-mates
        on this engine.  Falls back to answering immediately (inside
        the lock, ``response`` set) whenever the batched path cannot
        reproduce the sequential result exactly: SQL requests,
        relevance backends that bypass the preference view, view-cache
        hits, cold starts with no reusable basis, or requests naming
        documents outside the compiled candidate set.
        """
        if request is None:
            request = RankRequest()
        elif isinstance(request, str):
            request = RankRequest(query=request)
        elif not isinstance(request, RankRequest):
            raise EngineError(f"expected RankRequest or SQL string, got {request!r}")
        with self._lock:
            if specs is not None:
                self.install_context(*specs, tick=tick)
            batchable = (
                self.incremental
                and request.query is None
                and getattr(self.relevance, "uses_preference_view", True)
            )
            if not batchable:
                return PreparedRank(
                    engine=self, request=request, response=self._rank_locked(request)
                )
            self.context.refresh()
            repository = self._sync_scorer()
            key = self._signature()
            if key in self._cache:
                # Uncounted probe: _rank_locked re-reads the entry and
                # records the one hit the sequential path would.
                return PreparedRank(
                    engine=self, request=request, response=self._rank_locked(request)
                )
            basis_key = self._basis_key()
            basis = self._cache.basis_get(basis_key)
            if basis is None and self._shares_bases:
                basis = shared_basis_pool().get(basis_key)
            if basis is None or not basis.reusable_for(
                self.abox, self.tbox, self.target, kb=self.kb
            ):
                # Cold (or knowledge-delta) path: compute under the
                # lock like a plain rank, which also compiles and
                # publishes the basis later batch-mates will share.
                return PreparedRank(
                    engine=self, request=request, response=self._rank_locked(request)
                )
            bindings = bind_rules(
                self.abox, self.tbox, self.user, [rule for rule in repository],
                self.space, kb=self.kb,
            )
            try:
                kernel = basis.kernel.with_context(bindings)
            except ScoringError:  # pragma: no cover - fingerprint should prevent this
                return PreparedRank(
                    engine=self, request=request, response=self._rank_locked(request)
                )
            named = []
            if request.documents is not None:
                named.extend(request.documents)
            if request.query_score_map is not None:
                named.extend(request.query_score_map)
            if named:
                names = set(kernel.names)
                if any(document not in names for document in named):
                    # The sequential path would score these ad hoc
                    # through the engine's scorer — lock-bound work the
                    # batched completion must not do.
                    return PreparedRank(
                        engine=self, request=request, response=self._rank_locked(request)
                    )
            return PreparedRank(
                engine=self,
                request=request,
                kernel=kernel,
                signature=key,
                group_key=basis_key,
                fingerprint=(self.abox.mutation_count, key),
                prune_documents=self.prune_documents,
            )

    def _combine_items(
        self,
        preference_scores: Mapping[str, float],
        query_scores: Mapping[str, float] | None,
        documents: Sequence[str],
        request: RankRequest,
    ) -> list[RankedItem]:
        """The relevance tail shared by the sequential and batched paths.

        A top-k request takes the backend's ``combine_top_k`` shortcut
        when it offers one — heap selection under the same total order
        as the full ranking, so items, positions and tie-breaks are
        identical to ``combine(...)[:k]`` without sorting (or
        constructing) the candidates the response never includes.
        """
        if request.top_k is not None:
            fast = getattr(self.relevance, "combine_top_k", None)
            if fast is not None:
                return fast(preference_scores, query_scores, documents, request.top_k)
        items = self.relevance.combine(preference_scores, query_scores, documents)
        if request.top_k is not None:
            items = items[: request.top_k]
        return items

    def _complete_prepared(
        self, prepared: PreparedRank, scores_map: Mapping[str, DocumentScore]
    ) -> RankResponse:
        """Assemble a prepared request's response from batched scores.

        Runs without the engine lock: the view cache is internally
        locked, the kernel and scores are immutable, and the relevance
        backends on this path are pure functions of their inputs.
        Mirrors the tail of :meth:`_rank_locked` for the shapes
        :meth:`prepare_rank` admits (no SQL, view-backed relevance,
        documents within the compiled candidate set).
        """
        request = prepared.request
        self._cache.note_context_refresh()
        self._cache.put(prepared.signature, scores_map)
        query_scores = request.query_score_map
        if request.documents is not None:
            documents = list(dict.fromkeys(request.documents))
        elif query_scores is not None:
            documents = sorted(set(scores_map) | set(query_scores))
        else:
            # Whole-target shape: combine re-orders under a total-order
            # key, so the batched view is iterated as-is — no name sort
            # and no O(candidates) map copy per coalesced mate.
            documents = scores_map
        if documents is scores_map:
            document_scores: Mapping[str, DocumentScore] = scores_map
        else:
            document_scores = {
                document: scores_map[document]
                for document in documents
                if document in scores_map
            }
        preference_scores = {
            name: score.value for name, score in document_scores.items()
        }
        items = self._combine_items(preference_scores, query_scores, documents, request)
        explanation = None
        if request.explain:
            explanation = self._explain_items(items, document_scores)
        return RankResponse(
            request=request,
            items=tuple(items),
            from_cache=False,
            explanation=explanation,
            result=None,
            fingerprint=prepared.fingerprint,
        )

    def rank_in_context(
        self,
        specs: Iterable[str] | None = None,
        request: RankRequest | str | None = None,
        *,
        tick: str = "ctx",
    ) -> RankResponse:
        """Atomically install a context delta, then rank.

        The serving primitive: ``specs`` (``CONCEPT[:PROB]`` strings,
        replacing the current dynamic context; ``None`` keeps it)
        and the rank run under one hold of the engine lock, so no
        concurrent request can observe — or score under — a
        half-installed context.
        """
        with self._lock:
            if specs is not None:
                self.install_context(*specs, tick=tick)
            return self.rank(request)

    def _explain_items(
        self,
        items: Sequence[RankedItem],
        document_scores: Mapping[str, DocumentScore],
    ) -> str:
        """Per-rule motivations for the preference part, in item order."""
        ordered = [
            document_scores[item.document]
            for item in items
            if item.document in document_scores
        ]
        return explain_ranking(ordered, self.preferences.repository())

    # -- conveniences ------------------------------------------------------
    def rank_top_k(self, k: int, documents: Sequence[str] | None = None) -> list[DocumentScore]:
        """The best ``k`` documents by preference, on the kernel's top-k path.

        Bypasses the preference-view cache: candidates are bound fresh
        and ranked with the Section 6 upper-bound prune
        (:meth:`repro.core.kernel.ScoringKernel.rank_top_k`), so
        documents that cannot enter the top k are abandoned mid-score.
        Use :meth:`rank` with ``RankRequest(top_k=...)`` instead when
        repeated requests should share the cached view.
        """
        with self._lock:
            self.context.refresh()
            self._sync_scorer()
            if documents is None:
                return self._view.rank_top_k(k)
            return self._scorer.rank_top_k(documents, k)

    def preference_scores(self) -> dict[str, float]:
        """The (cached) preference view as plain ``{document: score}``."""
        with self._lock:
            self.context.refresh()
            view_scores, _cached = self._refresh_view()
            return {name: score.value for name, score in view_scores.items()}

    def explain(self, document: str) -> str:
        """One document's per-rule motivation under the current context."""
        with self._lock:
            self.context.refresh()
            view_scores, _cached = self._refresh_view()
            scores = self._scores_for([document], view_scores)
            return explain_score(scores[document], self.preferences.repository())

    def view_fingerprint(self) -> tuple:
        """The ``(knowledge epoch, view signature)`` pair, atomically.

        The signature covers everything a scored view depends on —
        context rendering, TBox/space revisions, rule fingerprint,
        scoring configuration, target — and the epoch
        (:attr:`ABox.mutation_count`) orders successive states of one
        engine, so observers that learn fingerprints out of band (the
        response-cache ledger in :mod:`repro.cache`) can apply them
        newest-wins regardless of thread scheduling.
        """
        with self._lock:
            return (self.abox.mutation_count, self._signature())

    def context_covered(self) -> bool:
        """Does any rule apply in the current context? (Section 4.1.)"""
        with self._lock:
            return self.preferences.repository().covers_context(
                self.abox, self.tbox, self.user
            )

    def install_context(self, *specs: str, tick: str = "ctx") -> None:
        """Install ``CONCEPT[:PROB]`` specs through the context backend.

        Only available when the context backend supports installation
        (:class:`~repro.engine.backends.AboxContext` does).
        """
        install = getattr(self.context, "install", None)
        if install is None:
            raise EngineError(
                f"context backend {type(self.context).__name__} does not support install()"
            )
        with self._lock:
            install(self.user, specs, tick=tick)

    def as_member(self, name: str) -> "GroupMember":
        """This engine's user as a :class:`~repro.multiuser.GroupMember`.

        Plugs the engine into :class:`~repro.multiuser.GroupRanker` /
        :class:`~repro.engine.relevance.GroupRelevance` for the
        Section 6 multi-user extension.
        """
        from repro.multiuser.group import GroupMember

        return GroupMember(name, self._scorer)

    @property
    def view(self) -> PreferenceView:
        """The engine's preference view (attached to SQL sessions)."""
        return self._view

    # -- cache management --------------------------------------------------
    def cache_info(self) -> CacheInfo:
        """Hit/miss counters of the preference-view cache."""
        return self._cache.info()

    def reasoner_info(self) -> ReasonerInfo:
        """Cache counters of the compiled reasoner behind cold binds."""
        return self.kb.info()

    def invalidate_cache(self) -> None:
        """Drop every memoized view (the next request recomputes)."""
        with self._lock:
            self._cache.invalidate()

    def __repr__(self) -> str:
        info = self._cache.info()
        return (
            f"RankingEngine(target={self.target}, method={self.method!r}, "
            f"relevance={getattr(self.relevance, 'name', type(self.relevance).__name__)!r}, "
            f"cache={info.hits}h/{info.misses}m)"
        )
