"""The incremental-rescoring basis: context deltas without re-binding.

Binding cost is dominated by the documents x rules sweep that computes
every candidate's preference events (:func:`repro.core.problem.bind_documents`).
But those events read the *documents'* side of the knowledge base; a
context change — dynamic assertions about the situated user — normally
leaves them untouched.  A :class:`ViewBasis` therefore snapshots the
kernel compiled on a cold refresh together with the dynamic assertions
that held at compile time (the assertion objects themselves — frozen,
hashable, structurally compared — so the snapshot is one cheap set
build on the cold path).

:meth:`ViewBasis.reusable_for` diffs the dynamic assertions, expands
the touched individuals to everything that can *reach* them through
role edges (their membership events may embed the changed facts), and
reuses the matrix only when that affected set neither intersects the
candidates' support closure (everything reachable *from* a candidate —
the closed world its preference and target-membership events can read)
nor (possibly) belongs to the target concept.  Anything else falls
back to a cold re-bind; the guard is conservative, never unsound.

Both closures run over the *current* role assertions, at reuse time
rather than on the cold path.  That is sound under the basis key:
static role edges cannot change without bumping the static mutation
epoch (a different basis), and a dynamic edge that appeared or
vanished since compile time is itself part of the snapshot delta — its
endpoints are in the touched set, and every candidate is in its own
support closure, so any delta that could rewire reachability around
the candidates is caught before the closures are trusted.
"""

from __future__ import annotations

import threading
from collections import OrderedDict, deque
from dataclasses import dataclass
from typing import TYPE_CHECKING, Hashable, Iterable

from repro.core.kernel import ScoringKernel
from repro.dl.abox import ABox, ConceptAssertion
from repro.dl.concepts import Concept
from repro.dl.instances import membership_event
from repro.dl.tbox import TBox

if TYPE_CHECKING:  # pragma: no cover - types only
    from repro.reason import CompiledKB

__all__ = [
    "ViewBasis",
    "build_view_basis",
    "dynamic_snapshot",
    "support_closure",
    "shared_basis_pool",
    "SharedBasisPool",
]


def dynamic_snapshot(abox: ABox) -> frozenset:
    """The dynamic assertions as a diffable set (the objects themselves).

    Served from the ABox's incrementally maintained dynamic set — O(of
    the dynamic context), not a scan over the whole knowledge base.

    For a :class:`~repro.dl.abox.LayeredABox` the snapshot is the whole
    overlay (static per-user facts included): the static epoch of the
    basis key only covers the shared base, so everything per-user must
    be part of the diffable delta — that is what lets one tenant's
    compiled basis be (guardedly) reused by a sibling tenant.
    """
    overlay_snapshot = getattr(abox, "overlay_snapshot", None)
    if overlay_snapshot is not None:
        return overlay_snapshot()
    return abox.dynamic_assertions()


def support_closure(
    abox: ABox,
    names: Iterable[str],
    adjacency: dict[str, list[str]] | None = None,
) -> frozenset[str]:
    """``names`` plus everything reachable from them via role assertions.

    Membership events recurse through role successors
    (``EXISTS R.C`` / ``FORALL R.C``), so a document's events can only
    read assertions about individuals in this closure.  Pass a
    prebuilt forward ``adjacency`` (the compiled reasoner caches one
    per epoch) to skip the role-table scan.
    """
    if adjacency is None:
        adjacency = {}
        for assertion in abox.role_assertions():
            adjacency.setdefault(assertion.source.name, []).append(assertion.target.name)
    return frozenset(_reachable(adjacency, names))


def _reverse_reachable(
    abox: ABox,
    targets: set[str],
    reverse: dict[str, list[str]] | None = None,
) -> set[str]:
    """``targets`` plus every individual that can reach them via roles."""
    if reverse is None:
        reverse = {}
        for assertion in abox.role_assertions():
            reverse.setdefault(assertion.target.name, []).append(assertion.source.name)
    return _reachable(reverse, targets)


def _reachable(adjacency: dict[str, list[str]], names: Iterable[str]) -> set[str]:
    seen = set(names)
    queue = deque(seen)
    while queue:
        for neighbour in adjacency.get(queue.popleft(), ()):
            if neighbour not in seen:
                seen.add(neighbour)
                queue.append(neighbour)
    return seen


def _touched_names(delta: Iterable) -> set[str]:
    """Individuals named by changed assertions."""
    touched: set[str] = set()
    for assertion in delta:
        if isinstance(assertion, ConceptAssertion):
            touched.add(assertion.individual.name)
        else:
            touched.add(assertion.source.name)
            touched.add(assertion.target.name)
    return touched


@dataclass
class ViewBasis:
    """A compiled kernel plus the evidence needed to reuse it safely."""

    kernel: ScoringKernel
    snapshot: frozenset

    def reusable_for(
        self,
        abox: ABox,
        tbox: TBox,
        target: Concept,
        kb: "CompiledKB | None" = None,
    ) -> bool:
        """May the compiled matrix serve the ABox's *current* state?

        True when the dynamic delta since compile time provably cannot
        have changed any candidate's preference events or the target
        concept's membership.  With a ``kb`` the membership probes run
        memoised on the compiled reasoner (correctly so: the probes ask
        about the ABox's *current* state, which is exactly the KB's
        current epoch).
        """
        delta = self.snapshot ^ dynamic_snapshot(abox)
        if not delta:
            return True
        forward = reverse = None
        if kb is not None:
            forward, reverse = kb.session().reachability_maps()
        affected = _reverse_reachable(abox, _touched_names(delta), reverse)
        if affected & support_closure(abox, self.kernel.names, forward):
            return False
        # An affected individual outside the support set was not a view
        # member at compile time (members are in the support); it must
        # also not have *become* a possible target member since.
        if kb is not None:
            check = kb.membership_event
        else:
            check = lambda name, concept: membership_event(abox, tbox, name, concept)  # noqa: E731
        for name in affected:
            if not check(name, target).is_impossible:
                return False
        return True


def build_view_basis(abox: ABox, kernel: ScoringKernel) -> ViewBasis:
    """Snapshot a freshly compiled kernel as a reusable basis.

    Deliberately cheap — it runs on every cold refresh; the closures
    are deferred to :meth:`ViewBasis.reusable_for` on the (already
    winning) incremental path.
    """
    return ViewBasis(kernel=kernel, snapshot=dynamic_snapshot(abox))


class _PoolStripe:
    """One independently locked LRU segment of a :class:`SharedBasisPool`."""

    __slots__ = ("lock", "entries", "max_entries", "hits", "misses")

    def __init__(self, max_entries: int):
        self.lock = threading.Lock()
        self.entries: "OrderedDict[Hashable, ViewBasis]" = OrderedDict()
        self.max_entries = max_entries
        self.hits = 0
        self.misses = 0


class SharedBasisPool:
    """Cross-engine pool of compiled bases for overlay-backed tenants.

    Engines over overlays of the same base world produce byte-identical
    candidate matrices whenever their static epoch, rules and scorer
    configuration agree — the per-user delta is exactly the snapshot
    the reuse guard already diffs.  Pooling the bases process-wide
    means tenant #2's first request rescans nothing: it rescores on
    tenant #1's compiled matrix (after the guard proves the overlays
    interchangeable).

    Keys embed the base ``ABox`` object itself (identity-hashed), so a
    pooled entry pins its world — the bounded LRU keeps that from
    accumulating, and a live key can never collide with a recycled
    ``id()``.

    The pool is **lock-striped**: keys route by hash to one of
    ``stripes`` independently locked LRU segments, so a whole tenant
    fleet hitting the pool on every request (the serving hot path)
    contends only per stripe, not on one global lock.  A key always
    maps to the same stripe, which is all the LRU bookkeeping needs.
    """

    def __init__(self, max_entries: int = 32, stripes: int = 8):
        if stripes < 1:
            raise ValueError(f"pool needs at least one stripe, got {stripes!r}")
        if max_entries < 1:
            raise ValueError(f"pool needs at least one entry, got {max_entries!r}")
        self.max_entries = max_entries
        # Pooled entries pin their base worlds, so max_entries must be
        # an exact bound: distribute floor(max/stripes) per stripe with
        # the remainder spread, clamping stripes so none has capacity 0.
        self.stripes = min(stripes, max_entries)
        base_capacity, extra = divmod(max_entries, self.stripes)
        self._stripes = tuple(
            _PoolStripe(base_capacity + (1 if index < extra else 0))
            for index in range(self.stripes)
        )

    def _stripe_for(self, key: Hashable) -> _PoolStripe:
        return self._stripes[hash(key) % self.stripes]

    def get(self, key: Hashable) -> ViewBasis | None:
        stripe = self._stripe_for(key)
        with stripe.lock:
            basis = stripe.entries.get(key)
            if basis is None:
                stripe.misses += 1
                return None
            stripe.entries.move_to_end(key)
            stripe.hits += 1
            return basis

    def put(self, key: Hashable, basis: ViewBasis) -> None:
        stripe = self._stripe_for(key)
        with stripe.lock:
            stripe.entries[key] = basis
            stripe.entries.move_to_end(key)
            while len(stripe.entries) > stripe.max_entries:
                stripe.entries.popitem(last=False)

    def clear(self) -> None:
        for stripe in self._stripes:
            with stripe.lock:
                stripe.entries.clear()

    @property
    def hits(self) -> int:
        return sum(stripe.hits for stripe in self._stripes)

    @property
    def misses(self) -> int:
        return sum(stripe.misses for stripe in self._stripes)

    def __len__(self) -> int:
        return sum(len(stripe.entries) for stripe in self._stripes)


#: The process-wide pool every overlay-backed engine shares.
_SHARED_POOL = SharedBasisPool()


def shared_basis_pool() -> SharedBasisPool:
    """The process-wide :class:`SharedBasisPool`."""
    return _SHARED_POOL
