"""Frozen request/response dataclasses for the ranking pipeline.

A :class:`RankRequest` names *what* to rank — a SQL query (the paper's
Section 5 pipeline), an explicit candidate list, graded IR scores, or
nothing at all (rank every member of the target concept) — plus
response shaping (``top_k``, ``explain``).  A :class:`RankResponse`
carries the ranked items, the raw SQL result when a query ran, the
explanation when asked for, and whether the preference view came from
the engine's cache.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator, Mapping

from repro.errors import EngineError
from repro.reporting.tables import TextTable, ranking_table
from repro.storage.sql import ResultSet

__all__ = ["RankRequest", "RankResponse", "RankedItem"]


@dataclass(frozen=True)
class RankedItem:
    """One ranked document: headline score plus its two parts.

    ``query_dependent`` is ``None`` for query-independent requests (no
    query part existed, as opposed to it scoring zero).
    """

    document: str
    score: float
    preference: float
    query_dependent: float | None = None
    position: int = 0

    def __str__(self) -> str:
        parts = f"{self.document}: {self.score:.4f}"
        if self.query_dependent is not None:
            parts += f" (qd={self.query_dependent:.3f}, pref={self.preference:.3f})"
        return parts


@dataclass(frozen=True)
class RankRequest:
    """One ranking request against a :class:`RankingEngine`.

    Parameters
    ----------
    query:
        A SQL query to run through the storage backend with the
        ``preferencescore`` column attached (the paper's pipeline).
    documents:
        Explicit candidate ids to rank (any iterable; stored as a
        tuple).  Without ``query`` and ``documents`` the engine ranks
        every member of its target concept.
    query_scores:
        Graded query-dependent scores (e.g. from an IR ranker), fed to
        the engine's relevance backend.  Mutually exclusive with
        ``query`` (a query *produces* its own scores).
    top_k:
        Truncate the response to the best ``top_k`` items.
    explain:
        Thread through to :mod:`repro.core.explain`: the response's
        ``explanation`` carries per-rule motivations for every item.
    """

    query: str | None = None
    documents: tuple[str, ...] | None = None
    query_scores: tuple[tuple[str, float], ...] | None = None
    top_k: int | None = None
    explain: bool = False

    def __post_init__(self) -> None:
        if self.documents is not None and not isinstance(self.documents, tuple):
            object.__setattr__(self, "documents", tuple(self.documents))
        if self.query_scores is not None:
            if isinstance(self.query_scores, Mapping):
                pairs = self.query_scores.items()
            else:
                pairs = (tuple(pair) for pair in self.query_scores)
            object.__setattr__(
                self,
                "query_scores",
                tuple(sorted((str(doc), float(score)) for doc, score in pairs)),
            )
        if self.query is not None and self.query_scores is not None:
            raise EngineError(
                "a request cannot carry both a SQL query and explicit query_scores"
            )
        if self.top_k is not None and self.top_k < 1:
            raise EngineError(f"top_k must be a positive integer, got {self.top_k!r}")

    @property
    def query_score_map(self) -> dict[str, float] | None:
        """``query_scores`` as a dict (None when absent)."""
        if self.query_scores is None:
            return None
        return dict(self.query_scores)


@dataclass(frozen=True)
class RankResponse:
    """The ranked answer to one :class:`RankRequest`.

    ``fingerprint`` is the engine's ``(knowledge epoch, view signature)``
    pair captured *inside* the rank critical section — the exact state
    this response was scored under.  Response caches key on it: two
    responses with equal fingerprints (same tenant engine) are
    byte-identical by construction, and any context, rule or knowledge
    change produces a new fingerprint.  ``None`` when the request
    bypassed the preference view (e.g. group relevance over an explicit
    candidate list) — such responses are not safely cacheable by state.
    """

    request: RankRequest
    items: tuple[RankedItem, ...]
    from_cache: bool = False
    explanation: str | None = None
    result: ResultSet | None = field(default=None, compare=False)
    fingerprint: tuple | None = field(default=None, compare=False, repr=False)

    def __iter__(self) -> Iterator[RankedItem]:
        return iter(self.items)

    def __len__(self) -> int:
        return len(self.items)

    def top(self) -> RankedItem | None:
        """The best item (None for an empty ranking)."""
        return self.items[0] if self.items else None

    def scores(self) -> dict[str, float]:
        """Headline scores keyed by document id."""
        return {item.document: item.score for item in self.items}

    def documents(self) -> list[str]:
        """Document ids, best first."""
        return [item.document for item in self.items]

    def to_table(self, names: Mapping[str, str] | None = None) -> TextTable:
        """Render through the shared :func:`repro.reporting.ranking_table`."""
        return ranking_table(self.items, names=names)

    def render(self, names: Mapping[str, str] | None = None) -> str:
        """The ranking as aligned text (one code path with CLI/examples)."""
        return self.to_table(names=names).render()


def as_requests(requests: Iterable[RankRequest | str]) -> list[RankRequest]:
    """Normalise a batch: bare SQL strings become query requests."""
    normalised = []
    for request in requests:
        if isinstance(request, str):
            request = RankRequest(query=request)
        elif not isinstance(request, RankRequest):
            raise EngineError(f"expected RankRequest or SQL string, got {request!r}")
        normalised.append(request)
    return normalised
