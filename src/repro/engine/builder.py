"""Fluent assembly and validation of :class:`RankingEngine` instances.

The builder is where misconfiguration dies: :meth:`EngineBuilder.build`
checks every seam (knowledge base present, rules present, target known,
method and relevance resolvable, thresholds in range) and raises
:class:`~repro.errors.EngineConfigError` with an actionable message —
instead of letting a half-wired engine fail mid-request.
"""

from __future__ import annotations

from repro.core.scoring import SCORING_METHODS
from repro.dl.abox import ABox
from repro.dl.concepts import Concept
from repro.dl.parser import parse_concept
from repro.dl.tbox import TBox
from repro.dl.vocabulary import Individual
from repro.errors import EngineConfigError
from repro.events.space import EventSpace
from repro.reason import CompiledKB
from repro.rules.repository import RuleRepository
from repro.storage.database import Database
from repro.engine.backends import AboxContext, DatabaseStorage, RepositoryPreferences
from repro.engine.protocols import (
    ContextBackend,
    PreferenceBackend,
    StorageBackend,
)
from repro.engine.relevance import resolve_relevance

__all__ = ["EngineBuilder"]


class EngineBuilder:
    """Builds a validated :class:`~repro.engine.RankingEngine`.

    Examples
    --------
    >>> from repro.workloads import build_tvtouch, set_breakfast_weekend_context
    >>> world = build_tvtouch()
    >>> set_breakfast_weekend_context(world)
    >>> engine = (EngineBuilder()
    ...           .world(world)
    ...           .relevance("mixed", mixing_weight=0.3)
    ...           .build())
    >>> round(engine.preference_scores()["channel5_news"], 4)
    0.6006
    """

    def __init__(self) -> None:
        self._abox: ABox | None = None
        self._tbox: TBox | None = None
        self._user: Individual | None = None
        self._space: EventSpace | None = None
        self._context: ContextBackend | None = None
        self._preferences: PreferenceBackend | None = None
        self._storage: StorageBackend | None = None
        self._relevance_spec: object = "gated"
        self._relevance_options: dict[str, object] = {}
        self._target: Concept | None = None
        self._method: str = "factorised"
        self._rule_threshold: float = 0.0
        self._prune_documents: bool = True
        self._cache_size: int = 16
        self._incremental: bool = True
        self._kb: CompiledKB | None = None

    # -- knowledge base ----------------------------------------------------
    def knowledge(
        self,
        abox: ABox,
        tbox: TBox,
        user: Individual | str,
        space: EventSpace | None = None,
    ) -> "EngineBuilder":
        """The knowledge base and situated user the engine ranks for."""
        self._abox = abox
        self._tbox = tbox
        self._user = Individual(user) if isinstance(user, str) else user
        self._space = space
        return self

    def world(self, world: object) -> "EngineBuilder":
        """Pull every available piece from a ready-made world object.

        Reads ``abox``/``tbox``/``user`` (required), plus ``space``,
        ``target``, ``repository``, and — when the world carries a
        ``database`` with a ``data_table`` — the storage backend.

        Overlay worlds are accepted too: an object exposing an
        ``overlay``/``base`` pair (e.g. a :class:`repro.tenants.UserSession`,
        or anything wrapping a :class:`~repro.dl.abox.LayeredABox`)
        ranks over the overlay, with every attribute the wrapper does
        not carry itself resolved from the base world.
        """
        overlay = getattr(world, "overlay", None)
        base = getattr(world, "base", None) if isinstance(overlay, ABox) else None

        def pick(attribute: str):
            value = getattr(world, attribute, None)
            if value is None and base is not None:
                value = getattr(base, attribute, None)
            return value

        if isinstance(overlay, ABox):
            # An overlay/base pair: the overlay is the knowledge the
            # engine ranks over; the base world fills in the rest.
            abox, tbox, user = overlay, pick("tbox"), pick("user")
            if tbox is None or user is None:
                missing = "tbox" if tbox is None else "user"
                raise EngineConfigError(
                    f"overlay world {type(world).__name__} resolves no "
                    f"{missing!r} (checked the object and its base); pass "
                    "the knowledge base with .knowledge(...) instead"
                )
        else:
            for attribute in ("abox", "tbox", "user"):
                if not hasattr(world, attribute):
                    raise EngineConfigError(
                        f"world {type(world).__name__} has no {attribute!r}; "
                        "pass the knowledge base with .knowledge(...) instead — "
                        "or, for per-user setups over one shared world, mint "
                        "ready-made overlay sessions with repro.tenants.TenantRegistry"
                    )
            abox, tbox, user = world.abox, world.tbox, world.user

        self.knowledge(abox, tbox, user, pick("space"))
        target = pick("target")
        if target is not None:
            self.target(target)
        repository = pick("repository")
        if repository is not None:
            self.preferences(repository)
        database, data_table = pick("database"), pick("data_table")
        if database is not None and data_table is not None:
            self.storage(database, data_table, pick("id_column") or "id")
        return self

    # -- backends ----------------------------------------------------------
    def context(self, backend: ContextBackend) -> "EngineBuilder":
        """A custom context backend (default: :class:`AboxContext`)."""
        if not callable(getattr(backend, "signature", None)) or not callable(
            getattr(backend, "refresh", None)
        ):
            raise EngineConfigError(
                f"context backend {backend!r} must provide signature() and refresh()"
            )
        self._context = backend
        return self

    def preferences(
        self, source: PreferenceBackend | RuleRepository
    ) -> "EngineBuilder":
        """The preference rules: a repository or a full backend."""
        if isinstance(source, RuleRepository):
            self._preferences = RepositoryPreferences(source)
        elif callable(getattr(source, "repository", None)) and callable(
            getattr(source, "fingerprint", None)
        ):
            self._preferences = source
        else:
            raise EngineConfigError(
                f"preferences must be a RuleRepository or a PreferenceBackend, got {source!r}"
            )
        return self

    def storage(
        self,
        source: StorageBackend | Database,
        data_table: str | None = None,
        id_column: str = "id",
    ) -> "EngineBuilder":
        """The SQL storage: a database plus its data table, or a backend."""
        if isinstance(source, Database):
            if not data_table:
                raise EngineConfigError(
                    "storage(database, ...) needs the data_table the queries target"
                )
            self._storage = DatabaseStorage(source, data_table, id_column)
        elif callable(getattr(source, "execute", None)):
            self._storage = source
        else:
            raise EngineConfigError(
                f"storage must be a Database or a StorageBackend, got {source!r}"
            )
        return self

    def relevance(self, spec: object, **options: object) -> "EngineBuilder":
        """The relevance strategy: a name (``"gated"``, ``"mixed"``,
        ``"log_linear"``), a :class:`RelevanceBackend`, or a class."""
        self._relevance_spec = spec
        self._relevance_options = dict(options)
        return self

    # -- scoring configuration --------------------------------------------
    def target(self, concept: Concept | str) -> "EngineBuilder":
        """The concept whose members the preference view scores."""
        self._target = parse_concept(concept) if isinstance(concept, str) else concept
        return self

    def method(self, name: str) -> "EngineBuilder":
        self._method = name
        return self

    def rule_threshold(self, threshold: float) -> "EngineBuilder":
        self._rule_threshold = threshold
        return self

    def prune_documents(self, prune: bool) -> "EngineBuilder":
        self._prune_documents = bool(prune)
        return self

    def cache_size(self, max_entries: int) -> "EngineBuilder":
        self._cache_size = max_entries
        return self

    def incremental(self, enabled: bool) -> "EngineBuilder":
        """Toggle basis reuse for context-only changes (default on)."""
        self._incremental = bool(enabled)
        return self

    def reasoner(self, kb: CompiledKB) -> "EngineBuilder":
        """An explicit compiled reasoner (:class:`repro.reason.CompiledKB`).

        Defaults to the shared registry instance for the knowledge
        base; pass one here to pin several engines to a privately
        scoped KB (or a private KB to an engine).
        """
        if not isinstance(kb, CompiledKB):
            raise EngineConfigError(
                f"reasoner must be a repro.reason.CompiledKB, got {kb!r}"
            )
        self._kb = kb
        return self

    def options(self, **options: object) -> "EngineBuilder":
        """Apply builder options by keyword (for config-driven callers).

        Each key must name a builder method taking one argument, e.g.
        ``options(method="exact", cache_size=4, rules=repository)``
        (``rules`` is an alias for :meth:`preferences`).
        """
        aliases = {"rules": "preferences"}
        for key, value in options.items():
            setter = getattr(self, aliases.get(key, key), None)
            if setter is None or key.startswith("_"):
                raise EngineConfigError(f"unknown engine option {key!r}")
            setter(value)
        return self

    # -- assembly ----------------------------------------------------------
    def build(self):
        """Validate the configuration and assemble the engine."""
        from repro.engine.engine import RankingEngine

        if self._abox is None or self._tbox is None or self._user is None:
            raise EngineConfigError(
                "no knowledge base configured; call .world(world) or "
                ".knowledge(abox, tbox, user, space)"
            )
        if self._preferences is None:
            raise EngineConfigError(
                "no preference rules configured; call .preferences(repository) "
                "(worlds without a repository need explicit rules)"
            )
        if self._target is None:
            raise EngineConfigError(
                "no target concept configured; call .target('TvProgram') or "
                "use a world that carries one"
            )
        if self._method not in SCORING_METHODS:
            raise EngineConfigError(
                f"unknown scoring method {self._method!r}; "
                f"choose from {sorted(SCORING_METHODS)}"
            )
        if not 0.0 <= self._rule_threshold <= 1.0:
            raise EngineConfigError(
                f"rule_threshold must be in [0, 1], got {self._rule_threshold!r}"
            )
        if not isinstance(self._cache_size, int) or self._cache_size < 1:
            raise EngineConfigError(
                f"cache_size must be a positive integer, got {self._cache_size!r}"
            )
        if self._kb is not None and (
            self._kb.abox is not self._abox
            or self._kb.tbox is not self._tbox
            or self._kb.space is not self._space
        ):
            raise EngineConfigError(
                "the configured reasoner was compiled over a different "
                "knowledge base (ABox, TBox and event space must be the "
                "engine's own)"
            )
        relevance = resolve_relevance(self._relevance_spec, **self._relevance_options)
        context = self._context or AboxContext(self._abox, self._space)
        return RankingEngine(
            abox=self._abox,
            tbox=self._tbox,
            user=self._user,
            space=self._space,
            context=context,
            preferences=self._preferences,
            relevance=relevance,
            storage=self._storage,
            target=self._target,
            method=self._method,
            rule_threshold=self._rule_threshold,
            prune_documents=self._prune_documents,
            cache_size=self._cache_size,
            incremental=self._incremental,
            kb=self._kb,
        )
