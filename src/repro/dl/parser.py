"""Parser for the textual concept-expression syntax.

Grammar (case of keywords is significant, identifiers are free)::

    concept    := disjunct
    disjunct   := conjunct ("OR" conjunct)*
    conjunct   := unary ("AND" unary)*
    unary      := "NOT" unary
                | "EXISTS" role "." unary
                | "ALL" role "." unary
                | "ATLEAST" int role "." unary
                | "ATMOST" int role "." unary
                | primary
    primary    := "TOP" | "BOTTOM"
                | "{" ident ("," ident)* "}"
                | ident "VALUE" ident          -- role VALUE individual
                | ident                        -- atomic concept
                | "(" concept ")"

Examples::

    TvProgram AND EXISTS hasGenre.{HUMAN-INTEREST}
    NOT (Weekend OR Holiday)
    ALL hasChannel.PublicChannel
    hasSubject VALUE News
"""

from __future__ import annotations

import re
from dataclasses import dataclass

from repro.errors import ParseError
from repro.dl.concepts import (
    BOTTOM,
    TOP,
    Concept,
    at_least,
    at_most,
    atomic,
    complement,
    every,
    has_value,
    intersect,
    one_of,
    some,
    union,
)

__all__ = ["parse_concept"]

_KEYWORDS = {"AND", "OR", "NOT", "EXISTS", "ALL", "TOP", "BOTTOM", "VALUE", "ATLEAST", "ATMOST"}


@dataclass(frozen=True)
class _Token:
    kind: str  # "punct" | "ident" | "eof"
    text: str
    position: int


def _tokenize(text: str) -> list[_Token]:
    tokens: list[_Token] = []
    pos = 0
    while pos < len(text):
        if text[pos].isspace():
            pos += 1
            continue
        ch = text[pos]
        if ch in "(){},.":
            tokens.append(_Token("punct", ch, pos))
            pos += 1
            continue
        number = re.match(r"[0-9]+", text[pos:])
        if number:
            tokens.append(_Token("number", number.group(0), pos))
            pos += len(number.group(0))
            continue
        match = re.match(r"[A-Za-z][A-Za-z0-9_\-]*", text[pos:])
        if not match:
            raise ParseError(f"unexpected character {ch!r}", text, pos)
        tokens.append(_Token("ident", match.group(0), pos))
        pos += len(match.group(0))
    tokens.append(_Token("eof", "", len(text)))
    return tokens


class _Parser:
    def __init__(self, text: str):
        self.text = text
        self.tokens = _tokenize(text)
        self.index = 0

    # -- cursor helpers ---------------------------------------------------
    def peek(self) -> _Token:
        return self.tokens[self.index]

    def advance(self) -> _Token:
        token = self.tokens[self.index]
        self.index += 1
        return token

    def expect_punct(self, char: str) -> None:
        token = self.peek()
        if token.kind != "punct" or token.text != char:
            raise ParseError(f"expected {char!r}, found {token.text or 'end of input'!r}", self.text, token.position)
        self.advance()

    def at_keyword(self, word: str) -> bool:
        token = self.peek()
        return token.kind == "ident" and token.text == word

    # -- grammar ------------------------------------------------------
    def parse(self) -> Concept:
        concept = self.disjunct()
        token = self.peek()
        if token.kind != "eof":
            raise ParseError(f"unexpected trailing input {token.text!r}", self.text, token.position)
        return concept

    def disjunct(self) -> Concept:
        parts = [self.conjunct()]
        while self.at_keyword("OR"):
            self.advance()
            parts.append(self.conjunct())
        return union(parts) if len(parts) > 1 else parts[0]

    def conjunct(self) -> Concept:
        parts = [self.unary()]
        while self.at_keyword("AND"):
            self.advance()
            parts.append(self.unary())
        return intersect(parts) if len(parts) > 1 else parts[0]

    def unary(self) -> Concept:
        if self.at_keyword("NOT"):
            self.advance()
            return complement(self.unary())
        if self.at_keyword("EXISTS") or self.at_keyword("ALL"):
            keyword = self.advance().text
            role_token = self.peek()
            if role_token.kind != "ident" or role_token.text in _KEYWORDS:
                raise ParseError("expected role name after quantifier", self.text, role_token.position)
            self.advance()
            self.expect_punct(".")
            filler = self.unary()
            return some(role_token.text, filler) if keyword == "EXISTS" else every(role_token.text, filler)
        if self.at_keyword("ATLEAST") or self.at_keyword("ATMOST"):
            keyword = self.advance().text
            count_token = self.peek()
            if count_token.kind != "number":
                raise ParseError(f"expected a count after {keyword}", self.text, count_token.position)
            self.advance()
            count = int(count_token.text)
            role_token = self.peek()
            if role_token.kind != "ident" or role_token.text in _KEYWORDS:
                raise ParseError("expected role name after count", self.text, role_token.position)
            self.advance()
            self.expect_punct(".")
            filler = self.unary()
            if keyword == "ATLEAST":
                if count < 1:
                    raise ParseError("ATLEAST requires a count of at least 1", self.text, count_token.position)
                return at_least(count, role_token.text, filler)
            return at_most(count, role_token.text, filler)
        return self.primary()

    def primary(self) -> Concept:
        token = self.peek()
        if token.kind == "punct" and token.text == "(":
            self.advance()
            inner = self.disjunct()
            self.expect_punct(")")
            return inner
        if token.kind == "punct" and token.text == "{":
            return self.nominal()
        if token.kind == "ident":
            if token.text == "TOP":
                self.advance()
                return TOP
            if token.text == "BOTTOM":
                self.advance()
                return BOTTOM
            if token.text in _KEYWORDS:
                raise ParseError(f"unexpected keyword {token.text!r}", self.text, token.position)
            self.advance()
            if self.at_keyword("VALUE"):
                self.advance()
                value_token = self.peek()
                if value_token.kind != "ident" or value_token.text in _KEYWORDS:
                    raise ParseError("expected individual after VALUE", self.text, value_token.position)
                self.advance()
                return has_value(token.text, value_token.text)
            return atomic(token.text)
        raise ParseError(
            f"expected a concept, found {token.text or 'end of input'!r}", self.text, token.position
        )

    def nominal(self) -> Concept:
        self.expect_punct("{")
        members: list[str] = []
        while True:
            token = self.peek()
            if token.kind != "ident" or token.text in _KEYWORDS:
                raise ParseError("expected individual name in nominal", self.text, token.position)
            members.append(self.advance().text)
            token = self.peek()
            if token.kind == "punct" and token.text == ",":
                self.advance()
                continue
            break
        self.expect_punct("}")
        return one_of(*members)


def parse_concept(text: str) -> Concept:
    """Parse textual concept syntax into a :class:`~repro.dl.concepts.Concept`.

    Raises
    ------
    ParseError
        With position information on malformed input.

    Examples
    --------
    >>> parse_concept("TvProgram AND EXISTS hasGenre.{HUMAN-INTEREST}")
    And(TvProgram AND EXISTS hasGenre.{HUMAN-INTEREST})
    """
    return _Parser(text).parse()
