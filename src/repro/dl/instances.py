"""Probabilistic instance checking: from concept expressions to events.

The bridge between the DL layer and the uncertainty layer: for an
individual ``i`` and concept expression ``C``, :func:`membership_event`
computes the *event expression* under which ``i ∈ C`` holds, given the
ABox assertions and the TBox name hierarchy.  The probability of that
event (via :func:`repro.events.probability`) is then the probability
the paper's model needs — e.g. "the probability that Channel 5 news has
a human-interest genre is 0.95".

Semantics (closed-world over the ABox, as in any database-backed
implementation, including the paper's):

* ``A`` (atomic): the disjunction of the events of the assertions
  ``B(i)`` for every ``B ⊑ A`` in the TBox closure.  Defined names are
  unfolded first.
* ``¬C``: the negation of the membership event of ``C`` (absence of
  evidence is evidence of absence — the database view).
* ``C ⊓ D`` / ``C ⊔ D``: conjunction / disjunction of the events.
* ``{a, b}``: certain if ``i`` is one of the named individuals.
* ``∃R.C``: the disjunction over asserted ``R(i, j)`` of
  ``event(R(i,j)) AND event(j ∈ C)``.
* ``∀R.C``: the conjunction over asserted ``R(i, j)`` of
  ``NOT event(R(i,j)) OR event(j ∈ C)`` (every potential successor is
  either absent or in ``C``).
* ``R VALUE a``: the event of the assertion ``R(i, a)``.
"""

from __future__ import annotations

from itertools import combinations

from repro.errors import ComplexityLimitError, DLError
from repro.events.expr import ALWAYS, NEVER, EventExpr, conj, disj, neg
from repro.events.probability import probability
from repro.events.space import EventSpace
from repro.dl.abox import ABox
from repro.dl.concepts import (
    And,
    AtLeast,
    Atomic,
    Bottom,
    Concept,
    Exists,
    ForAll,
    HasValue,
    Not,
    OneOf,
    Or,
    Top,
)
from repro.dl.tbox import TBox
from repro.dl.vocabulary import Individual, RoleName

#: Guard for qualified number restrictions: C(successors, n) subsets.
MAX_AT_LEAST_SUBSETS = 50000

__all__ = ["membership_event", "membership_probability", "retrieve", "retrieve_probabilities"]


def membership_event(
    abox: ABox,
    tbox: TBox,
    individual: str | Individual,
    concept: Concept,
) -> EventExpr:
    """Event expression under which ``individual`` is an instance of ``concept``.

    Examples
    --------
    >>> from repro.events import EventSpace, probability
    >>> from repro.dl import ABox, TBox, parse_concept
    >>> box, tbox, space = ABox(), TBox(), EventSpace()
    >>> _ = box.assert_concept("TvProgram", "oprah")
    >>> _ = box.assert_role("hasGenre", "oprah", "HUMAN-INTEREST",
    ...                     space.atom("g", 0.85))
    >>> event = membership_event(box, tbox, "oprah",
    ...     parse_concept("TvProgram AND EXISTS hasGenre.{HUMAN-INTEREST}"))
    >>> probability(event, space)
    0.85
    """
    individual = Individual(individual) if isinstance(individual, str) else individual
    expanded = tbox.expand(concept)
    return _event(abox, tbox, individual, expanded)


def _event(abox: ABox, tbox: TBox, individual: Individual, concept: Concept) -> EventExpr:
    if isinstance(concept, Top):
        return ALWAYS
    if isinstance(concept, Bottom):
        return NEVER
    if isinstance(concept, Atomic):
        alternatives = []
        for sub_name in sorted(tbox.descendants(concept.concept), key=lambda n: n.name):
            event = abox.concept_event(sub_name, individual)
            if event is not None:
                alternatives.append(event)
        return disj(alternatives)
    if isinstance(concept, Not):
        return neg(_event(abox, tbox, individual, concept.child))
    if isinstance(concept, And):
        return conj(_event(abox, tbox, individual, child) for child in concept.children)
    if isinstance(concept, Or):
        return disj(_event(abox, tbox, individual, child) for child in concept.children)
    if isinstance(concept, OneOf):
        return ALWAYS if individual in concept.members else NEVER
    if isinstance(concept, HasValue):
        alternatives = []
        for sub_role in sorted(tbox.role_descendants(concept.role), key=lambda r: r.name):
            event = abox.role_event(sub_role, individual, concept.value)
            if event is not None:
                alternatives.append(event)
        return disj(alternatives)
    if isinstance(concept, Exists):
        alternatives = []
        for _target, edge_event, filler_event in _successors(abox, tbox, individual, concept.role, concept.filler):
            alternatives.append(conj([edge_event, filler_event]))
        return disj(alternatives)
    if isinstance(concept, ForAll):
        obligations = []
        for _target, edge_event, filler_event in _successors(abox, tbox, individual, concept.role, concept.filler):
            obligations.append(disj([neg(edge_event), filler_event]))
        return conj(obligations)
    if isinstance(concept, AtLeast):
        # "Has at least n distinct successors in C": the disjunction
        # over n-subsets of distinct targets of the conjunction of their
        # membership events.
        per_target = [
            conj([edge_event, filler_event])
            for _target, edge_event, filler_event in _successors(
                abox, tbox, individual, concept.role, concept.filler
            )
            if not conj([edge_event, filler_event]).is_impossible
        ]
        if len(per_target) < concept.count:
            return NEVER
        subset_count = 1
        for step in range(concept.count):
            subset_count = subset_count * (len(per_target) - step) // (step + 1)
        if subset_count > MAX_AT_LEAST_SUBSETS:
            raise ComplexityLimitError(
                f"AtLeast({concept.count}) over {len(per_target)} successors needs "
                f"{subset_count} subsets (> limit {MAX_AT_LEAST_SUBSETS})"
            )
        return disj(
            conj(subset) for subset in combinations(per_target, concept.count)
        )
    raise DLError(f"cannot evaluate unknown concept node {concept!r}")


def _successors(
    abox: ABox,
    tbox: TBox,
    individual: Individual,
    role: RoleName,
    filler: Concept,
) -> list[tuple[Individual, EventExpr, EventExpr]]:
    """Distinct targets reachable via the role (or any sub-role).

    Returns ``(target, edge event, filler membership event)`` with the
    edge event OR-merged across the contributing sub-roles.
    """
    edges: dict[Individual, list[EventExpr]] = {}
    for sub_role in sorted(tbox.role_descendants(role), key=lambda r: r.name):
        for assertion in abox.role_successors(sub_role, individual):
            edges.setdefault(assertion.target, []).append(assertion.event)
    result = []
    for target in sorted(edges, key=lambda t: t.name):
        edge_event = disj(edges[target])
        filler_event = _event(abox, tbox, target, filler)
        result.append((target, edge_event, filler_event))
    return result


def membership_probability(
    abox: ABox,
    tbox: TBox,
    individual: str | Individual,
    concept: Concept,
    space: EventSpace | None = None,
    engine: str = "shannon",
) -> float:
    """Probability that ``individual`` is an instance of ``concept``."""
    return probability(membership_event(abox, tbox, individual, concept), space, engine)


def retrieve(abox: ABox, tbox: TBox, concept: Concept) -> dict[Individual, EventExpr]:
    """Instance retrieval: every individual with a non-impossible event.

    This is the set-at-a-time counterpart of :func:`membership_event`
    and the reference semantics the relational view compiler
    (:mod:`repro.storage.mapping`) is tested against.
    """
    result: dict[Individual, EventExpr] = {}
    for individual in sorted(abox.individuals, key=lambda ind: ind.name):
        event = membership_event(abox, tbox, individual, concept)
        if not event.is_impossible:
            result[individual] = event
    return result


def retrieve_probabilities(
    abox: ABox,
    tbox: TBox,
    concept: Concept,
    space: EventSpace | None = None,
    engine: str = "shannon",
) -> dict[Individual, float]:
    """Instance retrieval with probabilities instead of raw events."""
    return {
        individual: probability(event, space, engine)
        for individual, event in retrieve(abox, tbox, concept).items()
    }
