"""Probabilistic instance checking: from concept expressions to events.

The bridge between the DL layer and the uncertainty layer: for an
individual ``i`` and concept expression ``C``, :func:`membership_event`
computes the *event expression* under which ``i ∈ C`` holds, given the
ABox assertions and the TBox name hierarchy.  The probability of that
event (via :func:`repro.events.probability`) is then the probability
the paper's model needs — e.g. "the probability that Channel 5 news has
a human-interest genre is 0.95".

Semantics (closed-world over the ABox, as in any database-backed
implementation, including the paper's):

* ``A`` (atomic): the disjunction of the events of the assertions
  ``B(i)`` for every ``B ⊑ A`` in the TBox closure.  Defined names are
  unfolded first.
* ``¬C``: the negation of the membership event of ``C`` (absence of
  evidence is evidence of absence — the database view).
* ``C ⊓ D`` / ``C ⊔ D``: conjunction / disjunction of the events.
* ``{a, b}``: certain if ``i`` is one of the named individuals.
* ``∃R.C``: the disjunction over asserted ``R(i, j)`` of
  ``event(R(i,j)) AND event(j ∈ C)``.
* ``∀R.C``: the conjunction over asserted ``R(i, j)`` of
  ``NOT event(R(i,j)) OR event(j ∈ C)`` (every potential successor is
  either absent or in ``C``).
* ``R VALUE a``: the event of the assertion ``R(i, a)``.

The semantics lives in :class:`MembershipEvaluator`, whose lookup
methods (``expand_concept``, ``sorted_descendants``,
``role_successors``, ``event``) are overridable hooks.  The base class
caches *nothing* — it is the uncached reference the compiled reasoner
(:class:`repro.reason.CompiledKB`) is benchmarked and property-tested
against; the reasoner subclasses it with per-epoch memo tables, so both
paths share one implementation of the semantics and can never drift.
"""

from __future__ import annotations

from itertools import combinations
from typing import Iterable

from repro.errors import ComplexityLimitError, DLError
from repro.events.expr import ALWAYS, NEVER, EventExpr, conj, disj, neg
from repro.events.probability import probability
from repro.events.space import EventSpace
from repro.dl.abox import ABox, RoleAssertion
from repro.dl.concepts import (
    And,
    AtLeast,
    Atomic,
    Bottom,
    Concept,
    Exists,
    ForAll,
    HasValue,
    Not,
    OneOf,
    Or,
    Top,
)
from repro.dl.tbox import TBox
from repro.dl.vocabulary import ConceptName, Individual, RoleName

#: Guard for qualified number restrictions: C(successors, n) subsets.
MAX_AT_LEAST_SUBSETS = 50000

__all__ = [
    "MembershipEvaluator",
    "membership_event",
    "membership_probability",
    "retrieve",
    "retrieve_probabilities",
]


class MembershipEvaluator:
    """Computes membership events; lookups are overridable hooks.

    The base class recomputes everything on every call — the uncached
    reference.  :class:`repro.reason.ReasonerSession` overrides the
    hooks with per-epoch caches (concept expansion, sorted closures, a
    role-successor index, a per-(individual, concept) event memo)
    without touching the semantics below.
    """

    def __init__(self, abox: ABox, tbox: TBox):
        self.abox = abox
        self.tbox = tbox

    # -- overridable lookups -------------------------------------------
    def expand_concept(self, concept: Concept) -> Concept:
        """Unfold the TBox definitions in ``concept``."""
        return self.tbox.expand(concept)

    def sorted_descendants(self, name: ConceptName) -> tuple[ConceptName, ...]:
        """Sub-concepts of a name in deterministic (name) order."""
        return tuple(sorted(self.tbox.descendants(name), key=lambda n: n.name))

    def sorted_role_descendants(self, role: RoleName) -> tuple[RoleName, ...]:
        """Sub-roles of a role in deterministic (name) order."""
        return tuple(sorted(self.tbox.role_descendants(role), key=lambda r: r.name))

    def role_successors(self, role: RoleName, individual: Individual) -> Iterable[RoleAssertion]:
        """Role assertions leaving ``individual`` via exactly ``role``."""
        return self.abox.role_successors(role, individual)

    def event(self, individual: Individual, concept: Concept) -> EventExpr:
        """Membership event of an already-expanded concept (memo hook)."""
        return self._compute(individual, concept)

    # -- entry point ----------------------------------------------------
    def membership_event(self, individual: str | Individual, concept: Concept) -> EventExpr:
        """Event under which ``individual`` is an instance of ``concept``."""
        individual = Individual(individual) if isinstance(individual, str) else individual
        return self.event(individual, self.expand_concept(concept))

    # -- the semantics (shared by reference and compiled paths) ---------
    def _compute(self, individual: Individual, concept: Concept) -> EventExpr:
        if isinstance(concept, Top):
            return ALWAYS
        if isinstance(concept, Bottom):
            return NEVER
        if isinstance(concept, Atomic):
            alternatives = []
            for sub_name in self.sorted_descendants(concept.concept):
                event = self.abox.concept_event(sub_name, individual)
                if event is not None:
                    alternatives.append(event)
            return disj(alternatives)
        if isinstance(concept, Not):
            return neg(self.event(individual, concept.child))
        if isinstance(concept, And):
            return conj(self.event(individual, child) for child in concept.children)
        if isinstance(concept, Or):
            return disj(self.event(individual, child) for child in concept.children)
        if isinstance(concept, OneOf):
            return ALWAYS if individual in concept.members else NEVER
        if isinstance(concept, HasValue):
            alternatives = []
            for sub_role in self.sorted_role_descendants(concept.role):
                event = self.abox.role_event(sub_role, individual, concept.value)
                if event is not None:
                    alternatives.append(event)
            return disj(alternatives)
        if isinstance(concept, Exists):
            alternatives = []
            for _target, edge_event, filler_event in self._successors(
                individual, concept.role, concept.filler
            ):
                alternatives.append(conj([edge_event, filler_event]))
            return disj(alternatives)
        if isinstance(concept, ForAll):
            obligations = []
            for _target, edge_event, filler_event in self._successors(
                individual, concept.role, concept.filler
            ):
                obligations.append(disj([neg(edge_event), filler_event]))
            return conj(obligations)
        if isinstance(concept, AtLeast):
            # "Has at least n distinct successors in C": the disjunction
            # over n-subsets of distinct targets of the conjunction of their
            # membership events.
            per_target = [
                conj([edge_event, filler_event])
                for _target, edge_event, filler_event in self._successors(
                    individual, concept.role, concept.filler
                )
                if not conj([edge_event, filler_event]).is_impossible
            ]
            if len(per_target) < concept.count:
                return NEVER
            subset_count = 1
            for step in range(concept.count):
                subset_count = subset_count * (len(per_target) - step) // (step + 1)
            if subset_count > MAX_AT_LEAST_SUBSETS:
                raise ComplexityLimitError(
                    f"AtLeast({concept.count}) over {len(per_target)} successors needs "
                    f"{subset_count} subsets (> limit {MAX_AT_LEAST_SUBSETS})"
                )
            return disj(
                conj(subset) for subset in combinations(per_target, concept.count)
            )
        raise DLError(f"cannot evaluate unknown concept node {concept!r}")

    def _successors(
        self,
        individual: Individual,
        role: RoleName,
        filler: Concept,
    ) -> list[tuple[Individual, EventExpr, EventExpr]]:
        """Distinct targets reachable via the role (or any sub-role).

        Returns ``(target, edge event, filler membership event)`` with the
        edge event OR-merged across the contributing sub-roles.
        """
        edges: dict[Individual, list[EventExpr]] = {}
        for sub_role in self.sorted_role_descendants(role):
            for assertion in self.role_successors(sub_role, individual):
                edges.setdefault(assertion.target, []).append(assertion.event)
        result = []
        for target in sorted(edges, key=lambda t: t.name):
            edge_event = disj(edges[target])
            filler_event = self.event(target, filler)
            result.append((target, edge_event, filler_event))
        return result


def membership_event(
    abox: ABox,
    tbox: TBox,
    individual: str | Individual,
    concept: Concept,
) -> EventExpr:
    """Event expression under which ``individual`` is an instance of ``concept``.

    This is the uncached reference path: a fresh
    :class:`MembershipEvaluator` with no memo tables.  Hot paths
    (binding, retrieval) go through :mod:`repro.reason` instead.

    Examples
    --------
    >>> from repro.events import EventSpace, probability
    >>> from repro.dl import ABox, TBox, parse_concept
    >>> box, tbox, space = ABox(), TBox(), EventSpace()
    >>> _ = box.assert_concept("TvProgram", "oprah")
    >>> _ = box.assert_role("hasGenre", "oprah", "HUMAN-INTEREST",
    ...                     space.atom("g", 0.85))
    >>> event = membership_event(box, tbox, "oprah",
    ...     parse_concept("TvProgram AND EXISTS hasGenre.{HUMAN-INTEREST}"))
    >>> probability(event, space)
    0.85
    """
    return MembershipEvaluator(abox, tbox).membership_event(individual, concept)


def membership_probability(
    abox: ABox,
    tbox: TBox,
    individual: str | Individual,
    concept: Concept,
    space: EventSpace | None = None,
    engine: str = "shannon",
) -> float:
    """Probability that ``individual`` is an instance of ``concept``."""
    return probability(membership_event(abox, tbox, individual, concept), space, engine)


def retrieve(abox: ABox, tbox: TBox, concept: Concept) -> dict[Individual, EventExpr]:
    """Instance retrieval: every individual with a non-impossible event.

    Set-at-a-time: the concept is evaluated across all individuals in
    one traversal through a compiled reasoner session
    (:func:`repro.reason.query_session` — the warm shared one when the
    world is registered, a transient one otherwise), so role-successor
    walks and filler membership events are computed once, not once per
    individual.  The result is structurally identical to calling
    :func:`membership_event` per individual — the reference semantics
    the relational view compiler (:mod:`repro.storage.mapping`) is
    tested against.
    """
    from repro.reason import query_session  # deferred: repro.reason imports this module

    return query_session(abox, tbox, events_only=True).retrieve(concept)


def retrieve_probabilities(
    abox: ABox,
    tbox: TBox,
    concept: Concept,
    space: EventSpace | None = None,
    engine: str = "shannon",
) -> dict[Individual, float]:
    """Instance retrieval with probabilities instead of raw events."""
    from repro.reason import query_session  # deferred: repro.reason imports this module

    return query_session(abox, tbox, space).retrieve_probabilities(concept, engine)
