"""TBox: terminological axioms, classification and subsumption checking.

The reproduction needs two things from the TBox:

1. **Atomic classification** — the subsumption hierarchy over concept
   names (e.g. ``WeatherBulletinSubject ⊑ NewsSubject``), used by the
   instance checker so that asserting an individual into a sub-concept
   makes it an instance of every super-concept.  This is how Table 1's
   "weather bulletin" subject satisfies rule R2's News preference.

2. **Structural subsumption over expressions** — a sound (but, as usual
   for structural algorithms, incomplete) ``entails`` check used by rule
   pruning and mining dedup.  It never answers "yes" wrongly; a "no"
   means "not derivable structurally".

Definitions (``name ≡ expression``) are supported with acyclicity
checking and unfolding, so high-level context events ("HavingBreakfast")
can be defined in terms of sensed concepts.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from repro.errors import TBoxError
from repro.dl.concepts import (
    And,
    AtLeast,
    Atomic,
    Bottom,
    Concept,
    Exists,
    ForAll,
    HasValue,
    Not,
    OneOf,
    Or,
    Top,
    at_least,
    complement,
    every,
    intersect,
    some,
    union,
)
from repro.dl.vocabulary import ConceptName, RoleName

__all__ = ["TBox", "SubsumptionAxiom", "Definition", "DisjointnessAxiom", "RoleSubsumptionAxiom"]


@dataclass(frozen=True)
class SubsumptionAxiom:
    """``sub ⊑ sup`` for two concept names."""

    sub: ConceptName
    sup: ConceptName

    def __str__(self) -> str:
        return f"{self.sub} SUBCLASS-OF {self.sup}"


@dataclass(frozen=True)
class RoleSubsumptionAxiom:
    """``sub ⊑ sup`` for two role names (a role hierarchy edge)."""

    sub: RoleName
    sup: RoleName

    def __str__(self) -> str:
        return f"{self.sub} SUBROLE-OF {self.sup}"


@dataclass(frozen=True)
class Definition:
    """``name ≡ concept`` (an acyclic concept definition)."""

    name: ConceptName
    concept: Concept

    def __str__(self) -> str:
        return f"{self.name} EQUIV {self.concept}"


@dataclass(frozen=True)
class DisjointnessAxiom:
    """Pairwise disjointness of a set of concept names.

    Used to model the paper's disjoint program kinds ("a television
    program is either a traffic bulletin, or a weather bulletin, or
    something else").
    """

    names: frozenset[ConceptName]

    def __str__(self) -> str:
        return "DISJOINT(" + ", ".join(sorted(n.name for n in self.names)) + ")"


class TBox:
    """A terminology: subsumptions, definitions and disjointness axioms.

    Examples
    --------
    >>> tbox = TBox()
    >>> tbox.add_subsumption("WeatherBulletinSubject", "NewsSubject")
    >>> tbox.subsumes_name("NewsSubject", "WeatherBulletinSubject")
    True
    """

    def __init__(self) -> None:
        self._supers: dict[ConceptName, set[ConceptName]] = {}
        self._definitions: dict[ConceptName, Concept] = {}
        self._disjointness: list[DisjointnessAxiom] = []
        self._closure: dict[ConceptName, frozenset[ConceptName]] | None = None
        self._role_supers: dict[RoleName, set[RoleName]] = {}
        self._role_closure: dict[RoleName, frozenset[RoleName]] | None = None
        self._revision = 0

    @property
    def revision(self) -> int:
        """Monotonic counter bumped on every axiom or definition change.

        The terminological twin of :attr:`repro.dl.abox.ABox.mutation_count`:
        caches of derived state (the compiled reasoner's membership and
        probability memos) key on it, so a TBox edit invalidates them
        by construction.
        """
        return self._revision

    # -- axiom entry ------------------------------------------------------
    def add_subsumption(self, sub: str | ConceptName, sup: str | ConceptName) -> SubsumptionAxiom:
        """Assert ``sub ⊑ sup`` between two concept names."""
        sub = ConceptName(sub) if isinstance(sub, str) else sub
        sup = ConceptName(sup) if isinstance(sup, str) else sup
        if sub == sup:
            raise TBoxError(f"self-subsumption {sub} is vacuous")
        self._supers.setdefault(sub, set()).add(sup)
        self._supers.setdefault(sup, set())
        self._closure = None
        self._revision += 1
        return SubsumptionAxiom(sub, sup)

    def define(self, name: str | ConceptName, concept: Concept) -> Definition:
        """Define ``name ≡ concept``; definitions must stay acyclic."""
        name = ConceptName(name) if isinstance(name, str) else name
        if name in self._definitions:
            raise TBoxError(f"concept {name} already has a definition")
        self._definitions[name] = concept
        try:
            self._check_definition_acyclic(name)
        except TBoxError:
            del self._definitions[name]
            raise
        self._revision += 1
        return Definition(name, concept)

    def add_role_subsumption(self, sub: str | RoleName, sup: str | RoleName) -> RoleSubsumptionAxiom:
        """Assert ``sub ⊑ sup`` between two role names.

        An edge asserted through a sub-role counts for every super-role
        (e.g. ``hasMainGenre ⊑ hasGenre``): the instance checker and
        the view compilers consult the closure.
        """
        sub = RoleName(sub) if isinstance(sub, str) else sub
        sup = RoleName(sup) if isinstance(sup, str) else sup
        if sub == sup:
            raise TBoxError(f"self-subsumption {sub} is vacuous")
        self._role_supers.setdefault(sub, set()).add(sup)
        self._role_supers.setdefault(sup, set())
        self._role_closure = None
        self._revision += 1
        return RoleSubsumptionAxiom(sub, sup)

    def declare_disjoint(self, names: Iterable[str | ConceptName]) -> DisjointnessAxiom:
        """Declare a set of concept names pairwise disjoint."""
        resolved = frozenset(ConceptName(n) if isinstance(n, str) else n for n in names)
        if len(resolved) < 2:
            raise TBoxError("disjointness needs at least two distinct concept names")
        axiom = DisjointnessAxiom(resolved)
        self._disjointness.append(axiom)
        self._revision += 1
        return axiom

    # -- classification ---------------------------------------------------
    def _classify(self) -> dict[ConceptName, frozenset[ConceptName]]:
        """Reflexive-transitive closure of the name hierarchy."""
        if self._closure is not None:
            return self._closure
        closure: dict[ConceptName, frozenset[ConceptName]] = {}

        def ancestors(name: ConceptName, trail: tuple[ConceptName, ...]) -> frozenset[ConceptName]:
            if name in closure:
                return closure[name]
            if name in trail:
                cycle = " -> ".join(n.name for n in trail + (name,))
                raise TBoxError(f"subsumption cycle: {cycle}")
            result = {name}
            for parent in self._supers.get(name, ()):
                result.update(ancestors(parent, trail + (name,)))
            closure[name] = frozenset(result)
            return closure[name]

        for name in list(self._supers):
            ancestors(name, ())
        self._closure = closure
        return closure

    def ancestors(self, name: str | ConceptName) -> frozenset[ConceptName]:
        """All super-concepts of a name, including itself."""
        name = ConceptName(name) if isinstance(name, str) else name
        return self._classify().get(name, frozenset({name}))

    def descendants(self, name: str | ConceptName) -> frozenset[ConceptName]:
        """All sub-concepts of a name, including itself."""
        name = ConceptName(name) if isinstance(name, str) else name
        closure = self._classify()
        result = {name}
        for candidate, supers in closure.items():
            if name in supers:
                result.add(candidate)
        return frozenset(result)

    def subsumes_name(self, sup: str | ConceptName, sub: str | ConceptName) -> bool:
        """True when ``sub ⊑ sup`` is derivable in the name hierarchy."""
        sup = ConceptName(sup) if isinstance(sup, str) else sup
        sub = ConceptName(sub) if isinstance(sub, str) else sub
        return sup in self.ancestors(sub)

    def disjoint_names(self, first: ConceptName, second: ConceptName) -> bool:
        """True when the two names are declared (or inherited) disjoint."""
        first_up = self.ancestors(first)
        second_up = self.ancestors(second)
        for axiom in self._disjointness:
            hits_first = axiom.names & first_up
            hits_second = axiom.names & second_up
            if any(a != b for a in hits_first for b in hits_second):
                return True
        return False

    @property
    def concept_names(self) -> frozenset[ConceptName]:
        """Every concept name mentioned in subsumptions or definitions."""
        names = set(self._supers)
        names.update(self._definitions)
        return frozenset(names)

    # -- role classification --------------------------------------------
    def _classify_roles(self) -> dict[RoleName, frozenset[RoleName]]:
        if self._role_closure is not None:
            return self._role_closure
        closure: dict[RoleName, frozenset[RoleName]] = {}

        def ancestors(role: RoleName, trail: tuple[RoleName, ...]) -> frozenset[RoleName]:
            if role in closure:
                return closure[role]
            if role in trail:
                cycle = " -> ".join(r.name for r in trail + (role,))
                raise TBoxError(f"role subsumption cycle: {cycle}")
            result = {role}
            for parent in self._role_supers.get(role, ()):
                result.update(ancestors(parent, trail + (role,)))
            closure[role] = frozenset(result)
            return closure[role]

        for role in list(self._role_supers):
            ancestors(role, ())
        self._role_closure = closure
        return closure

    def role_ancestors(self, role: str | RoleName) -> frozenset[RoleName]:
        """All super-roles of a role, including itself."""
        role = RoleName(role) if isinstance(role, str) else role
        return self._classify_roles().get(role, frozenset({role}))

    def role_descendants(self, role: str | RoleName) -> frozenset[RoleName]:
        """All sub-roles of a role, including itself."""
        role = RoleName(role) if isinstance(role, str) else role
        closure = self._classify_roles()
        result = {role}
        for candidate, supers in closure.items():
            if role in supers:
                result.add(candidate)
        return frozenset(result)

    def subsumes_role(self, sup: str | RoleName, sub: str | RoleName) -> bool:
        """True when ``sub ⊑ sup`` is derivable in the role hierarchy."""
        sup = RoleName(sup) if isinstance(sup, str) else sup
        sub = RoleName(sub) if isinstance(sub, str) else sub
        return sup in self.role_ancestors(sub)

    # -- definitions ----------------------------------------------------
    def definition_of(self, name: str | ConceptName) -> Concept | None:
        name = ConceptName(name) if isinstance(name, str) else name
        return self._definitions.get(name)

    def _check_definition_acyclic(self, start: ConceptName) -> None:
        seen: set[ConceptName] = set()

        def visit(name: ConceptName, trail: tuple[ConceptName, ...]) -> None:
            if name in trail:
                cycle = " -> ".join(n.name for n in trail + (name,))
                raise TBoxError(f"definitional cycle: {cycle}")
            definition = self._definitions.get(name)
            if definition is None or name in seen:
                return
            for used in definition.concept_names():
                visit(used, trail + (name,))
            seen.add(name)

        visit(start, ())

    def expand(self, concept: Concept) -> Concept:
        """Unfold every defined name in ``concept`` (recursively)."""
        if isinstance(concept, Atomic):
            definition = self._definitions.get(concept.concept)
            return self.expand(definition) if definition is not None else concept
        if isinstance(concept, Not):
            return complement(self.expand(concept.child))
        if isinstance(concept, And):
            return intersect(self.expand(child) for child in concept.children)
        if isinstance(concept, Or):
            return union(self.expand(child) for child in concept.children)
        if isinstance(concept, Exists):
            return some(concept.role, self.expand(concept.filler))
        if isinstance(concept, ForAll):
            return every(concept.role, self.expand(concept.filler))
        if isinstance(concept, AtLeast):
            return at_least(concept.count, concept.role, self.expand(concept.filler))
        return concept

    # -- structural subsumption over expressions -----------------------
    def entails(self, sub: Concept, sup: Concept) -> bool:
        """Sound structural check for ``sub ⊑ sup``.

        Complete for the name hierarchy plus the obvious structural
        rules (⊤/⊥, ⊓/⊔ introduction and elimination, monotonicity of
        ∃/∀ in the filler, nominal subsets); incomplete in general —
        a ``False`` answer means "not structurally derivable".
        """
        return self._entails(self.expand(sub), self.expand(sup))

    def _entails(self, sub: Concept, sup: Concept) -> bool:
        if sub == sup:
            return True
        if isinstance(sup, Top) or isinstance(sub, Bottom):
            return True
        if isinstance(sub, Top) and not isinstance(sup, Top):
            return False

        # HasValue is identical to its desugared Exists form.
        if isinstance(sub, HasValue):
            return self._entails(sub.desugar(), sup)
        if isinstance(sup, HasValue):
            return self._entails(sub, sup.desugar())

        # sup = D1 ⊓ D2: must entail every conjunct.
        if isinstance(sup, And):
            return all(self._entails(sub, part) for part in sup.children)
        # sub = C1 ⊔ C2: every disjunct must entail sup.
        if isinstance(sub, Or):
            return all(self._entails(part, sup) for part in sub.children)
        # sub = C1 ⊓ C2: some conjunct entailing sup suffices.
        if isinstance(sub, And):
            if any(self._entails(part, sup) for part in sub.children):
                return True
        # sup = D1 ⊔ D2: entailing some disjunct suffices.
        if isinstance(sup, Or):
            if any(self._entails(sub, part) for part in sup.children):
                return True

        if isinstance(sub, Atomic) and isinstance(sup, Atomic):
            return self.subsumes_name(sup.concept, sub.concept)
        if isinstance(sub, OneOf) and isinstance(sup, OneOf):
            return sub.members <= sup.members
        if isinstance(sub, Exists) and isinstance(sup, Exists):
            return self.subsumes_role(sup.role, sub.role) and self._entails(sub.filler, sup.filler)
        if isinstance(sub, ForAll) and isinstance(sup, ForAll):
            # ∀ is antitone in the role: restricting a *larger* role set
            # entails restricting a smaller one.
            return self.subsumes_role(sub.role, sup.role) and self._entails(sub.filler, sup.filler)
        if isinstance(sub, AtLeast) and isinstance(sup, AtLeast):
            return (
                sub.count >= sup.count
                and self.subsumes_role(sup.role, sub.role)
                and self._entails(sub.filler, sup.filler)
            )
        if isinstance(sub, AtLeast) and isinstance(sup, Exists):
            return self.subsumes_role(sup.role, sub.role) and self._entails(sub.filler, sup.filler)
        if isinstance(sub, Not) and isinstance(sup, Not):
            return self._entails(sup.child, sub.child)
        return False

    def __repr__(self) -> str:
        return (
            f"TBox(subsumptions={sum(len(s) for s in self._supers.values())}, "
            f"definitions={len(self._definitions)}, disjointness={len(self._disjointness)})"
        )
