"""ABox: assertional knowledge weighted by event expressions.

Following the paper's naive implementation, "we view each concept as a
table, which uses the concept name as the table name and has an ID
attribute and an event expression attribute. Similarly, we view each
role as a table [...] containing three attributes; SOURCE, DESTINATION,
and an event expression."

The ABox is the in-memory form of exactly those tables: each concept
assertion ``A(i)`` and role assertion ``R(i, j)`` carries the event
expression under which it holds.  Certain facts carry :data:`ALWAYS`.
Dynamic context (sensor-fed) assertions are ordinary assertions whose
events come from fresh sensor measurements; they are replaced wholesale
on every context refresh through the ``dynamic`` tag.

Multi-tenant layering (the paper's tvtouch vision is one static domain
ontology consulted by *many* users, each contributing only a small
volatile slice): :meth:`ABox.freeze` seals a box as the immutable
shared world, and :meth:`ABox.overlay` mints a :class:`LayeredABox` —
a copy-on-write view that shares every static table of the base by
reference and stores only the tenant's own assertions locally.  A
thousand user sessions then cost a thousand overlays, not a thousand
worlds.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, Mapping

from repro.errors import ABoxError
from repro.events.expr import ALWAYS, EventExpr, disj
from repro.dl.vocabulary import ConceptName, Individual, RoleName

__all__ = ["ConceptAssertion", "RoleAssertion", "ABox", "LayeredABox"]


@dataclass(frozen=True)
class ConceptAssertion:
    """``A(individual)`` holding under ``event``."""

    concept: ConceptName
    individual: Individual
    event: EventExpr
    dynamic: bool = False

    def __str__(self) -> str:
        return f"{self.concept}({self.individual}) [{self.event}]"


@dataclass(frozen=True)
class RoleAssertion:
    """``R(source, target)`` holding under ``event``."""

    role: RoleName
    source: Individual
    target: Individual
    event: EventExpr
    dynamic: bool = False

    def __str__(self) -> str:
        return f"{self.role}({self.source}, {self.target}) [{self.event}]"


class ABox:
    """A set of event-weighted concept and role assertions.

    Assertions about the same fact accumulate disjunctively: asserting
    ``A(i)`` twice with events ``e1`` and ``e2`` means ``A(i)`` holds
    under ``e1 OR e2`` (two independent reasons to believe the fact).

    Examples
    --------
    >>> from repro.events import EventSpace
    >>> box = ABox()
    >>> space = EventSpace()
    >>> _ = box.assert_concept("TvProgram", "oprah")
    >>> _ = box.assert_role("hasGenre", "oprah", "HUMAN-INTEREST",
    ...                     space.atom("genre:oprah", 0.85))
    >>> len(list(box.role_assertions()))
    1
    """

    def __init__(self) -> None:
        self._concepts: dict[ConceptName, dict[Individual, ConceptAssertion]] = {}
        self._roles: dict[RoleName, dict[tuple[Individual, Individual], RoleAssertion]] = {}
        self._individuals: set[Individual] = set()
        self._dynamic: set[ConceptAssertion | RoleAssertion] = set()
        self._mutations = 0
        self._static_mutations = 0
        self._frozen = False
        self._adjacency_cache: (
            dict[RoleName, dict[Individual, tuple[RoleAssertion, ...]]] | None
        ) = None
        self._signature_cache: tuple[int, tuple] | None = None

    # -- layering ---------------------------------------------------------
    @property
    def frozen(self) -> bool:
        """Is this box sealed as an immutable shared base?"""
        return self._frozen

    def freeze(self) -> "ABox":
        """Seal the box: every further mutation raises :class:`ABoxError`.

        A frozen box is the safe *static base* of tenant overlays — its
        epoch can never move underneath them, and derived indexes (the
        role adjacency) are computed once and shared by reference.
        Freezing is idempotent and returns the box for chaining.
        """
        self._frozen = True
        return self

    def overlay(self) -> "LayeredABox":
        """A copy-on-write view over this box for one tenant's assertions.

        The overlay shares every table of this base by reference and
        stores only its own assertions; see :class:`LayeredABox`.
        Freezing the base first (:meth:`freeze`) is recommended so no
        tenant can mutate the shared world by accident.
        """
        return LayeredABox(self)

    def _check_mutable(self) -> None:
        if self._frozen:
            raise ABoxError(
                "this ABox is frozen (a shared static base); per-user assertions "
                "belong in an overlay — ABox.overlay(), or a repro.tenants."
                "TenantRegistry session for a full per-user engine"
            )

    @property
    def mutation_count(self) -> int:
        """Monotonic counter bumped on every assertion or retraction.

        Cheap change detection for callers that cache derived state
        (e.g. the engine's context signature): an unchanged counter
        guarantees an unchanged ABox.
        """
        return self._mutations

    @property
    def static_mutation_count(self) -> int:
        """Monotonic counter bumped only by *static* knowledge changes.

        Dynamic (context) assertions come and go on every refresh
        without touching this counter, so it distinguishes "the
        catalogue changed" from "the context changed" — the engine's
        cache key combines this epoch with a content rendering of the
        dynamic assertions.
        """
        return self._static_mutations

    # -- assertion entry --------------------------------------------------
    def register_individual(self, individual: str | Individual) -> Individual:
        """Add an individual to the domain (idempotent)."""
        self._check_mutable()
        individual = Individual(individual) if isinstance(individual, str) else individual
        self._individuals.add(individual)
        return individual

    def assert_concept(
        self,
        concept: str | ConceptName,
        individual: str | Individual,
        event: EventExpr = ALWAYS,
        dynamic: bool = False,
    ) -> ConceptAssertion:
        """Assert ``concept(individual)`` under ``event``."""
        self._check_mutable()
        concept = ConceptName(concept) if isinstance(concept, str) else concept
        individual = self.register_individual(individual)
        if not isinstance(event, EventExpr):
            raise ABoxError(f"assertion event must be an EventExpr, got {event!r}")
        table = self._concepts.setdefault(concept, {})
        existing = table.get(individual) or self._inherited_concept(concept, individual)
        if existing is not None:
            event = disj([existing.event, event])
            dynamic = dynamic or existing.dynamic
            self._dynamic.discard(existing)
        assertion = ConceptAssertion(concept, individual, event, dynamic)
        table[individual] = assertion
        if dynamic:
            self._dynamic.add(assertion)
        self._mutations += 1
        if not dynamic:
            self._static_mutations += 1
        return assertion

    def assert_role(
        self,
        role: str | RoleName,
        source: str | Individual,
        target: str | Individual,
        event: EventExpr = ALWAYS,
        dynamic: bool = False,
    ) -> RoleAssertion:
        """Assert ``role(source, target)`` under ``event``."""
        self._check_mutable()
        role = RoleName(role) if isinstance(role, str) else role
        source = self.register_individual(source)
        target = self.register_individual(target)
        if not isinstance(event, EventExpr):
            raise ABoxError(f"assertion event must be an EventExpr, got {event!r}")
        table = self._roles.setdefault(role, {})
        key = (source, target)
        existing = table.get(key) or self._inherited_role(role, key)
        if existing is not None:
            event = disj([existing.event, event])
            dynamic = dynamic or existing.dynamic
            self._dynamic.discard(existing)
        assertion = RoleAssertion(role, source, target, event, dynamic)
        table[key] = assertion
        if dynamic:
            self._dynamic.add(assertion)
        self._mutations += 1
        if not dynamic:
            self._static_mutations += 1
        return assertion

    # -- layering hooks ---------------------------------------------------
    def _inherited_concept(
        self, concept: ConceptName, individual: Individual
    ) -> ConceptAssertion | None:
        """The assertion a lower layer contributes (none for a flat box).

        :class:`LayeredABox` overrides this so re-asserting a base fact
        OR-merges with the base event while the merged assertion lands
        in the overlay.
        """
        return None

    def _inherited_role(
        self, role: RoleName, key: tuple[Individual, Individual]
    ) -> RoleAssertion | None:
        """Role counterpart of :meth:`_inherited_concept`."""
        return None

    def _concept_table(self, concept: ConceptName) -> Mapping[Individual, ConceptAssertion]:
        """The effective (layer-merged) assertion table of one concept."""
        return self._concepts.get(concept, {})

    def _role_table(
        self, role: RoleName
    ) -> Mapping[tuple[Individual, Individual], RoleAssertion]:
        """The effective (layer-merged) assertion table of one role."""
        return self._roles.get(role, {})

    # -- retraction ----------------------------------------------------
    def clear_dynamic(self) -> int:
        """Drop every assertion tagged dynamic; returns how many.

        Called by the context refresh cycle before loading the new
        snapshot's assertions.  On a :class:`LayeredABox` this drops
        only the *overlay's* dynamic assertions — the base is never
        touched (its dynamic facts, if any, shine through again once an
        overlay shadow is removed).
        """
        self._check_mutable()
        removed = 0
        for table in self._concepts.values():
            stale = [key for key, assertion in table.items() if assertion.dynamic]
            for key in stale:
                del table[key]
            removed += len(stale)
        for role_table in self._roles.values():
            stale_pairs = [key for key, assertion in role_table.items() if assertion.dynamic]
            for key in stale_pairs:
                del role_table[key]
            removed += len(stale_pairs)
        self._dynamic.clear()
        if removed:
            self._mutations += 1
        return removed

    def dynamic_assertions(self) -> frozenset:
        """The dynamic assertions as a set, maintained incrementally.

        The content equals filtering :meth:`concept_assertions` /
        :meth:`role_assertions` on ``dynamic``, without the full scan —
        the incremental-rescoring snapshot (:mod:`repro.engine.basis`)
        takes this on every cold refresh and reuse check.
        """
        return frozenset(self._dynamic)

    def dynamic_signature(self) -> tuple[tuple, tuple]:
        """Canonical string rendering of this box's own dynamic set.

        Returns ``(concepts, roles)`` as sorted tuples of stringified
        assertion rows — the content half of the engine's context
        signature.  Cached per mutation epoch, so a frozen shared base
        renders its (possibly large) sensed-context set exactly once
        per process; every tenant overlay then reuses the tuple
        instead of re-walking tens of thousands of base assertions.
        """
        cached = self._signature_cache
        if cached is not None and cached[0] == self._mutations:
            return cached[1]
        concepts = []
        roles = []
        for assertion in self._dynamic:
            if isinstance(assertion, ConceptAssertion):
                concepts.append(
                    (
                        str(assertion.concept),
                        str(assertion.individual),
                        str(assertion.event),
                    )
                )
            else:
                roles.append(
                    (
                        str(assertion.role),
                        str(assertion.source),
                        str(assertion.target),
                        str(assertion.event),
                    )
                )
        signature = (tuple(sorted(concepts)), tuple(sorted(roles)))
        self._signature_cache = (self._mutations, signature)
        return signature

    # -- lookups ----------------------------------------------------------
    @property
    def individuals(self) -> frozenset[Individual]:
        return frozenset(self._individuals)

    @property
    def concept_names(self) -> frozenset[ConceptName]:
        return frozenset(self._concepts)

    @property
    def role_names(self) -> frozenset[RoleName]:
        return frozenset(self._roles)

    def concept_event(self, concept: ConceptName, individual: Individual) -> EventExpr | None:
        """Event of the direct assertion ``concept(individual)``, if any."""
        assertion = self._concepts.get(concept, {}).get(individual)
        if assertion is None:
            assertion = self._inherited_concept(concept, individual)
        return assertion.event if assertion is not None else None

    def concept_members(self, concept: ConceptName) -> Iterator[ConceptAssertion]:
        """All direct assertions of one concept name."""
        return iter(self._concept_table(concept).values())

    def role_event(self, role: RoleName, source: Individual, target: Individual) -> EventExpr | None:
        assertion = self._roles.get(role, {}).get((source, target))
        if assertion is None:
            assertion = self._inherited_role(role, (source, target))
        return assertion.event if assertion is not None else None

    def role_successors(self, role: RoleName, source: Individual) -> Iterator[RoleAssertion]:
        """All role assertions leaving ``source`` via ``role``."""
        for (src, _dst), assertion in self._role_table(role).items():
            if src == source:
                yield assertion

    def role_adjacency(self) -> dict[RoleName, dict[Individual, tuple[RoleAssertion, ...]]]:
        """All role assertions grouped ``role -> source -> assertions``.

        One pass over the role tables; the set-at-a-time reasoner
        (:mod:`repro.reason`) builds this once per ABox epoch and then
        answers every successor walk from the index, instead of paying
        :meth:`role_successors`'s full-table scan per (individual, role)
        — the naive per-call path stays as the uncached reference.

        On a frozen box the index is computed once and shared by
        reference across every overlay and reasoner session over it.
        """
        if self._adjacency_cache is not None:
            return self._adjacency_cache
        adjacency: dict[RoleName, dict[Individual, tuple[RoleAssertion, ...]]] = {}
        for role, table in self._roles.items():
            by_source: dict[Individual, list[RoleAssertion]] = {}
            for (source, _target), assertion in table.items():
                by_source.setdefault(source, []).append(assertion)
            adjacency[role] = {
                source: tuple(assertions) for source, assertions in by_source.items()
            }
        if self._frozen:
            self._adjacency_cache = adjacency
        return adjacency

    def role_pairs(self, role: RoleName) -> Iterator[RoleAssertion]:
        """All assertions of one role."""
        return iter(self._role_table(role).values())

    def concept_assertions(self) -> Iterator[ConceptAssertion]:
        """Every concept assertion in the ABox."""
        for table in self._concepts.values():
            yield from table.values()

    def role_assertions(self) -> Iterator[RoleAssertion]:
        """Every role assertion in the ABox."""
        for table in self._roles.values():
            yield from table.values()

    def __len__(self) -> int:
        """Total number of assertions (the paper's "tuple" count)."""
        concept_count = sum(len(table) for table in self._concepts.values())
        role_count = sum(len(table) for table in self._roles.values())
        return concept_count + role_count

    def __repr__(self) -> str:
        return (
            f"ABox(individuals={len(self._individuals)}, "
            f"concepts={len(self._concepts)}, roles={len(self._roles)}, assertions={len(self)})"
        )

    # -- bulk load ------------------------------------------------------
    def adopt(
        self,
        concepts: Iterable[ConceptAssertion],
        roles: Iterable[RoleAssertion],
        individuals: Iterable[Individual] = (),
        *,
        individuals_complete: bool = False,
    ) -> None:
        """Install pre-merged assertion rows directly, skipping merge work.

        The snapshot loader's fast path: the rows come from a box that
        already OR-merged duplicate facts, so each ``(concept,
        individual)`` / ``(role, source, target)`` key appears exactly
        once and the per-assertion :func:`~repro.events.expr.disj`
        merge of :meth:`assert_concept` would only burn time proving
        there is nothing to merge.  Epoch counters advance exactly as
        if each row had been asserted individually, so every downstream
        cache key sees the same epochs either way.  Keys already
        present raise :class:`ABoxError` — adopt restores into a fresh
        (or disjoint) box, it does not merge.

        ``individuals_complete=True`` promises that ``individuals``
        already names every individual appearing in the rows, so the
        per-row domain registration is skipped.
        """
        self._check_mutable()
        for individual in individuals:
            self.register_individual(individual)
        # This is the snapshot-restore hot loop over ~10^5 rows, so the
        # per-row attribute dereferences are hoisted into locals and the
        # epoch counters are applied once at the end (same final values
        # as per-row increments — downstream cache keys only ever see
        # the post-adopt epochs).
        known = self._individuals
        dynamic_set = self._dynamic
        concept_tables = self._concepts
        role_tables = self._roles
        total = 0
        dynamic_total = 0
        # Snapshot rows arrive sorted, so consecutive assertions share
        # a predicate; caching the current inner table turns ~10^5
        # setdefault probes into one per distinct name.
        last_concept = last_role = None
        table: dict = {}
        role_table: dict = {}
        for assertion in concepts:
            if assertion.concept is not last_concept:
                table = concept_tables.setdefault(assertion.concept, {})
                last_concept = assertion.concept
            individual = assertion.individual
            if individual in table:
                raise ABoxError(
                    f"adopt collision on {assertion.concept}({individual}); "
                    "adopt() requires pre-merged rows over fresh keys"
                )
            table[individual] = assertion
            if not individuals_complete:
                known.add(individual)
            if assertion.dynamic:
                dynamic_set.add(assertion)
                dynamic_total += 1
            total += 1
        for assertion in roles:
            if assertion.role is not last_role:
                role_table = role_tables.setdefault(assertion.role, {})
                last_role = assertion.role
            key = (assertion.source, assertion.target)
            if key in role_table:
                raise ABoxError(
                    f"adopt collision on {assertion.role}{key}; "
                    "adopt() requires pre-merged rows over fresh keys"
                )
            role_table[key] = assertion
            if not individuals_complete:
                known.add(assertion.source)
                known.add(assertion.target)
            if assertion.dynamic:
                dynamic_set.add(assertion)
                dynamic_total += 1
            total += 1
        self._mutations += total
        self._static_mutations += total - dynamic_total

    def update(self, assertions: Iterable[ConceptAssertion | RoleAssertion]) -> None:
        """Re-play a stream of assertions into this ABox."""
        for assertion in assertions:
            if isinstance(assertion, ConceptAssertion):
                self.assert_concept(assertion.concept, assertion.individual, assertion.event, assertion.dynamic)
            elif isinstance(assertion, RoleAssertion):
                self.assert_role(assertion.role, assertion.source, assertion.target, assertion.event, assertion.dynamic)
            else:
                raise ABoxError(f"cannot load {assertion!r} into an ABox")


class LayeredABox(ABox):
    """A copy-on-write overlay over a shared static base ABox.

    Reads see the union of base and overlay, with overlay assertions
    shadowing base assertions about the same fact; writes, retractions
    (:meth:`clear_dynamic`) and the dynamic set touch only the overlay.
    Re-asserting a base fact OR-merges with the base event — exactly
    the accumulation semantics of a flat box — but the merged assertion
    lives in the overlay, so dropping it reveals the base fact again.

    The base is shared *by reference*: a thousand overlays over one
    world cost a thousand small dictionaries, not a thousand copies of
    the catalogue.  Epoch counters combine both layers
    (``mutation_count = base + overlay``), so every existing cache key
    — the engine's context signature, the compiled reasoner's epoch —
    keeps working unchanged; :attr:`overlay_mutation_count` exposes the
    overlay's own epoch for base-tier sharing.

    Overlays nest: ``base.overlay().overlay()`` builds a chain (e.g.
    shared world → team context → user context), each layer shadowing
    the ones below.

    Examples
    --------
    >>> base = ABox()
    >>> _ = base.assert_concept("TvProgram", "oprah")
    >>> user_box = base.freeze().overlay()
    >>> _ = user_box.assert_concept("Weekend", "peter", dynamic=True)
    >>> len(base), len(user_box)
    (1, 2)
    >>> user_box.clear_dynamic()
    1
    >>> len(user_box)
    1
    """

    def __init__(self, base: ABox) -> None:
        super().__init__()
        if not isinstance(base, ABox):
            raise ABoxError(f"overlay base must be an ABox, got {base!r}")
        self._base = base

    @property
    def base(self) -> ABox:
        """The shared static base this overlay reads through to."""
        return self._base

    # -- epochs -----------------------------------------------------------
    @property
    def mutation_count(self) -> int:
        return self._base.mutation_count + self._mutations

    @property
    def static_mutation_count(self) -> int:
        return self._base.static_mutation_count + self._static_mutations

    @property
    def overlay_mutation_count(self) -> int:
        """The overlay's own epoch (base changes excluded)."""
        return self._mutations

    # -- layering hooks ---------------------------------------------------
    def _inherited_concept(
        self, concept: ConceptName, individual: Individual
    ) -> ConceptAssertion | None:
        found = self._base._concepts.get(concept, {}).get(individual)
        if found is None:
            found = self._base._inherited_concept(concept, individual)
        return found

    def _inherited_role(
        self, role: RoleName, key: tuple[Individual, Individual]
    ) -> RoleAssertion | None:
        found = self._base._roles.get(role, {}).get(key)
        if found is None:
            found = self._base._inherited_role(role, key)
        return found

    def _concept_table(self, concept: ConceptName) -> Mapping[Individual, ConceptAssertion]:
        local = self._concepts.get(concept)
        below = self._base._concept_table(concept)
        if not local:
            return below
        if not below:
            return local
        merged = dict(below)
        merged.update(local)
        return merged

    def _role_table(
        self, role: RoleName
    ) -> Mapping[tuple[Individual, Individual], RoleAssertion]:
        local = self._roles.get(role)
        below = self._base._role_table(role)
        if not local:
            return below
        if not below:
            return local
        merged = dict(below)
        merged.update(local)
        return merged

    # -- the overlay's own slice -----------------------------------------
    def overlay_assertions(self) -> Iterator[ConceptAssertion | RoleAssertion]:
        """Every assertion stored in this layer (static and dynamic)."""
        for table in self._concepts.values():
            yield from table.values()
        for role_table in self._roles.values():
            yield from role_table.values()

    def overlay_snapshot(self) -> frozenset:
        """This layer's assertions as a diffable set.

        The engine's incremental-rescoring basis snapshots this instead
        of just the dynamic assertions: two tenants over one base then
        diff by their *entire* per-user slice, so a basis compiled for
        one tenant is provably reusable by another.
        """
        return frozenset(self.overlay_assertions())

    def overlay_names(self) -> frozenset[str]:
        """Names of the individuals this layer asserts anything about."""
        names: set[str] = set()
        for table in self._concepts.values():
            for assertion in table.values():
                names.add(assertion.individual.name)
        for role_table in self._roles.values():
            for assertion in role_table.values():
                names.add(assertion.source.name)
                names.add(assertion.target.name)
        return frozenset(names)

    # -- merged reads -----------------------------------------------------
    def dynamic_assertions(self) -> frozenset:
        base_dynamic = self._base.dynamic_assertions()
        if not base_dynamic:
            return frozenset(self._dynamic)
        live = {
            assertion
            for assertion in base_dynamic
            if not self._shadows(assertion)
        }
        return frozenset(live | self._dynamic)

    def dynamic_signature(self) -> tuple[tuple, tuple]:
        """Layered rendering: the base's cached tuples + the overlay's.

        Equals rendering :meth:`dynamic_assertions` directly (base
        dynamic facts minus shadowed, plus overlay dynamic facts), but
        the base's — usually dominant — share comes from its per-epoch
        cache, so a thousand overlays over one frozen world render the
        shared sensed context once instead of a thousand times.
        """
        from heapq import merge as _sorted_merge

        base_concepts, base_roles = self._base.dynamic_signature()
        own_concepts, own_roles = ABox.dynamic_signature(self)
        if base_concepts and self._concepts:
            shadowed = {
                (str(concept), str(individual))
                for concept, table in self._concepts.items()
                for individual in table
            }
            base_concepts = tuple(
                entry
                for entry in base_concepts
                if (entry[0], entry[1]) not in shadowed
            )
        if base_roles and self._roles:
            shadowed_roles = {
                (str(role), str(source), str(target))
                for role, table in self._roles.items()
                for source, target in table
            }
            base_roles = tuple(
                entry
                for entry in base_roles
                if (entry[0], entry[1], entry[2]) not in shadowed_roles
            )
        concepts = (
            tuple(_sorted_merge(base_concepts, own_concepts))
            if own_concepts
            else base_concepts
        )
        roles = (
            tuple(_sorted_merge(base_roles, own_roles)) if own_roles else base_roles
        )
        return (concepts, roles)

    def _shadows(self, assertion: ConceptAssertion | RoleAssertion) -> bool:
        if isinstance(assertion, ConceptAssertion):
            return assertion.individual in self._concepts.get(assertion.concept, {})
        return (assertion.source, assertion.target) in self._roles.get(assertion.role, {})

    @property
    def individuals(self) -> frozenset[Individual]:
        return self._base.individuals | frozenset(self._individuals)

    @property
    def concept_names(self) -> frozenset[ConceptName]:
        return self._base.concept_names | frozenset(self._concepts)

    @property
    def role_names(self) -> frozenset[RoleName]:
        return self._base.role_names | frozenset(self._roles)

    def role_successors(self, role: RoleName, source: Individual) -> Iterator[RoleAssertion]:
        local = self._roles.get(role)
        if not local:
            yield from self._base.role_successors(role, source)
            return
        merged: dict[tuple[Individual, Individual], RoleAssertion] = {}
        for assertion in self._base.role_successors(role, source):
            merged[(assertion.source, assertion.target)] = assertion
        for (src, dst), assertion in local.items():
            if src == source:
                merged[(src, dst)] = assertion
        yield from merged.values()

    def role_adjacency(self) -> dict[RoleName, dict[Individual, tuple[RoleAssertion, ...]]]:
        """Base adjacency (cached once on a frozen base) plus the overlay.

        Only the outer map and the (role, source) groups the overlay
        touches are copied — O(roles + overlay), not O(world).
        """
        adjacency = dict(self._base.role_adjacency())
        for role, local in self._roles.items():
            role_map = dict(adjacency.get(role, {}))
            touched_sources: dict[Individual, dict[tuple[Individual, Individual], RoleAssertion]] = {}
            for (source, target), assertion in local.items():
                touched_sources.setdefault(source, {})[(source, target)] = assertion
            for source, entries in touched_sources.items():
                merged = {
                    (assertion.source, assertion.target): assertion
                    for assertion in role_map.get(source, ())
                }
                merged.update(entries)
                role_map[source] = tuple(merged.values())
            adjacency[role] = role_map
        return adjacency

    def concept_assertions(self) -> Iterator[ConceptAssertion]:
        for assertion in self._base.concept_assertions():
            if assertion.individual not in self._concepts.get(assertion.concept, {}):
                yield assertion
        for table in self._concepts.values():
            yield from table.values()

    def role_assertions(self) -> Iterator[RoleAssertion]:
        for assertion in self._base.role_assertions():
            if (assertion.source, assertion.target) not in self._roles.get(assertion.role, {}):
                yield assertion
        for table in self._roles.values():
            yield from table.values()

    def __len__(self) -> int:
        shadowed = 0
        for concept, table in self._concepts.items():
            shadowed += sum(
                1 for individual in table
                if self._inherited_concept(concept, individual) is not None
            )
        for role, role_table in self._roles.items():
            shadowed += sum(
                1 for key in role_table if self._inherited_role(role, key) is not None
            )
        local = sum(len(table) for table in self._concepts.values()) + sum(
            len(table) for table in self._roles.values()
        )
        return len(self._base) + local - shadowed

    def __repr__(self) -> str:
        local = sum(len(table) for table in self._concepts.values()) + sum(
            len(table) for table in self._roles.values()
        )
        return f"LayeredABox(base={self._base!r}, overlay_assertions={local})"
