"""ABox: assertional knowledge weighted by event expressions.

Following the paper's naive implementation, "we view each concept as a
table, which uses the concept name as the table name and has an ID
attribute and an event expression attribute. Similarly, we view each
role as a table [...] containing three attributes; SOURCE, DESTINATION,
and an event expression."

The ABox is the in-memory form of exactly those tables: each concept
assertion ``A(i)`` and role assertion ``R(i, j)`` carries the event
expression under which it holds.  Certain facts carry :data:`ALWAYS`.
Dynamic context (sensor-fed) assertions are ordinary assertions whose
events come from fresh sensor measurements; they are replaced wholesale
on every context refresh through the ``dynamic`` tag.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator

from repro.errors import ABoxError
from repro.events.expr import ALWAYS, EventExpr, disj
from repro.dl.vocabulary import ConceptName, Individual, RoleName

__all__ = ["ConceptAssertion", "RoleAssertion", "ABox"]


@dataclass(frozen=True)
class ConceptAssertion:
    """``A(individual)`` holding under ``event``."""

    concept: ConceptName
    individual: Individual
    event: EventExpr
    dynamic: bool = False

    def __str__(self) -> str:
        return f"{self.concept}({self.individual}) [{self.event}]"


@dataclass(frozen=True)
class RoleAssertion:
    """``R(source, target)`` holding under ``event``."""

    role: RoleName
    source: Individual
    target: Individual
    event: EventExpr
    dynamic: bool = False

    def __str__(self) -> str:
        return f"{self.role}({self.source}, {self.target}) [{self.event}]"


class ABox:
    """A set of event-weighted concept and role assertions.

    Assertions about the same fact accumulate disjunctively: asserting
    ``A(i)`` twice with events ``e1`` and ``e2`` means ``A(i)`` holds
    under ``e1 OR e2`` (two independent reasons to believe the fact).

    Examples
    --------
    >>> from repro.events import EventSpace
    >>> box = ABox()
    >>> space = EventSpace()
    >>> _ = box.assert_concept("TvProgram", "oprah")
    >>> _ = box.assert_role("hasGenre", "oprah", "HUMAN-INTEREST",
    ...                     space.atom("genre:oprah", 0.85))
    >>> len(list(box.role_assertions()))
    1
    """

    def __init__(self) -> None:
        self._concepts: dict[ConceptName, dict[Individual, ConceptAssertion]] = {}
        self._roles: dict[RoleName, dict[tuple[Individual, Individual], RoleAssertion]] = {}
        self._individuals: set[Individual] = set()
        self._dynamic: set[ConceptAssertion | RoleAssertion] = set()
        self._mutations = 0
        self._static_mutations = 0

    @property
    def mutation_count(self) -> int:
        """Monotonic counter bumped on every assertion or retraction.

        Cheap change detection for callers that cache derived state
        (e.g. the engine's context signature): an unchanged counter
        guarantees an unchanged ABox.
        """
        return self._mutations

    @property
    def static_mutation_count(self) -> int:
        """Monotonic counter bumped only by *static* knowledge changes.

        Dynamic (context) assertions come and go on every refresh
        without touching this counter, so it distinguishes "the
        catalogue changed" from "the context changed" — the engine's
        cache key combines this epoch with a content rendering of the
        dynamic assertions.
        """
        return self._static_mutations

    # -- assertion entry --------------------------------------------------
    def register_individual(self, individual: str | Individual) -> Individual:
        """Add an individual to the domain (idempotent)."""
        individual = Individual(individual) if isinstance(individual, str) else individual
        self._individuals.add(individual)
        return individual

    def assert_concept(
        self,
        concept: str | ConceptName,
        individual: str | Individual,
        event: EventExpr = ALWAYS,
        dynamic: bool = False,
    ) -> ConceptAssertion:
        """Assert ``concept(individual)`` under ``event``."""
        concept = ConceptName(concept) if isinstance(concept, str) else concept
        individual = self.register_individual(individual)
        if not isinstance(event, EventExpr):
            raise ABoxError(f"assertion event must be an EventExpr, got {event!r}")
        table = self._concepts.setdefault(concept, {})
        existing = table.get(individual)
        if existing is not None:
            event = disj([existing.event, event])
            dynamic = dynamic or existing.dynamic
            self._dynamic.discard(existing)
        assertion = ConceptAssertion(concept, individual, event, dynamic)
        table[individual] = assertion
        if dynamic:
            self._dynamic.add(assertion)
        self._mutations += 1
        if not dynamic:
            self._static_mutations += 1
        return assertion

    def assert_role(
        self,
        role: str | RoleName,
        source: str | Individual,
        target: str | Individual,
        event: EventExpr = ALWAYS,
        dynamic: bool = False,
    ) -> RoleAssertion:
        """Assert ``role(source, target)`` under ``event``."""
        role = RoleName(role) if isinstance(role, str) else role
        source = self.register_individual(source)
        target = self.register_individual(target)
        if not isinstance(event, EventExpr):
            raise ABoxError(f"assertion event must be an EventExpr, got {event!r}")
        table = self._roles.setdefault(role, {})
        key = (source, target)
        existing = table.get(key)
        if existing is not None:
            event = disj([existing.event, event])
            dynamic = dynamic or existing.dynamic
            self._dynamic.discard(existing)
        assertion = RoleAssertion(role, source, target, event, dynamic)
        table[key] = assertion
        if dynamic:
            self._dynamic.add(assertion)
        self._mutations += 1
        if not dynamic:
            self._static_mutations += 1
        return assertion

    # -- retraction ----------------------------------------------------
    def clear_dynamic(self) -> int:
        """Drop every assertion tagged dynamic; returns how many.

        Called by the context refresh cycle before loading the new
        snapshot's assertions.
        """
        removed = 0
        for table in self._concepts.values():
            stale = [key for key, assertion in table.items() if assertion.dynamic]
            for key in stale:
                del table[key]
            removed += len(stale)
        for role_table in self._roles.values():
            stale_pairs = [key for key, assertion in role_table.items() if assertion.dynamic]
            for key in stale_pairs:
                del role_table[key]
            removed += len(stale_pairs)
        self._dynamic.clear()
        if removed:
            self._mutations += 1
        return removed

    def dynamic_assertions(self) -> frozenset:
        """The dynamic assertions as a set, maintained incrementally.

        The content equals filtering :meth:`concept_assertions` /
        :meth:`role_assertions` on ``dynamic``, without the full scan —
        the incremental-rescoring snapshot (:mod:`repro.engine.basis`)
        takes this on every cold refresh and reuse check.
        """
        return frozenset(self._dynamic)

    # -- lookups ----------------------------------------------------------
    @property
    def individuals(self) -> frozenset[Individual]:
        return frozenset(self._individuals)

    @property
    def concept_names(self) -> frozenset[ConceptName]:
        return frozenset(self._concepts)

    @property
    def role_names(self) -> frozenset[RoleName]:
        return frozenset(self._roles)

    def concept_event(self, concept: ConceptName, individual: Individual) -> EventExpr | None:
        """Event of the direct assertion ``concept(individual)``, if any."""
        assertion = self._concepts.get(concept, {}).get(individual)
        return assertion.event if assertion is not None else None

    def concept_members(self, concept: ConceptName) -> Iterator[ConceptAssertion]:
        """All direct assertions of one concept name."""
        return iter(self._concepts.get(concept, {}).values())

    def role_event(self, role: RoleName, source: Individual, target: Individual) -> EventExpr | None:
        assertion = self._roles.get(role, {}).get((source, target))
        return assertion.event if assertion is not None else None

    def role_successors(self, role: RoleName, source: Individual) -> Iterator[RoleAssertion]:
        """All role assertions leaving ``source`` via ``role``."""
        for (src, _dst), assertion in self._roles.get(role, {}).items():
            if src == source:
                yield assertion

    def role_adjacency(self) -> dict[RoleName, dict[Individual, tuple[RoleAssertion, ...]]]:
        """All role assertions grouped ``role -> source -> assertions``.

        One pass over the role tables; the set-at-a-time reasoner
        (:mod:`repro.reason`) builds this once per ABox epoch and then
        answers every successor walk from the index, instead of paying
        :meth:`role_successors`'s full-table scan per (individual, role)
        — the naive per-call path stays as the uncached reference.
        """
        adjacency: dict[RoleName, dict[Individual, tuple[RoleAssertion, ...]]] = {}
        for role, table in self._roles.items():
            by_source: dict[Individual, list[RoleAssertion]] = {}
            for (source, _target), assertion in table.items():
                by_source.setdefault(source, []).append(assertion)
            adjacency[role] = {
                source: tuple(assertions) for source, assertions in by_source.items()
            }
        return adjacency

    def role_pairs(self, role: RoleName) -> Iterator[RoleAssertion]:
        """All assertions of one role."""
        return iter(self._roles.get(role, {}).values())

    def concept_assertions(self) -> Iterator[ConceptAssertion]:
        """Every concept assertion in the ABox."""
        for table in self._concepts.values():
            yield from table.values()

    def role_assertions(self) -> Iterator[RoleAssertion]:
        """Every role assertion in the ABox."""
        for table in self._roles.values():
            yield from table.values()

    def __len__(self) -> int:
        """Total number of assertions (the paper's "tuple" count)."""
        concept_count = sum(len(table) for table in self._concepts.values())
        role_count = sum(len(table) for table in self._roles.values())
        return concept_count + role_count

    def __repr__(self) -> str:
        return (
            f"ABox(individuals={len(self._individuals)}, "
            f"concepts={len(self._concepts)}, roles={len(self._roles)}, assertions={len(self)})"
        )

    # -- bulk load ------------------------------------------------------
    def update(self, assertions: Iterable[ConceptAssertion | RoleAssertion]) -> None:
        """Re-play a stream of assertions into this ABox."""
        for assertion in assertions:
            if isinstance(assertion, ConceptAssertion):
                self.assert_concept(assertion.concept, assertion.individual, assertion.event, assertion.dynamic)
            elif isinstance(assertion, RoleAssertion):
                self.assert_role(assertion.role, assertion.source, assertion.target, assertion.event, assertion.dynamic)
            else:
                raise ABoxError(f"cannot load {assertion!r} into an ABox")
