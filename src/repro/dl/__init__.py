"""Description Logic substrate (S2).

Contexts and preferences in the paper are Description Logic concept
expressions.  This package provides the vocabulary (concept names,
roles, individuals), ALC(O)-style concept expressions with a text
parser, TBox classification and structural subsumption, an ABox whose
assertions are weighted by event expressions, and probabilistic
instance checking that maps an (individual, concept) pair to the event
expression under which membership holds.
"""

from repro.dl.abox import ABox, ConceptAssertion, LayeredABox, RoleAssertion
from repro.dl.concepts import (
    BOTTOM,
    TOP,
    And,
    AtLeast,
    Atomic,
    Bottom,
    Concept,
    Exists,
    ForAll,
    HasValue,
    Not,
    OneOf,
    Or,
    Top,
    at_least,
    at_most,
    atomic,
    complement,
    every,
    has_value,
    intersect,
    one_of,
    some,
    union,
)
from repro.dl.instances import (
    MembershipEvaluator,
    membership_event,
    membership_probability,
    retrieve,
    retrieve_probabilities,
)
from repro.dl.parser import parse_concept
from repro.dl.tbox import (
    Definition,
    DisjointnessAxiom,
    RoleSubsumptionAxiom,
    SubsumptionAxiom,
    TBox,
)
from repro.dl.vocabulary import ConceptName, Individual, RoleName

__all__ = [
    "ABox",
    "AtLeast",
    "BOTTOM",
    "TOP",
    "And",
    "Atomic",
    "Bottom",
    "Concept",
    "ConceptAssertion",
    "ConceptName",
    "Definition",
    "DisjointnessAxiom",
    "Exists",
    "ForAll",
    "HasValue",
    "Individual",
    "LayeredABox",
    "MembershipEvaluator",
    "Not",
    "OneOf",
    "Or",
    "RoleAssertion",
    "RoleName",
    "RoleSubsumptionAxiom",
    "SubsumptionAxiom",
    "TBox",
    "Top",
    "at_least",
    "at_most",
    "atomic",
    "complement",
    "every",
    "has_value",
    "intersect",
    "membership_event",
    "membership_probability",
    "one_of",
    "parse_concept",
    "retrieve",
    "retrieve_probabilities",
    "some",
    "union",
]
