"""The Description Logic vocabulary: concept names, role names, individuals.

The paper models contextual features and preferences "as concept
expressions in Description Logics" (following the authors' DEXA 2006
preference model).  The vocabulary layer gives the three kinds of names
those expressions are built from:

* **concept names** — unary predicates ("TvProgram", "Weekend");
* **role names** — binary predicates ("hasGenre", "locatedIn");
* **individuals** — constants ("PETER", "HUMAN-INTEREST").

Names are plain frozen value objects so they can live in sets, dict
keys, database rows and serialised text without ceremony.
"""

from __future__ import annotations

import re
from dataclasses import dataclass

from repro.errors import DLError

__all__ = ["ConceptName", "RoleName", "Individual"]

#: Identifiers: a letter, then letters/digits and ``_ - .`` separators.
_NAME_PATTERN = re.compile(r"^[A-Za-z][A-Za-z0-9_\-.]*$")


def _validate_name(name: str, kind: str) -> str:
    if not isinstance(name, str):
        raise DLError(f"{kind} name must be a string, got {name!r}")
    if not _NAME_PATTERN.match(name):
        raise DLError(
            f"invalid {kind} name {name!r}: must start with a letter and "
            "contain only letters, digits, '_', '-' and '.'"
        )
    return name


class _CachedNameHash:
    """Hash caching for the name value objects.

    Names are hashed millions of times as set members and dict keys
    (ABox tables, reasoner memos, snapshot restore), so each instance
    caches ``hash(self.name)`` on first use.  The cache is dropped on
    pickling — ``str`` hashes are salted per process, so a cached value
    must never cross an interpreter boundary.
    """

    def __hash__(self) -> int:
        try:
            return self._hash
        except AttributeError:
            value = hash(self.name)
            object.__setattr__(self, "_hash", value)
            return value

    def __getstate__(self):
        return self.name

    def __setstate__(self, state) -> None:
        object.__setattr__(self, "name", state)


@dataclass(frozen=True)
class ConceptName(_CachedNameHash):
    """The name of an atomic concept (a unary predicate)."""

    name: str

    # In the class body (not only inherited) so @dataclass sees an
    # explicit __hash__ and keeps it instead of generating one.
    __hash__ = _CachedNameHash.__hash__

    def __post_init__(self) -> None:
        _validate_name(self.name, "concept")

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class RoleName(_CachedNameHash):
    """The name of a role (a binary predicate)."""

    name: str

    __hash__ = _CachedNameHash.__hash__

    def __post_init__(self) -> None:
        _validate_name(self.name, "role")

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class Individual(_CachedNameHash):
    """A named individual (a constant in the domain)."""

    name: str

    __hash__ = _CachedNameHash.__hash__

    def __post_init__(self) -> None:
        _validate_name(self.name, "individual")

    def __str__(self) -> str:
        return self.name
