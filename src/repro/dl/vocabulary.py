"""The Description Logic vocabulary: concept names, role names, individuals.

The paper models contextual features and preferences "as concept
expressions in Description Logics" (following the authors' DEXA 2006
preference model).  The vocabulary layer gives the three kinds of names
those expressions are built from:

* **concept names** — unary predicates ("TvProgram", "Weekend");
* **role names** — binary predicates ("hasGenre", "locatedIn");
* **individuals** — constants ("PETER", "HUMAN-INTEREST").

Names are plain frozen value objects so they can live in sets, dict
keys, database rows and serialised text without ceremony.
"""

from __future__ import annotations

import re
from dataclasses import dataclass

from repro.errors import DLError

__all__ = ["ConceptName", "RoleName", "Individual"]

#: Identifiers: a letter, then letters/digits and ``_ - .`` separators.
_NAME_PATTERN = re.compile(r"^[A-Za-z][A-Za-z0-9_\-.]*$")


def _validate_name(name: str, kind: str) -> str:
    if not isinstance(name, str):
        raise DLError(f"{kind} name must be a string, got {name!r}")
    if not _NAME_PATTERN.match(name):
        raise DLError(
            f"invalid {kind} name {name!r}: must start with a letter and "
            "contain only letters, digits, '_', '-' and '.'"
        )
    return name


@dataclass(frozen=True)
class ConceptName:
    """The name of an atomic concept (a unary predicate)."""

    name: str

    def __post_init__(self) -> None:
        _validate_name(self.name, "concept")

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class RoleName:
    """The name of a role (a binary predicate)."""

    name: str

    def __post_init__(self) -> None:
        _validate_name(self.name, "role")

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class Individual:
    """A named individual (a constant in the domain)."""

    name: str

    def __post_init__(self) -> None:
        _validate_name(self.name, "individual")

    def __str__(self) -> str:
        return self.name
