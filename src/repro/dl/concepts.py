"""Concept expressions: the ALC(O) fragment used by preference rules.

Both the *Context* and the *Preference* part of a scored preference rule
are concept expressions (Section 4.1 of the paper), e.g.::

    TvProgram ⊓ ∃hasGenre.{HUMAN-INTEREST}

The constructors here mirror :mod:`repro.events.expr`: immutable nodes,
structural equality, canonicalised n-ary connectives, and light local
simplification (⊤/⊥ absorption, double negation, idempotence).  The
supported constructors:

===============  =========================  ============================
constructor      DL syntax                  meaning
===============  =========================  ============================
``TOP``          ⊤                          everything
``BOTTOM``       ⊥                          nothing
``Atomic``       A                          named concept
``Not``          ¬C                         complement
``And``          C ⊓ D                      intersection
``Or``           C ⊔ D                      union
``Exists``       ∃R.C                       some R-successor in C
``ForAll``       ∀R.C                       every R-successor in C
``OneOf``        {a, b}                     enumerated individuals
``HasValue``     ∃R.{a}                     R-successor equal to a
===============  =========================  ============================

``HasValue`` is kept as its own node (rather than desugaring) because
the paper writes rules in that form and explanations read better, but
it is semantically identical to ``Exists(R, OneOf({a}))`` and the
instance checker treats it so.
"""

from __future__ import annotations

from typing import Iterable, Iterator

from repro.errors import DLError
from repro.dl.vocabulary import ConceptName, Individual, RoleName

__all__ = [
    "Concept",
    "Top",
    "Bottom",
    "Atomic",
    "Not",
    "And",
    "Or",
    "Exists",
    "ForAll",
    "OneOf",
    "HasValue",
    "AtLeast",
    "TOP",
    "BOTTOM",
    "atomic",
    "intersect",
    "union",
    "complement",
    "some",
    "every",
    "one_of",
    "has_value",
    "at_least",
    "at_most",
]


class Concept:
    """Abstract base class of concept-expression nodes."""

    __slots__ = ("_key", "_hash")

    _key: tuple
    _hash: int

    def _init_node(self, key: tuple) -> None:
        self._key = key
        self._hash = hash(key)

    # -- structure ------------------------------------------------------
    def concept_names(self) -> frozenset[ConceptName]:
        """All atomic concept names mentioned in the expression."""
        names: set[ConceptName] = set()
        _collect(self, names, set(), set())
        return frozenset(names)

    def role_names(self) -> frozenset[RoleName]:
        """All role names mentioned in the expression."""
        roles: set[RoleName] = set()
        _collect(self, set(), roles, set())
        return frozenset(roles)

    def individuals(self) -> frozenset[Individual]:
        """All individuals mentioned in nominals / has-value fillers."""
        individuals: set[Individual] = set()
        _collect(self, set(), set(), individuals)
        return frozenset(individuals)

    # -- operators ------------------------------------------------------
    def __and__(self, other: "Concept") -> "Concept":
        return intersect([self, other])

    def __or__(self, other: "Concept") -> "Concept":
        return union([self, other])

    def __invert__(self) -> "Concept":
        return complement(self)

    # -- identity ---------------------------------------------------------
    def __eq__(self, other: object) -> bool:
        if self is other:
            return True
        if not isinstance(other, Concept):
            return NotImplemented
        return self._key == other._key

    def __hash__(self) -> int:
        return self._hash

    def sort_key(self) -> tuple:
        return self._key

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self})"


class Top(Concept):
    """⊤ — the universal concept; a rule context of ⊤ is a default rule."""

    __slots__ = ()

    def __init__(self) -> None:
        self._init_node(("T",))

    def __str__(self) -> str:
        return "TOP"


class Bottom(Concept):
    """⊥ — the empty concept."""

    __slots__ = ()

    def __init__(self) -> None:
        self._init_node(("B",))

    def __str__(self) -> str:
        return "BOTTOM"


TOP = Top()
BOTTOM = Bottom()


class Atomic(Concept):
    """A named concept, e.g. ``TvProgram`` or ``Weekend``."""

    __slots__ = ("concept",)

    def __init__(self, concept: ConceptName):
        if not isinstance(concept, ConceptName):
            raise DLError(f"Atomic requires a ConceptName, got {concept!r}")
        self.concept = concept
        self._init_node(("a", concept.name))

    @property
    def name(self) -> str:
        return self.concept.name

    def __str__(self) -> str:
        return self.concept.name


class Not(Concept):
    """¬C — complement (use :func:`complement`)."""

    __slots__ = ("child",)

    def __init__(self, child: Concept):
        self.child = child
        self._init_node(("n", child._key))

    def __str__(self) -> str:
        if isinstance(self.child, (Atomic, Top, Bottom, OneOf)):
            return f"NOT {self.child}"
        return f"NOT ({self.child})"


class _Nary(Concept):
    __slots__ = ("children",)

    _tag = "?"
    _word = "?"

    def __init__(self, children: tuple[Concept, ...]):
        self.children = children
        self._init_node((self._tag,) + tuple(child._key for child in children))

    def __iter__(self) -> Iterator[Concept]:
        return iter(self.children)

    def __str__(self) -> str:
        parts = []
        for child in self.children:
            text = str(child)
            if isinstance(child, _Nary):
                text = f"({text})"
            parts.append(text)
        return f" {self._word} ".join(parts)


class And(_Nary):
    """C ⊓ D — intersection (use :func:`intersect`)."""

    __slots__ = ()
    _tag = "&"
    _word = "AND"


class Or(_Nary):
    """C ⊔ D — union (use :func:`union`)."""

    __slots__ = ()
    _tag = "|"
    _word = "OR"


class Exists(Concept):
    """∃R.C — individuals with some R-successor in C."""

    __slots__ = ("role", "filler")

    def __init__(self, role: RoleName, filler: Concept):
        if not isinstance(role, RoleName):
            raise DLError(f"Exists requires a RoleName, got {role!r}")
        self.role = role
        self.filler = filler
        self._init_node(("e", role.name, filler._key))

    def __str__(self) -> str:
        filler = str(self.filler)
        if isinstance(self.filler, (_Nary, Not)):
            filler = f"({filler})"
        return f"EXISTS {self.role.name}.{filler}"


class ForAll(Concept):
    """∀R.C — individuals all of whose R-successors are in C."""

    __slots__ = ("role", "filler")

    def __init__(self, role: RoleName, filler: Concept):
        if not isinstance(role, RoleName):
            raise DLError(f"ForAll requires a RoleName, got {role!r}")
        self.role = role
        self.filler = filler
        self._init_node(("f", role.name, filler._key))

    def __str__(self) -> str:
        filler = str(self.filler)
        if isinstance(self.filler, (_Nary, Not)):
            filler = f"({filler})"
        return f"ALL {self.role.name}.{filler}"


class OneOf(Concept):
    """{a, b, ...} — an enumerated (nominal) concept."""

    __slots__ = ("members",)

    def __init__(self, members: frozenset[Individual]):
        if not members:
            raise DLError("OneOf requires at least one individual (use BOTTOM for none)")
        for member in members:
            if not isinstance(member, Individual):
                raise DLError(f"OneOf members must be Individuals, got {member!r}")
        self.members = members
        self._init_node(("o",) + tuple(sorted(member.name for member in members)))

    def __str__(self) -> str:
        return "{" + ", ".join(sorted(member.name for member in self.members)) + "}"


class AtLeast(Concept):
    """≥n R.C — individuals with at least n distinct R-successors in C.

    A qualified number restriction (the paper's DL background supports
    these; they let preferences say "programs with at least two genres
    I like").  ``AtLeast(1, R, C)`` is semantically ``Exists(R, C)``;
    the constructor :func:`at_least` normalises that case.
    """

    __slots__ = ("count", "role", "filler")

    def __init__(self, count: int, role: RoleName, filler: Concept):
        if not isinstance(count, int) or count < 1:
            raise DLError(f"AtLeast requires a positive integer count, got {count!r}")
        if not isinstance(role, RoleName):
            raise DLError(f"AtLeast requires a RoleName, got {role!r}")
        self.count = count
        self.role = role
        self.filler = filler
        self._init_node(("g", count, role.name, filler._key))

    def __str__(self) -> str:
        filler = str(self.filler)
        if isinstance(self.filler, (_Nary, Not)):
            filler = f"({filler})"
        return f"ATLEAST {self.count} {self.role.name}.{filler}"


class HasValue(Concept):
    """R VALUE a — sugar for ∃R.{a}, kept explicit for readability."""

    __slots__ = ("role", "value")

    def __init__(self, role: RoleName, value: Individual):
        if not isinstance(role, RoleName):
            raise DLError(f"HasValue requires a RoleName, got {role!r}")
        if not isinstance(value, Individual):
            raise DLError(f"HasValue requires an Individual, got {value!r}")
        self.role = role
        self.value = value
        # Same key as the desugared form so equal meanings compare equal.
        self._init_node(("e", role.name, ("o", value.name)))

    def desugar(self) -> Exists:
        """The equivalent ∃R.{a} form."""
        return Exists(self.role, OneOf(frozenset({self.value})))

    def __str__(self) -> str:
        return f"{self.role.name} VALUE {self.value.name}"


# -- public constructors -------------------------------------------------

def atomic(name: str | ConceptName) -> Atomic:
    """Build an atomic concept from a name."""
    if isinstance(name, str):
        name = ConceptName(name)
    return Atomic(name)


def complement(child: Concept) -> Concept:
    """¬C with ⊤/⊥ and double-negation simplification."""
    if not isinstance(child, Concept):
        raise DLError(f"complement() requires a Concept, got {child!r}")
    if isinstance(child, Top):
        return BOTTOM
    if isinstance(child, Bottom):
        return TOP
    if isinstance(child, Not):
        return child.child
    return Not(child)


def _flatten(children: Iterable[Concept], klass: type) -> list[Concept]:
    flat: list[Concept] = []
    for child in children:
        if not isinstance(child, Concept):
            raise DLError(f"connective requires Concept children, got {child!r}")
        if isinstance(child, klass):
            flat.extend(child.children)  # type: ignore[attr-defined]
        else:
            flat.append(child)
    return flat


def _canonical(children: list[Concept]) -> tuple[Concept, ...]:
    unique: dict[tuple, Concept] = {}
    for child in children:
        unique.setdefault(child._key, child)
    return tuple(sorted(unique.values(), key=Concept.sort_key))


def _has_complementary_pair(children: tuple[Concept, ...]) -> bool:
    keys = {child._key for child in children}
    for child in children:
        if isinstance(child, Not) and child.child._key in keys:
            return True
    return False


def intersect(children: Iterable[Concept]) -> Concept:
    """C ⊓ D ⊓ ... with flattening and simplification; empty = ⊤."""
    flat = _flatten(children, And)
    kept = [child for child in flat if not isinstance(child, Top)]
    if any(isinstance(child, Bottom) for child in kept):
        return BOTTOM
    ordered = _canonical(kept)
    if not ordered:
        return TOP
    if len(ordered) == 1:
        return ordered[0]
    if _has_complementary_pair(ordered):
        return BOTTOM
    return And(ordered)


def union(children: Iterable[Concept]) -> Concept:
    """C ⊔ D ⊔ ... with flattening and simplification; empty = ⊥."""
    flat = _flatten(children, Or)
    kept = [child for child in flat if not isinstance(child, Bottom)]
    if any(isinstance(child, Top) for child in kept):
        return TOP
    ordered = _canonical(kept)
    if not ordered:
        return BOTTOM
    if len(ordered) == 1:
        return ordered[0]
    if _has_complementary_pair(ordered):
        return TOP
    return Or(ordered)


def some(role: str | RoleName, filler: Concept) -> Concept:
    """∃R.C; collapses to ⊥ when the filler is ⊥."""
    if isinstance(role, str):
        role = RoleName(role)
    if isinstance(filler, Bottom):
        return BOTTOM
    return Exists(role, filler)


def every(role: str | RoleName, filler: Concept) -> Concept:
    """∀R.C; collapses to ⊤ when the filler is ⊤."""
    if isinstance(role, str):
        role = RoleName(role)
    if isinstance(filler, Top):
        return TOP
    return ForAll(role, filler)


def one_of(*members: str | Individual) -> OneOf:
    """{a, b, ...} from names or individuals."""
    resolved = frozenset(
        member if isinstance(member, Individual) else Individual(member) for member in members
    )
    return OneOf(resolved)


def has_value(role: str | RoleName, value: str | Individual) -> HasValue:
    """R VALUE a from names."""
    if isinstance(role, str):
        role = RoleName(role)
    if isinstance(value, str):
        value = Individual(value)
    return HasValue(role, value)


def at_least(count: int, role: str | RoleName, filler: Concept) -> Concept:
    """≥n R.C; ``n=1`` collapses to ∃R.C, ⊥ filler collapses to ⊥."""
    if isinstance(role, str):
        role = RoleName(role)
    if isinstance(filler, Bottom):
        return BOTTOM
    if count == 1:
        return Exists(role, filler)
    return AtLeast(count, role, filler)


def at_most(count: int, role: str | RoleName, filler: Concept) -> Concept:
    """≤n R.C, as ¬(≥n+1 R.C) (the classical rewriting)."""
    if not isinstance(count, int) or count < 0:
        raise DLError(f"at_most requires a non-negative integer count, got {count!r}")
    return complement(at_least(count + 1, role, filler))


def _collect(
    concept: Concept,
    names: set[ConceptName],
    roles: set[RoleName],
    individuals: set[Individual],
) -> None:
    if isinstance(concept, Atomic):
        names.add(concept.concept)
    elif isinstance(concept, Not):
        _collect(concept.child, names, roles, individuals)
    elif isinstance(concept, (And, Or)):
        for child in concept.children:
            _collect(child, names, roles, individuals)
    elif isinstance(concept, (Exists, ForAll, AtLeast)):
        roles.add(concept.role)
        _collect(concept.filler, names, roles, individuals)
    elif isinstance(concept, OneOf):
        individuals.update(concept.members)
    elif isinstance(concept, HasValue):
        roles.add(concept.role)
        individuals.add(concept.value)
