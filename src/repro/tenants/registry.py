"""The multi-tenant serving layer: one world, thousands of user sessions.

The paper's tvtouch vision (Section 2) is a single static domain
ontology consulted by *many* users, each contributing only a small
volatile slice — their context and situational assertions.  A
:class:`TenantRegistry` is that shape made executable: it holds one
shared base world (frozen so no tenant can mutate it), and mints a
:class:`UserSession` per tenant — a copy-on-write
:class:`~repro.dl.abox.LayeredABox` overlay for the tenant's own
assertions, a situated user individual, their preference rules, and a
:class:`~repro.engine.RankingEngine` wired over the overlay through
:class:`~repro.engine.EngineBuilder`.

What the layering buys (see :mod:`repro.reason` and
:mod:`repro.engine.basis` for the mechanics):

* a new session costs O(overlay), not O(world) — the static knowledge,
  role indexes and the compiled reasoner's base tier are shared by
  reference across the whole fleet;
* tenants' engines exchange compiled scoring bases through the
  process-wide pool, so even the first request of a fresh tenant can
  rescore on a sibling's matrix instead of re-binding every document;
* eviction is safe and cheap: a session is just its overlay and caches,
  so the registry LRU-bounds live sessions and re-mints on demand.

Checkout is thread-safe: concurrent ``session(tenant_id)`` calls for
the same tenant return one session object, and minting never races the
LRU bookkeeping.

Examples
--------
>>> from repro.tenants import TenantRegistry
>>> from repro.workloads import build_tvtouch
>>> registry = TenantRegistry(build_tvtouch(), max_sessions=100)
>>> alice = registry.session("alice")
>>> alice.install_context("Weekend", "Breakfast")
>>> alice.rank().top().document
'channel5_news'
>>> bob = registry.session("bob")       # no context installed
>>> bob.overlay is not alice.overlay
True
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Iterator, Mapping

from repro.dl.abox import ABox, LayeredABox
from repro.dl.vocabulary import Individual
from repro.errors import EngineConfigError
from repro.rules.repository import RuleRepository
from repro.engine.builder import EngineBuilder
from repro.engine.engine import RankingEngine

if TYPE_CHECKING:  # pragma: no cover - types only
    from repro.multiuser.group import GroupMember

__all__ = ["TenantRegistry", "UserSession", "TenantRegistryInfo"]


@dataclass(frozen=True)
class TenantRegistryInfo:
    """Checkout counters of a :class:`TenantRegistry`."""

    active: int
    max_sessions: int
    minted: int
    hits: int
    evictions: int

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.minted
        return self.hits / total if total else 0.0


class UserSession:
    """One tenant's live ranking session over the shared world.

    Carries the tenant's overlay (:class:`~repro.dl.abox.LayeredABox`),
    situated user individual and ranking engine.  The session is itself
    a valid ``world`` argument for :meth:`EngineBuilder.world` — it
    exposes the ``overlay``/``base`` pair, with everything else
    resolved from the base world — so ad-hoc engines (say, a different
    relevance strategy for one experiment) can be built over the same
    overlay.
    """

    def __init__(
        self,
        tenant_id: str,
        user: Individual,
        overlay: LayeredABox,
        base: object,
        engine: RankingEngine,
    ):
        self.tenant_id = tenant_id
        self.user = user
        self.overlay = overlay
        self.base = base
        self.engine = engine

    # -- the per-tenant slice ---------------------------------------------
    @property
    def repository(self) -> RuleRepository:
        """The tenant's preference rules."""
        return self.engine.preferences.repository()

    def install_context(self, *specs: str, tick: str = "ctx") -> None:
        """Replace this tenant's dynamic context (``CONCEPT[:PROB]`` specs).

        Context lands in the overlay only — siblings and the shared
        base never see it.
        """
        self.engine.install_context(*specs, tick=tick)

    def clear_context(self) -> int:
        """Drop this tenant's dynamic assertions (the base is untouched)."""
        return self.overlay.clear_dynamic()

    def assert_fact(self, concept: str, individual: str | Individual | None = None, **kwargs):
        """Assert a per-tenant concept fact into the overlay.

        Defaults to the session's own user as the individual — the
        common "this user is currently X" shape.
        """
        return self.overlay.assert_concept(
            concept, individual if individual is not None else self.user, **kwargs
        )

    # -- ranking ----------------------------------------------------------
    def rank(self, request=None):
        """Answer one ranking request (see :meth:`RankingEngine.rank`)."""
        return self.engine.rank(request)

    def rank_many(self, requests):
        return self.engine.rank_many(requests)

    def preference_scores(self) -> dict[str, float]:
        return self.engine.preference_scores()

    def explain(self, document: str) -> str:
        return self.engine.explain(document)

    def as_member(self, name: str | None = None) -> "GroupMember":
        """This tenant as a :class:`~repro.multiuser.GroupMember`.

        Members minted from one registry score over overlays of one
        base, so group ranking shares the base reasoning tier while
        each member keeps a private context.
        """
        return self.engine.as_member(name if name is not None else self.tenant_id)

    def __repr__(self) -> str:
        return (
            f"UserSession({self.tenant_id!r}, user={self.user}, "
            f"overlay_assertions={len(list(self.overlay.overlay_assertions()))})"
        )


class TenantRegistry:
    """Mints and pools per-tenant sessions over one shared base world.

    Parameters
    ----------
    world:
        The base world (duck-typed like :meth:`EngineBuilder.world`):
        ``abox`` and ``tbox`` are required; ``space``, ``target``,
        ``repository``, ``database``/``data_table`` are wired through
        when present.
    rules:
        Default preference rules for minted sessions: a shared
        :class:`RuleRepository`, or a ``tenant_id -> RuleRepository``
        factory for per-tenant rules.  ``None`` falls back to the
        world's repository.  A per-call ``rules=`` to :meth:`session`
        overrides this at mint time.
    max_sessions:
        LRU bound on live sessions; the least recently checked-out
        session is evicted when the bound is exceeded (its overlay and
        caches are dropped — re-minting is cheap by design).
    freeze:
        Freeze the base ABox (default).  Strongly recommended: a frozen
        base cannot be mutated by a stray tenant write, and its derived
        indexes are computed once and shared.
    engine_options:
        Builder options applied to every minted engine
        (``method=...``, ``relevance=...``, ``cache_size=...``, ...).
    """

    def __init__(
        self,
        world: object,
        *,
        rules: RuleRepository | Callable[[str], RuleRepository] | None = None,
        max_sessions: int = 1024,
        freeze: bool = True,
        **engine_options: object,
    ):
        abox = getattr(world, "abox", None)
        tbox = getattr(world, "tbox", None)
        if not isinstance(abox, ABox) or tbox is None:
            raise EngineConfigError(
                f"TenantRegistry needs a base world with 'abox' and 'tbox', "
                f"got {type(world).__name__}"
            )
        if not isinstance(max_sessions, int) or max_sessions < 1:
            raise EngineConfigError(
                f"max_sessions must be a positive integer, got {max_sessions!r}"
            )
        self.world = world
        self.abox = abox
        self.tbox = tbox
        self.space = getattr(world, "space", None)
        self._target = getattr(world, "target", None)
        self._rules = rules
        self._engine_options = dict(engine_options)
        self.max_sessions = max_sessions
        if freeze:
            abox.freeze()
        self._sessions: "OrderedDict[str, UserSession]" = OrderedDict()
        self._lock = threading.RLock()
        self._minted = 0
        self._hits = 0
        self._evictions = 0

    # -- checkout ----------------------------------------------------------
    def session(
        self,
        tenant_id: str,
        *,
        user: str | Individual | None = None,
        rules: RuleRepository | None = None,
        **options: object,
    ) -> UserSession:
        """The live session for ``tenant_id`` (minted on first checkout).

        ``user``, ``rules`` and builder ``options`` apply at *mint*
        time only; a checkout of an existing session returns it as-is.
        Thread-safe: concurrent checkouts of one tenant yield the same
        session object.
        """
        tenant_id = str(tenant_id)
        with self._lock:
            existing = self._sessions.get(tenant_id)
            if existing is not None:
                self._sessions.move_to_end(tenant_id)
                self._hits += 1
                return existing
            session = self._mint(tenant_id, user, rules, options)
            self._sessions[tenant_id] = session
            self._minted += 1
            while len(self._sessions) > self.max_sessions:
                self._sessions.popitem(last=False)
                self._evictions += 1
            return session

    def _mint(
        self,
        tenant_id: str,
        user: str | Individual | None,
        rules: RuleRepository | None,
        options: Mapping[str, object],
    ) -> UserSession:
        overlay = self.abox.overlay()
        if user is None:
            user = tenant_id
        individual = Individual(user) if isinstance(user, str) else user
        if individual not in self.abox.individuals:
            overlay.register_individual(individual)
        repository = rules if rules is not None else self._default_rules(tenant_id)
        builder = EngineBuilder().knowledge(overlay, self.tbox, individual, self.space)
        if self._target is not None:
            builder.target(self._target)
        if repository is not None:
            builder.preferences(repository)
        database = getattr(self.world, "database", None)
        data_table = getattr(self.world, "data_table", None)
        if database is not None and data_table is not None:
            builder.storage(database, data_table, getattr(self.world, "id_column", "id"))
        merged = dict(self._engine_options)
        merged.update(options)
        if merged:
            builder.options(**merged)
        return UserSession(tenant_id, individual, overlay, self.world, builder.build())

    def _default_rules(self, tenant_id: str) -> RuleRepository | None:
        if isinstance(self._rules, RuleRepository):
            return self._rules
        if callable(self._rules):
            return self._rules(tenant_id)
        return getattr(self.world, "repository", None)

    # -- pool management ---------------------------------------------------
    def evict(self, tenant_id: str) -> bool:
        """Drop a session (returns whether one was live)."""
        with self._lock:
            session = self._sessions.pop(str(tenant_id), None)
            if session is not None:
                self._evictions += 1
            return session is not None

    def clear(self) -> int:
        """Drop every live session; returns how many."""
        with self._lock:
            count = len(self._sessions)
            self._sessions.clear()
            self._evictions += count
            return count

    def info(self) -> TenantRegistryInfo:
        with self._lock:
            return TenantRegistryInfo(
                active=len(self._sessions),
                max_sessions=self.max_sessions,
                minted=self._minted,
                hits=self._hits,
                evictions=self._evictions,
            )

    def __len__(self) -> int:
        with self._lock:
            return len(self._sessions)

    def __contains__(self, tenant_id: object) -> bool:
        with self._lock:
            return str(tenant_id) in self._sessions

    def __iter__(self) -> Iterator[str]:
        with self._lock:
            return iter(list(self._sessions))

    def __repr__(self) -> str:
        info = self.info()
        return (
            f"TenantRegistry(active={info.active}/{info.max_sessions}, "
            f"minted={info.minted}, hits={info.hits}, evictions={info.evictions})"
        )
