"""The multi-tenant serving layer: one world, thousands of user sessions.

The paper's tvtouch vision (Section 2) is a single static domain
ontology consulted by *many* users, each contributing only a small
volatile slice — their context and situational assertions.  A
:class:`TenantRegistry` is that shape made executable: it holds one
shared base world (frozen so no tenant can mutate it), and mints a
:class:`UserSession` per tenant — a copy-on-write
:class:`~repro.dl.abox.LayeredABox` overlay for the tenant's own
assertions, a situated user individual, their preference rules, and a
:class:`~repro.engine.RankingEngine` wired over the overlay through
:class:`~repro.engine.EngineBuilder`.

What the layering buys (see :mod:`repro.reason` and
:mod:`repro.engine.basis` for the mechanics):

* a new session costs O(overlay), not O(world) — the static knowledge,
  role indexes and the compiled reasoner's base tier are shared by
  reference across the whole fleet;
* tenants' engines exchange compiled scoring bases through the
  process-wide pool, so even the first request of a fresh tenant can
  rescore on a sibling's matrix instead of re-binding every document;
* eviction is safe and cheap: a session is just its overlay and caches,
  so the registry LRU-bounds live sessions and re-mints on demand.

**Sharding & thread safety.**  The registry fronts ``shards``
independent LRU segments hashed by tenant id, each with its own lock,
so concurrent checkouts of *different* tenants never contend on one
global lock.  The contract:

* ``session(tenant_id)`` / ``checkout(tenant_id)`` are linearisable per
  tenant: concurrent calls for one tenant return the same
  :class:`UserSession` object, and minting never races the LRU
  bookkeeping (both happen under the tenant's shard lock).
* ``checkout`` additionally *pins* the session for the duration of the
  ``with`` block: a pinned session is never chosen as an LRU victim,
  and an explicit :meth:`evict` of a pinned session is *deferred* — the
  tenant disappears from the table immediately (the next checkout mints
  afresh) but the in-flight holder keeps a fully working session.  An
  eviction can therefore never yank the overlay out from under a rank.
* :meth:`info` and ``len``/``in``/iteration snapshot each shard under
  its lock, so the counters are internally consistent per shard and the
  aggregate is a sum of per-shard atomic snapshots (shards are read in
  sequence, so the aggregate can straddle concurrent checkouts — it is
  never a read of mutating dicts).
* ``max_sessions`` bounds the whole registry exactly: capacity is
  distributed ``floor(max_sessions / shards)`` per shard with the
  remainder spread one-per-shard, and ``shards`` is clamped to
  ``max_sessions`` so no shard has zero capacity.  With the default
  ``shards=1`` the bound (and the LRU order) is exactly global.

Examples
--------
>>> from repro.tenants import TenantRegistry
>>> from repro.workloads import build_tvtouch
>>> registry = TenantRegistry(build_tvtouch(), max_sessions=100)
>>> alice = registry.session("alice")
>>> alice.install_context("Weekend", "Breakfast")
>>> alice.rank().top().document
'channel5_news'
>>> bob = registry.session("bob")       # no context installed
>>> bob.overlay is not alice.overlay
True
"""

from __future__ import annotations

import threading
import zlib
from collections import OrderedDict
from contextlib import contextmanager
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Iterator, Mapping

from repro.dl.abox import ABox, LayeredABox
from repro.dl.vocabulary import Individual
from repro.errors import EngineConfigError, SnapshotError
from repro.rules.repository import RuleRepository
from repro.engine.builder import EngineBuilder
from repro.engine.engine import RankingEngine
from repro.engine.requests import RankRequest, RankResponse

if TYPE_CHECKING:  # pragma: no cover - types only
    from repro.multiuser.group import GroupMember
    from repro.store.journal import OverlayJournal

__all__ = ["TenantRegistry", "UserSession", "TenantRegistryInfo"]


@dataclass(frozen=True)
class TenantRegistryInfo:
    """Checkout counters of a :class:`TenantRegistry`.

    Snapshotted shard-by-shard under each shard's lock: every counter
    quadruple is internally consistent per shard, and the aggregate is
    the sum of those atomic snapshots.  ``pinned`` counts sessions
    currently checked out (in-flight requests holding them).
    """

    active: int
    max_sessions: int
    minted: int
    hits: int
    evictions: int
    shards: int = 1
    pinned: int = 0

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.minted
        return self.hits / total if total else 0.0


class UserSession:
    """One tenant's live ranking session over the shared world.

    Carries the tenant's overlay (:class:`~repro.dl.abox.LayeredABox`),
    situated user individual and ranking engine.  The session is itself
    a valid ``world`` argument for :meth:`EngineBuilder.world` — it
    exposes the ``overlay``/``base`` pair, with everything else
    resolved from the base world — so ad-hoc engines (say, a different
    relevance strategy for one experiment) can be built over the same
    overlay.

    Lifecycle: the registry tracks a *pin count* (held checkouts) and a
    *doomed* flag (evicted while pinned) on each session; both are
    registry bookkeeping — a session object stays fully functional for
    whoever holds it even after eviction, it is just no longer served
    to new checkouts.
    """

    def __init__(
        self,
        tenant_id: str,
        user: Individual,
        overlay: LayeredABox,
        base: object,
        engine: RankingEngine,
        journal: "OverlayJournal | None" = None,
    ):
        self.tenant_id = tenant_id
        self.user = user
        self.overlay = overlay
        self.base = base
        self.engine = engine
        self.journal = journal
        #: Checkouts currently holding this session (registry-managed,
        #: mutated only under the owning shard's lock).
        self.pins = 0
        #: Evicted while pinned: drop for real once the pins release.
        self.doomed = False

    def _persist(self) -> None:
        """Journal the overlay after a mutation (best effort).

        Durability must never fail a rank: a full disk or unwritable
        journal degrades to in-memory-only sessions, exactly the
        pre-journal behaviour.
        """
        if self.journal is None:
            return
        try:
            self.journal.record(self.tenant_id, self.overlay)
        except OSError:
            pass

    # -- the per-tenant slice ---------------------------------------------
    @property
    def repository(self) -> RuleRepository:
        """The tenant's preference rules."""
        return self.engine.preferences.repository()

    def install_context(self, *specs: str, tick: str = "ctx") -> None:
        """Replace this tenant's dynamic context (``CONCEPT[:PROB]`` specs).

        Context lands in the overlay only — siblings and the shared
        base never see it.  With a registry journal attached, the new
        overlay state is persisted so the context survives a restart.
        """
        self.engine.install_context(*specs, tick=tick)
        self._persist()

    def clear_context(self) -> int:
        """Drop this tenant's dynamic assertions (the base is untouched)."""
        dropped = self.overlay.clear_dynamic()
        self._persist()
        return dropped

    def assert_fact(self, concept: str, individual: str | Individual | None = None, **kwargs):
        """Assert a per-tenant concept fact into the overlay.

        Defaults to the session's own user as the individual — the
        common "this user is currently X" shape.
        """
        assertion = self.overlay.assert_concept(
            concept, individual if individual is not None else self.user, **kwargs
        )
        self._persist()
        return assertion

    # -- ranking ----------------------------------------------------------
    def rank(self, request=None):
        """Answer one ranking request (see :meth:`RankingEngine.rank`)."""
        return self.engine.rank(request)

    def rank_in_context(
        self,
        specs=None,
        request: RankRequest | str | None = None,
        *,
        tick: str = "ctx",
    ) -> RankResponse:
        """Atomically install a context delta, then rank.

        The serving primitive (see
        :meth:`RankingEngine.rank_in_context`): install + rank run
        under one hold of the engine lock, so a concurrent request on
        the same session can never score a half-installed context.
        """
        response = self.engine.rank_in_context(specs, request, tick=tick)
        if specs:
            self._persist()
        return response

    def rank_many(self, requests, contexts=None):
        return self.engine.rank_many(requests, contexts)

    def prepare_rank(
        self,
        specs=None,
        request: RankRequest | str | None = None,
        *,
        tick: str = "ctx",
    ):
        """Snapshot install + rank for batched scoring (see
        :meth:`RankingEngine.prepare_rank`): the context delta lands
        under the engine lock (and is journaled), the kernel pass runs
        outside it so batch-mates from other tenants never wait here."""
        prepared = self.engine.prepare_rank(specs, request, tick=tick)
        if specs:
            self._persist()
        return prepared

    def preference_scores(self) -> dict[str, float]:
        return self.engine.preference_scores()

    def explain(self, document: str) -> str:
        return self.engine.explain(document)

    def as_member(self, name: str | None = None) -> "GroupMember":
        """This tenant as a :class:`~repro.multiuser.GroupMember`.

        Members minted from one registry score over overlays of one
        base, so group ranking shares the base reasoning tier while
        each member keeps a private context.
        """
        return self.engine.as_member(name if name is not None else self.tenant_id)

    def __repr__(self) -> str:
        return (
            f"UserSession({self.tenant_id!r}, user={self.user}, "
            f"overlay_assertions={len(self.overlay.overlay_snapshot())})"
        )


class _Shard:
    """One independently locked LRU segment of the session table."""

    __slots__ = ("lock", "sessions", "max_sessions", "minted", "hits", "evictions")

    def __init__(self, max_sessions: int):
        self.lock = threading.RLock()
        self.sessions: "OrderedDict[str, UserSession]" = OrderedDict()
        self.max_sessions = max_sessions
        self.minted = 0
        self.hits = 0
        self.evictions = 0

    def evict_over_capacity(self, protect: "UserSession | None" = None) -> list[str]:
        """Evict least-recent *unpinned* sessions down to capacity.

        Pinned sessions are skipped, and so is ``protect`` (the
        session minted by the checkout currently running the sweep —
        evicting it would hand the caller a session a concurrent
        checkout of the same tenant cannot see, breaking per-tenant
        linearisability).  A shard whose residents are all
        pinned/protected temporarily overflows instead of yanking a
        live session; the overflow is bounded by the service's
        admission control and shrinks back as pins release.

        Returns the evicted tenant ids so the caller can notify
        eviction listeners *after* releasing the shard lock.
        """
        over = len(self.sessions) - self.max_sessions
        if over <= 0:
            return []
        victims = [
            tenant_id
            for tenant_id, session in self.sessions.items()
            if session.pins == 0 and session is not protect
        ][:over]
        for tenant_id in victims:
            del self.sessions[tenant_id]
            self.evictions += 1
        return victims


class TenantRegistry:
    """Mints and pools per-tenant sessions over one shared base world.

    Parameters
    ----------
    world:
        The base world (duck-typed like :meth:`EngineBuilder.world`):
        ``abox`` and ``tbox`` are required; ``space``, ``target``,
        ``repository``, ``database``/``data_table`` are wired through
        when present.
    rules:
        Default preference rules for minted sessions: a shared
        :class:`RuleRepository`, or a ``tenant_id -> RuleRepository``
        factory for per-tenant rules.  ``None`` falls back to the
        world's repository.  A per-call ``rules=`` to :meth:`session`
        overrides this at mint time.
    max_sessions:
        Bound on live sessions across the whole registry (distributed
        over the shards); each shard LRU-evicts its least recently
        checked-out *unpinned* session beyond its share (an evicted
        tenant's overlay and caches are dropped — re-minting is cheap
        by design).
    shards:
        Number of independently locked LRU segments, hashed by tenant
        id (clamped to ``max_sessions``).  The default ``1`` preserves
        a single global LRU order; serving deployments use 8+ so
        concurrent checkouts of different tenants do not contend (see
        the module docstring for the full thread-safety contract).
    freeze:
        Freeze the base ABox (default).  Strongly recommended: a frozen
        base cannot be mutated by a stray tenant write, and its derived
        indexes are computed once and shared.
    journal:
        An :class:`~repro.store.OverlayJournal` (or a path to one) for
        per-tenant overlay durability.  Minting replays the tenant's
        journalled overlay before the engine builds, so a tenant's
        standing context survives eviction and fleet restarts; session
        mutations (context installs, fact assertions) append their new
        overlay state back to the journal, best-effort.
    engine_options:
        Builder options applied to every minted engine
        (``method=...``, ``relevance=...``, ``cache_size=...``, ...).
    """

    def __init__(
        self,
        world: object,
        *,
        rules: RuleRepository | Callable[[str], RuleRepository] | None = None,
        max_sessions: int = 1024,
        shards: int = 1,
        freeze: bool = True,
        journal: "OverlayJournal | str | None" = None,
        **engine_options: object,
    ):
        abox = getattr(world, "abox", None)
        tbox = getattr(world, "tbox", None)
        if not isinstance(abox, ABox) or tbox is None:
            raise EngineConfigError(
                f"TenantRegistry needs a base world with 'abox' and 'tbox', "
                f"got {type(world).__name__}"
            )
        if not isinstance(max_sessions, int) or max_sessions < 1:
            raise EngineConfigError(
                f"max_sessions must be a positive integer, got {max_sessions!r}"
            )
        if not isinstance(shards, int) or shards < 1:
            raise EngineConfigError(
                f"shards must be a positive integer, got {shards!r}"
            )
        self.world = world
        self.abox = abox
        self.tbox = tbox
        self.space = getattr(world, "space", None)
        self._target = getattr(world, "target", None)
        self._rules = rules
        if isinstance(journal, (str, bytes)) or hasattr(journal, "__fspath__"):
            from repro.store.journal import OverlayJournal

            journal = OverlayJournal(journal)
        self.journal = journal
        self._engine_options = dict(engine_options)
        self.max_sessions = max_sessions
        #: Callbacks fired with a tenant id whenever that tenant's
        #: session leaves the registry (LRU sweep, explicit evict,
        #: clear) — after the owning shard lock is released, so a
        #: listener may safely take its own locks.  The response-cache
        #: ledger subscribes here: an evicted session loses its
        #: standing context, so cached answers keyed on it must become
        #: unreachable the moment the session is gone.
        self._evict_listeners: list[Callable[[str], None]] = []
        # More shards than sessions would leave zero-capacity shards;
        # clamp so every shard holds at least one session and the
        # whole-registry bound stays exactly max_sessions.
        self.shards = min(shards, max_sessions)
        if freeze:
            abox.freeze()
        base_capacity, extra = divmod(max_sessions, self.shards)
        self._shards = tuple(
            _Shard(base_capacity + (1 if index < extra else 0))
            for index in range(self.shards)
        )

    def _shard_for(self, tenant_id: str) -> _Shard:
        # A stable string hash (PYTHONHASHSEED-independent), so a
        # tenant's shard survives restarts and is debuggable.
        return self._shards[zlib.crc32(tenant_id.encode("utf-8")) % self.shards]

    # -- checkout ----------------------------------------------------------
    def session(
        self,
        tenant_id: str,
        *,
        user: str | Individual | None = None,
        rules: RuleRepository | None = None,
        **options: object,
    ) -> UserSession:
        """The live session for ``tenant_id`` (minted on first checkout).

        ``user``, ``rules`` and builder ``options`` apply at *mint*
        time only; a checkout of an existing session returns it as-is.
        Thread-safe: concurrent checkouts of one tenant yield the same
        session object.  For request-scoped access that must not race
        eviction, prefer :meth:`checkout`.
        """
        return self._checkout(str(tenant_id), user, rules, options, pin=False)

    @contextmanager
    def checkout(
        self,
        tenant_id: str,
        *,
        user: str | Individual | None = None,
        rules: RuleRepository | None = None,
        **options: object,
    ) -> Iterator[UserSession]:
        """A pinned, request-scoped checkout.

        While the ``with`` block runs, the session cannot be chosen as
        an LRU victim and an explicit :meth:`evict` is deferred until
        the last pin releases — an in-flight rank can never lose its
        overlay.  This is the checkout the serving pipeline uses.
        """
        session = self._checkout(str(tenant_id), user, rules, options, pin=True)
        try:
            yield session
        finally:
            self._release(session)

    def _checkout(
        self,
        tenant_id: str,
        user: str | Individual | None,
        rules: RuleRepository | None,
        options: Mapping[str, object],
        *,
        pin: bool,
    ) -> UserSession:
        shard = self._shard_for(tenant_id)
        evicted: list[str] = []
        with shard.lock:
            session = shard.sessions.get(tenant_id)
            if session is not None:
                shard.sessions.move_to_end(tenant_id)
                shard.hits += 1
                if pin:
                    session.pins += 1
            else:
                session = self._mint(tenant_id, user, rules, options)
                shard.sessions[tenant_id] = session
                shard.minted += 1
                if pin:
                    session.pins += 1
                # The sweep must never pick the just-minted session
                # (pinned or not): evicting it would return a session
                # no concurrent checkout of this tenant can see.
                evicted = shard.evict_over_capacity(protect=session)
        self._notify_evicted(evicted)
        return session

    def _release(self, session: UserSession) -> None:
        shard = self._shard_for(session.tenant_id)
        with shard.lock:
            session.pins = max(0, session.pins - 1)
            if session.pins == 0 and session.doomed:
                # Deferred explicit eviction: the table entry is long
                # gone (or replaced); nothing left to drop here.
                session.doomed = False
            # A shard that overflowed while everything was pinned can
            # shrink back now that a pin released.
            evicted = shard.evict_over_capacity()
        self._notify_evicted(evicted)

    def _mint(
        self,
        tenant_id: str,
        user: str | Individual | None,
        rules: RuleRepository | None,
        options: Mapping[str, object],
    ) -> UserSession:
        overlay = self.abox.overlay()
        if user is None:
            user = tenant_id
        individual = Individual(user) if isinstance(user, str) else user
        if individual not in self.abox.individuals:
            overlay.register_individual(individual)
        if self.journal is not None:
            # Rehydrate the tenant's journalled overlay before the
            # engine builds over it, so the first rank after a restart
            # already sees the persisted context.  A malformed record
            # degrades to a fresh overlay — durability is best-effort,
            # availability is not.
            try:
                self.journal.replay_into(tenant_id, overlay, space=self.space)
            except (SnapshotError, OSError):
                pass
        repository = rules if rules is not None else self._default_rules(tenant_id)
        builder = EngineBuilder().knowledge(overlay, self.tbox, individual, self.space)
        if self._target is not None:
            builder.target(self._target)
        if repository is not None:
            builder.preferences(repository)
        database = getattr(self.world, "database", None)
        data_table = getattr(self.world, "data_table", None)
        if database is not None and data_table is not None:
            builder.storage(database, data_table, getattr(self.world, "id_column", "id"))
        merged = dict(self._engine_options)
        merged.update(options)
        if merged:
            builder.options(**merged)
        return UserSession(
            tenant_id, individual, overlay, self.world, builder.build(), self.journal
        )

    def _default_rules(self, tenant_id: str) -> RuleRepository | None:
        if isinstance(self._rules, RuleRepository):
            return self._rules
        if callable(self._rules):
            return self._rules(tenant_id)
        return getattr(self.world, "repository", None)

    # -- pool management ---------------------------------------------------
    def add_evict_listener(self, listener: Callable[[str], None]) -> None:
        """Subscribe to session evictions (called with the tenant id).

        Listeners run after the owning shard lock is released, in
        eviction order; they must not raise (an exception would
        propagate into whichever checkout triggered the sweep).  The
        serving layer uses this to drop response-cache state the moment
        a session — and with it the tenant's standing context — dies.
        """
        self._evict_listeners.append(listener)

    def _notify_evicted(self, tenant_ids: list[str]) -> None:
        if not tenant_ids or not self._evict_listeners:
            return
        for tenant_id in tenant_ids:
            for listener in self._evict_listeners:
                listener(tenant_id)

    def evict(self, tenant_id: str) -> bool:
        """Drop a session (returns whether one was live).

        A *pinned* session is evicted lazily: it leaves the table now —
        the next checkout mints a fresh session — but in-flight holders
        keep a working session object until their pins release.
        """
        tenant_id = str(tenant_id)
        shard = self._shard_for(tenant_id)
        with shard.lock:
            session = shard.sessions.pop(tenant_id, None)
            if session is None:
                return False
            if session.pins > 0:
                session.doomed = True
            shard.evictions += 1
        self._notify_evicted([tenant_id])
        return True

    def clear(self) -> int:
        """Drop every live session; returns how many."""
        count = 0
        cleared: list[str] = []
        for shard in self._shards:
            with shard.lock:
                for session in shard.sessions.values():
                    if session.pins > 0:
                        session.doomed = True
                cleared.extend(shard.sessions)
                count += len(shard.sessions)
                shard.evictions += len(shard.sessions)
                shard.sessions.clear()
        self._notify_evicted(cleared)
        return count

    def info(self) -> TenantRegistryInfo:
        """Aggregate counters, snapshotted shard-by-shard under each lock."""
        active = minted = hits = evictions = pinned = 0
        for shard in self._shards:
            with shard.lock:
                active += len(shard.sessions)
                minted += shard.minted
                hits += shard.hits
                evictions += shard.evictions
                pinned += sum(
                    1 for session in shard.sessions.values() if session.pins > 0
                )
        return TenantRegistryInfo(
            active=active,
            max_sessions=self.max_sessions,
            minted=minted,
            hits=hits,
            evictions=evictions,
            shards=self.shards,
            pinned=pinned,
        )

    def __len__(self) -> int:
        count = 0
        for shard in self._shards:
            with shard.lock:
                count += len(shard.sessions)
        return count

    def __contains__(self, tenant_id: object) -> bool:
        tenant_id = str(tenant_id)
        shard = self._shard_for(tenant_id)
        with shard.lock:
            return tenant_id in shard.sessions

    def __iter__(self) -> Iterator[str]:
        tenant_ids: list[str] = []
        for shard in self._shards:
            with shard.lock:
                tenant_ids.extend(shard.sessions)
        return iter(tenant_ids)

    def __repr__(self) -> str:
        info = self.info()
        return (
            f"TenantRegistry(active={info.active}/{info.max_sessions}, "
            f"shards={info.shards}, minted={info.minted}, hits={info.hits}, "
            f"evictions={info.evictions})"
        )
