"""Multi-tenant serving: shared static world, per-user overlay sessions.

One frozen base world, a :class:`TenantRegistry` minting bounded,
thread-safe :class:`UserSession` objects — each a copy-on-write
knowledge overlay plus a ranking engine — so thousands of concurrent
user profiles share the static knowledge, reasoner base tier and
compiled scoring bases instead of each carrying a private copy of the
world.
"""

from repro.tenants.registry import TenantRegistry, TenantRegistryInfo, UserSession

__all__ = ["TenantRegistry", "TenantRegistryInfo", "UserSession"]
