"""Scored preference rules: (Context, Preference, sigma).

Section 4.1: "we will use preference rules [...] which consist of a
tuple of the form (Context, Preference) where both Context and
Preference are DL concept expressions.  However, to be able to
incorporate the ideas presented in this paper we extend the tuple with
a score σ.  We will call rules of the extended form scored preference
rules."

The score's semantics is the history-derived probability of
:mod:`repro.history.sigma`: whenever a past context satisfied the
Context concept and a document satisfying the Preference concept was
choosable, the user chose such a document with probability σ.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import RuleError
from repro.events.atoms import validate_probability
from repro.dl.concepts import Concept, Top
from repro.dl.parser import parse_concept

__all__ = ["PreferenceRule"]


@dataclass(frozen=True)
class PreferenceRule:
    """A scored preference rule.

    Parameters
    ----------
    rule_id:
        Unique identifier within a repository (e.g. ``"r1"``).
    context:
        The DL concept the situated user must satisfy for the rule to
        apply.  :class:`~repro.dl.concepts.Top` makes a *default rule*,
        applicable in any context (Section 4.1's fallback for contexts
        no specific rule covers).
    preference:
        The DL concept preferred documents satisfy.
    sigma:
        The score, a probability in ``[0, 1]``.

    Examples
    --------
    >>> from repro.dl import parse_concept
    >>> rule = PreferenceRule(
    ...     "r1",
    ...     parse_concept("Weekend"),
    ...     parse_concept("TvProgram AND EXISTS hasGenre.{HUMAN-INTEREST}"),
    ...     0.8,
    ... )
    >>> rule.is_default
    False
    """

    rule_id: str
    context: Concept
    preference: Concept
    sigma: float

    def __post_init__(self) -> None:
        if not isinstance(self.rule_id, str) or not self.rule_id:
            raise RuleError(f"rule_id must be a non-empty string, got {self.rule_id!r}")
        if not isinstance(self.context, Concept):
            raise RuleError(f"rule {self.rule_id!r}: context must be a Concept")
        if not isinstance(self.preference, Concept):
            raise RuleError(f"rule {self.rule_id!r}: preference must be a Concept")
        try:
            validate_probability(self.sigma, f"sigma of rule {self.rule_id!r}")
        except Exception as exc:
            raise RuleError(str(exc)) from exc

    @staticmethod
    def parse(rule_id: str, context: str, preference: str, sigma: float) -> "PreferenceRule":
        """Build a rule from textual concept syntax."""
        return PreferenceRule(rule_id, parse_concept(context), parse_concept(preference), sigma)

    @property
    def is_default(self) -> bool:
        """True when the rule applies in every context (context = ⊤)."""
        return isinstance(self.context, Top)

    @property
    def context_key(self) -> str:
        """Canonical string key of the context concept (feature g)."""
        return str(self.context)

    @property
    def preference_key(self) -> str:
        """Canonical string key of the preference concept (feature f)."""
        return str(self.preference)

    @property
    def feature_pair(self) -> tuple[str, str]:
        """The (g, f) pair this rule contributes to the relation H."""
        return (self.context_key, self.preference_key)

    def with_sigma(self, sigma: float) -> "PreferenceRule":
        """A copy of this rule with a different score."""
        return PreferenceRule(self.rule_id, self.context, self.preference, sigma)

    def to_dsl(self) -> str:
        """Render in the rule DSL (round-trips through the parser)."""
        when = "ALWAYS" if self.is_default else f"WHEN {self.context}"
        return f"RULE {self.rule_id}: {when} PREFER {self.preference} WITH {self.sigma:g}"

    def __str__(self) -> str:
        return self.to_dsl()
