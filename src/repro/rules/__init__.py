"""Scored preference rules (S6).

``(Context, Preference, sigma)`` triples over DL concepts, a repository
with context-applicability pruning and relational materialisation, and
a text DSL for rule files.
"""

from repro.rules.dsl import load_rules, parse_rule, parse_rules, render_rules
from repro.rules.repository import REPOSITORY_TABLE, ApplicableRule, RuleRepository
from repro.rules.rule import PreferenceRule

__all__ = [
    "ApplicableRule",
    "PreferenceRule",
    "REPOSITORY_TABLE",
    "RuleRepository",
    "load_rules",
    "parse_rule",
    "parse_rules",
    "render_rules",
]
