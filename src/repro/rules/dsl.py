"""A small text DSL for scored preference rules.

Rule files look like::

    # Peter's TVTouch preferences
    RULE r1: WHEN Weekend PREFER TvProgram AND EXISTS hasGenre.{HUMAN-INTEREST} WITH 0.8
    RULE r2: WHEN Breakfast PREFER TvProgram AND EXISTS hasSubject.NewsSubject WITH 0.9
    RULE d0: ALWAYS PREFER TvProgram WITH 0.5

One rule per line; ``#`` starts a comment; blank lines are ignored.
``ALWAYS`` marks a default rule (context ⊤).  The ``WHEN``/``PREFER``/
``WITH`` markers must appear in upper case exactly once each (concept
syntax keywords such as ``AND`` or ``EXISTS`` do not collide with
them).
"""

from __future__ import annotations

import re
from pathlib import Path

from repro.errors import ParseError
from repro.dl.concepts import TOP, Concept
from repro.dl.parser import parse_concept
from repro.rules.rule import PreferenceRule
from repro.rules.repository import RuleRepository

__all__ = ["parse_rule", "parse_rules", "load_rules", "render_rules"]

_HEADER = re.compile(r"^RULE\s+(?P<id>[A-Za-z0-9_\-.]+)\s*:\s*(?P<body>.+)$")


def parse_rule(line: str) -> PreferenceRule:
    """Parse a single ``RULE ...`` line.

    Raises
    ------
    ParseError
        On malformed headers, missing markers or bad concept syntax.
    """
    text = line.strip()
    match = _HEADER.match(text)
    if match is None:
        raise ParseError(f"not a rule line: {line!r}", line)
    rule_id = match.group("id")
    body = match.group("body").strip()

    if " WITH " not in body:
        raise ParseError(f"rule {rule_id!r}: missing WITH <sigma>", line)
    head, sigma_text = body.rsplit(" WITH ", 1)
    try:
        sigma = float(sigma_text.strip())
    except ValueError as exc:
        raise ParseError(f"rule {rule_id!r}: bad sigma {sigma_text.strip()!r}", line) from exc

    head = head.strip()
    context: Concept
    if head.startswith("ALWAYS "):
        context = TOP
        preference_text = head[len("ALWAYS ") :].strip()
        if not preference_text.startswith("PREFER "):
            raise ParseError(f"rule {rule_id!r}: expected PREFER after ALWAYS", line)
        preference_text = preference_text[len("PREFER ") :]
    elif head.startswith("WHEN "):
        rest = head[len("WHEN ") :]
        if " PREFER " not in rest:
            raise ParseError(f"rule {rule_id!r}: missing PREFER", line)
        context_text, preference_text = rest.split(" PREFER ", 1)
        context = parse_concept(context_text.strip())
    else:
        raise ParseError(f"rule {rule_id!r}: expected WHEN <context> or ALWAYS", line)

    preference = parse_concept(preference_text.strip())
    return PreferenceRule(rule_id, context, preference, sigma)


def parse_rules(text: str) -> RuleRepository:
    """Parse a whole rule file into a repository."""
    repository = RuleRepository()
    for line_number, raw_line in enumerate(text.splitlines(), start=1):
        line = raw_line.split("#", 1)[0].strip()
        if not line:
            continue
        try:
            repository.add(parse_rule(line))
        except ParseError as exc:
            raise ParseError(f"line {line_number}: {exc}", text, line_number) from exc
    return repository


def load_rules(path: str | Path) -> RuleRepository:
    """Read a rule file from disk."""
    return parse_rules(Path(path).read_text(encoding="utf-8"))


def render_rules(repository: RuleRepository) -> str:
    """Render a repository back to DSL text (round-trips)."""
    return "\n".join(rule.to_dsl() for rule in repository)
