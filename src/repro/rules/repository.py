"""The rule repository: the paper's repository table, as an object.

Section 5: "All preference rules together are stored as rows in a
repository table consisting of the name of the preference view, the
name of the context view, and the score of the rule."  The repository
here stores the rules themselves, determines which are *applicable* in
the current context (their context membership event is possible), warns
about uncovered contexts, and can materialise itself into a relational
table of exactly the paper's shape.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator

from repro.errors import RuleError
from repro.events.expr import EventExpr
from repro.events.probability import probability
from repro.events.space import EventSpace
from repro.dl.abox import ABox
from repro.dl.instances import membership_event
from repro.dl.tbox import TBox
from repro.dl.vocabulary import Individual
from repro.storage.database import Database
from repro.storage.schema import Column, ColumnType, Schema
from repro.storage.table import Table
from repro.rules.rule import PreferenceRule

__all__ = ["ApplicableRule", "RuleRepository", "REPOSITORY_TABLE"]

REPOSITORY_TABLE = "preference_rules"


@dataclass(frozen=True)
class ApplicableRule:
    """A rule together with its context event in the current situation."""

    rule: PreferenceRule
    context_event: EventExpr
    context_probability: float


class RuleRepository:
    """An ordered collection of uniquely named preference rules.

    Examples
    --------
    >>> from repro.rules import PreferenceRule
    >>> repo = RuleRepository()
    >>> repo.add(PreferenceRule.parse("r1", "Weekend", "TvProgram", 0.8))
    >>> len(repo)
    1
    """

    def __init__(self, rules: Iterable[PreferenceRule] = ()):
        self._rules: dict[str, PreferenceRule] = {}
        for rule in rules:
            self.add(rule)

    # -- collection basics --------------------------------------------
    def add(self, rule: PreferenceRule) -> None:
        if rule.rule_id in self._rules:
            raise RuleError(f"rule id {rule.rule_id!r} already in repository")
        self._rules[rule.rule_id] = rule

    def remove(self, rule_id: str) -> PreferenceRule:
        try:
            return self._rules.pop(rule_id)
        except KeyError as exc:
            raise RuleError(f"no rule named {rule_id!r} in repository") from exc

    def get(self, rule_id: str) -> PreferenceRule:
        try:
            return self._rules[rule_id]
        except KeyError as exc:
            raise RuleError(f"no rule named {rule_id!r} in repository") from exc

    def __contains__(self, rule_id: str) -> bool:
        return rule_id in self._rules

    def __len__(self) -> int:
        return len(self._rules)

    def __iter__(self) -> Iterator[PreferenceRule]:
        return iter(self._rules.values())

    @property
    def rules(self) -> tuple[PreferenceRule, ...]:
        return tuple(self._rules.values())

    @property
    def default_rules(self) -> tuple[PreferenceRule, ...]:
        return tuple(rule for rule in self if rule.is_default)

    # -- context applicability ------------------------------------------
    def applicable(
        self,
        abox: ABox,
        tbox: TBox,
        user: Individual,
        space: EventSpace | None = None,
        threshold: float = 0.0,
    ) -> list[ApplicableRule]:
        """Rules whose context holds with probability above ``threshold``.

        This is the paper's Section 6 pruning opportunity ("prune the
        amount of applicable rules ... in early stages"): rules whose
        context event is impossible in the current situation contribute
        the constant factor 1 to equation (4) and can be dropped before
        any scoring work.
        """
        result: list[ApplicableRule] = []
        for rule in self:
            event = membership_event(abox, tbox, user, rule.context)
            if event.is_impossible:
                continue
            context_probability = probability(event, space)
            if context_probability > threshold:
                result.append(ApplicableRule(rule, event, context_probability))
        return result

    def covers_context(
        self,
        abox: ABox,
        tbox: TBox,
        user: Individual,
    ) -> bool:
        """Is the current context covered by at least one rule?

        When no rule applies, equation (4) degenerates to the constant 1
        for every document and "the retrieval system is unable to return
        any meaningful probability" (Section 4.1) — callers should fall
        back to default rules or refuse to rank.
        """
        return any(
            not membership_event(abox, tbox, user, rule.context).is_impossible for rule in self
        )

    # -- relational materialisation ---------------------------------------
    def to_table(self, database: Database, name: str = REPOSITORY_TABLE) -> Table:
        """Store the repository as the paper's repository table."""
        schema = Schema(
            [
                Column("rule_id", ColumnType.TEXT),
                Column("context_view", ColumnType.TEXT),
                Column("preference_view", ColumnType.TEXT),
                Column("sigma", ColumnType.REAL),
            ]
        )
        table = database.create_table(name, schema)
        for rule in self:
            table.insert((rule.rule_id, rule.context_key, rule.preference_key, rule.sigma))
        return table

    @staticmethod
    def from_table(table: Table) -> "RuleRepository":
        """Rebuild a repository from a repository table."""
        repository = RuleRepository()
        for row in table.iter_dicts():
            repository.add(
                PreferenceRule.parse(
                    str(row["rule_id"]),
                    str(row["context_view"]),
                    str(row["preference_view"]),
                    float(row["sigma"]),  # type: ignore[arg-type]
                )
            )
        return repository

    def __repr__(self) -> str:
        return f"RuleRepository(rules={len(self._rules)})"
