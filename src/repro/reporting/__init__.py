"""Bench/report harness (S12): tables, budgeted timing, experiment records."""

from repro.reporting.records import ExperimentRecord, render_records
from repro.reporting.tables import TextTable, ranking_table
from repro.reporting.timing import GrowthFit, TimedRun, fit_growth, run_with_budget, timed

__all__ = [
    "ExperimentRecord",
    "GrowthFit",
    "TextTable",
    "TimedRun",
    "fit_growth",
    "ranking_table",
    "render_records",
    "run_with_budget",
    "timed",
]
