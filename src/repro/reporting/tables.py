"""Plain-text tables for benchmark and ranking output.

Benchmarks print the same rows the paper reports; a tiny aligned-text
renderer keeps that output readable in a terminal and diffable in CI.
:func:`ranking_table` is the one code path through which the CLI,
examples and :meth:`RankResponse.to_table` all render rankings.
"""

from __future__ import annotations

from typing import Iterable, Mapping, Sequence

__all__ = ["TextTable", "ranking_table"]


class TextTable:
    """An aligned text table.

    Examples
    --------
    >>> table = TextTable(["rules", "time (s)"])
    >>> table.add_row([1, 0.01])
    >>> print(table.render())
    rules  time (s)
    -----  --------
    1      0.01
    """

    def __init__(self, headers: Sequence[str]):
        self.headers = [str(header) for header in headers]
        self.rows: list[list[str]] = []

    def add_row(self, values: Sequence[object]) -> None:
        """Append a row; floats are shown with 4 significant digits."""
        rendered = []
        for value in values:
            if isinstance(value, float):
                rendered.append(f"{value:.4g}")
            else:
                rendered.append(str(value))
        if len(rendered) != len(self.headers):
            raise ValueError(
                f"row width {len(rendered)} does not match header width {len(self.headers)}"
            )
        self.rows.append(rendered)

    def render(self, markdown: bool = False) -> str:
        """Render aligned text (or a GitHub-flavoured markdown table)."""
        widths = [len(header) for header in self.headers]
        for row in self.rows:
            for index, cell in enumerate(row):
                widths[index] = max(widths[index], len(cell))
        if markdown:
            lines = [
                "| " + " | ".join(h.ljust(widths[i]) for i, h in enumerate(self.headers)) + " |",
                "| " + " | ".join("-" * widths[i] for i in range(len(widths))) + " |",
            ]
            for row in self.rows:
                lines.append(
                    "| " + " | ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)) + " |"
                )
            return "\n".join(lines)
        lines = [
            "  ".join(h.ljust(widths[i]) for i, h in enumerate(self.headers)),
            "  ".join("-" * widths[i] for i in range(len(widths))),
        ]
        for row in self.rows:
            lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
        return "\n".join(lines)

    def __str__(self) -> str:
        return self.render()


def _item_value(item: object) -> float:
    """A ranked item's headline score: ``score`` or ``combined`` or ``value``."""
    for attribute in ("score", "combined", "value"):
        value = getattr(item, attribute, None)
        if value is not None:
            return float(value)
    raise AttributeError(f"{item!r} has no score/combined/value attribute")


def ranking_table(
    items: Iterable[object],
    names: Mapping[str, str] | None = None,
    score_header: str = "score",
) -> TextTable:
    """Render any ranking as a :class:`TextTable`.

    Accepts the library's scored-item shapes duck-typed: anything with
    a ``document`` attribute plus a headline score (``score``,
    ``combined`` or ``value``).  Items that also carry
    ``query_dependent`` / ``preference`` parts (mixed rankings) get
    those as extra columns.  ``names`` optionally maps document ids to
    display names.
    """
    items = list(items)
    with_parts = any(
        getattr(item, "query_dependent", None) is not None
        and getattr(item, "preference", None) is not None
        for item in items
    )
    headers = ["rank", "document", score_header]
    if with_parts:
        headers += ["query_dep", "preference"]
    table = TextTable(headers)
    for position, item in enumerate(items, start=1):
        document = str(getattr(item, "document"))
        if names is not None:
            document = str(names.get(document, document))
        row: list[object] = [position, document, f"{_item_value(item):.4f}"]
        if with_parts:
            query_dependent = getattr(item, "query_dependent", None)
            preference = getattr(item, "preference", None)
            row.append("-" if query_dependent is None else f"{float(query_dependent):.4f}")
            row.append("-" if preference is None else f"{float(preference):.4f}")
        table.add_row(row)
    return table
