"""Plain-text tables for benchmark output.

Benchmarks print the same rows the paper reports; a tiny aligned-text
renderer keeps that output readable in a terminal and diffable in CI.
"""

from __future__ import annotations

from typing import Sequence

__all__ = ["TextTable"]


class TextTable:
    """An aligned text table.

    Examples
    --------
    >>> table = TextTable(["rules", "time (s)"])
    >>> table.add_row([1, 0.01])
    >>> print(table.render())
    rules  time (s)
    -----  --------
    1      0.01
    """

    def __init__(self, headers: Sequence[str]):
        self.headers = [str(header) for header in headers]
        self.rows: list[list[str]] = []

    def add_row(self, values: Sequence[object]) -> None:
        """Append a row; floats are shown with 4 significant digits."""
        rendered = []
        for value in values:
            if isinstance(value, float):
                rendered.append(f"{value:.4g}")
            else:
                rendered.append(str(value))
        if len(rendered) != len(self.headers):
            raise ValueError(
                f"row width {len(rendered)} does not match header width {len(self.headers)}"
            )
        self.rows.append(rendered)

    def render(self, markdown: bool = False) -> str:
        """Render aligned text (or a GitHub-flavoured markdown table)."""
        widths = [len(header) for header in self.headers]
        for row in self.rows:
            for index, cell in enumerate(row):
                widths[index] = max(widths[index], len(cell))
        if markdown:
            lines = [
                "| " + " | ".join(h.ljust(widths[i]) for i, h in enumerate(self.headers)) + " |",
                "| " + " | ".join("-" * widths[i] for i in range(len(widths))) + " |",
            ]
            for row in self.rows:
                lines.append(
                    "| " + " | ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)) + " |"
                )
            return "\n".join(lines)
        lines = [
            "  ".join(h.ljust(widths[i]) for i, h in enumerate(self.headers)),
            "  ".join("-" * widths[i] for i in range(len(widths))),
        ]
        for row in self.rows:
            lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
        return "\n".join(lines)

    def __str__(self) -> str:
        return self.render()
