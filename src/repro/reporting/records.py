"""Experiment records: paper-claimed versus measured, in one place.

Each benchmark emits :class:`ExperimentRecord` rows; EXPERIMENTS.md is
the curated rendition of the same comparisons.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.reporting.tables import TextTable

__all__ = ["ExperimentRecord", "render_records"]


@dataclass(frozen=True)
class ExperimentRecord:
    """One claim-versus-measurement comparison."""

    experiment: str
    artifact: str
    paper_claim: str
    measured: str
    verdict: str  # "reproduced" | "shape holds" | "differs"

    def as_row(self) -> list[str]:
        return [self.experiment, self.artifact, self.paper_claim, self.measured, self.verdict]


def render_records(records: list[ExperimentRecord], markdown: bool = False) -> str:
    """Render records as a table."""
    table = TextTable(["id", "artifact", "paper", "measured", "verdict"])
    for record in records:
        table.add_row(record.as_row())
    return table.render(markdown=markdown)
