"""Timing with budgets and growth-curve extrapolation.

The paper's scaling experiment hits a wall ("as we arrive at seven
rules, our query did not finish within half an hour").  The harness
reproduces that honestly on a time budget: runs that exceed the budget
are recorded as timed out, and the exponential growth fitted on the
completed points extrapolates the infeasible ones — so the bench can
*assert* the wall without waiting thirty minutes.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass
from typing import Callable, Sequence

__all__ = ["timed", "TimedRun", "run_with_budget", "GrowthFit", "fit_growth"]


def timed(fn: Callable[[], object]) -> tuple[object, float]:
    """Run ``fn`` and return ``(result, elapsed seconds)``."""
    start = time.perf_counter()
    result = fn()
    return result, time.perf_counter() - start


@dataclass(frozen=True)
class TimedRun:
    """One measured run (possibly skipped over budget)."""

    parameter: int
    seconds: float | None  # None = not run (predicted over budget)
    completed: bool

    @property
    def display(self) -> str:
        if self.seconds is None:
            return "skipped"
        return f"{self.seconds:.3f}"


def run_with_budget(
    parameters: Sequence[int],
    make_run: Callable[[int], Callable[[], object]],
    budget_seconds: float,
    growth_guard: float = 1.5,
) -> list[TimedRun]:
    """Run a parameter sweep, skipping points predicted to bust the budget.

    After each completed run, the growth rate over the completed points
    predicts the next point's cost; once the prediction exceeds
    ``budget_seconds`` (or a run actually does), the remaining points
    are recorded as skipped — mirroring the paper's "did not finish
    within half an hour".
    """
    runs: list[TimedRun] = []
    completed: list[tuple[int, float]] = []
    exceeded = False
    for parameter in parameters:
        if exceeded:
            runs.append(TimedRun(parameter, None, False))
            continue
        if len(completed) >= 2:
            fit = fit_growth([p for p, _ in completed], [s for _, s in completed])
            predicted = fit.predict(parameter)
            if predicted > budget_seconds and fit.ratio > growth_guard:
                runs.append(TimedRun(parameter, None, False))
                exceeded = True
                continue
        _result, seconds = timed(make_run(parameter))
        runs.append(TimedRun(parameter, seconds, True))
        completed.append((parameter, seconds))
        if seconds > budget_seconds:
            exceeded = True
    return runs


@dataclass(frozen=True)
class GrowthFit:
    """A fitted exponential ``time ≈ a * ratio^parameter``."""

    ratio: float
    scale: float
    base_parameter: int

    def predict(self, parameter: int) -> float:
        return self.scale * (self.ratio ** (parameter - self.base_parameter))


def fit_growth(parameters: Sequence[int], seconds: Sequence[float]) -> GrowthFit:
    """Least-squares fit of log-time against the parameter.

    With two points this reduces to the observed ratio; with more it is
    the standard linear regression in log space.  Raises ``ValueError``
    with fewer than two positive measurements.
    """
    points = [(p, s) for p, s in zip(parameters, seconds) if s > 0.0]
    if len(points) < 2:
        raise ValueError("fit_growth needs at least two positive measurements")
    xs = [float(p) for p, _ in points]
    ys = [math.log(s) for _, s in points]
    n = len(points)
    mean_x = sum(xs) / n
    mean_y = sum(ys) / n
    denominator = sum((x - mean_x) ** 2 for x in xs)
    if denominator == 0.0:
        raise ValueError("fit_growth needs at least two distinct parameters")
    slope = sum((x - mean_x) * (y - mean_y) for x, y in zip(xs, ys)) / denominator
    intercept = mean_y - slope * mean_x
    base = int(xs[-1])
    return GrowthFit(
        ratio=math.exp(slope),
        scale=math.exp(intercept + slope * base),
        base_parameter=base,
    )
