"""Event expressions: Boolean combinations of basic events.

An event expression denotes a derived event in the style of Fuhr &
Roelleke's probabilistic relational algebra: the event under which a
derived tuple exists is a Boolean combination (``AND`` for joins,
``OR`` for duplicate-eliminating projections and unions, ``NOT`` for
differences) of the basic events of the contributing base tuples.

Expressions are immutable, hash-consed trees with light algebraic
simplification applied at construction time:

* ``AND``/``OR`` are flattened, sorted canonically and deduplicated;
* identity and annihilator elements are removed (``x AND TRUE = x``,
  ``x AND FALSE = FALSE``, dually for ``OR``);
* complementary literals collapse (``x AND NOT x = FALSE``);
* double negation cancels.

Hash-consing is literal: the public constructors intern every node in a
process-wide weak table, so structurally identical expressions built
through them are *pointer-equal*, not merely ``==``.  Memo tables in the
probability engines (Shannon expansion, the BDD compiler, the compiled
reasoner of :mod:`repro.reason`) therefore hit across calls — an event
rebuilt for the same fact on a later request is the same object, with
its hash already cached.  Interned composites key on child identity
(sound because a live parent keeps its children alive, so a key match
implies the exact same child objects); atoms key on ``(name,
probability)`` so same-named events from different spaces never alias a
different marginal.  Nodes built by instantiating the classes directly
bypass the table — they remain structurally equal to their interned
twins, just not identical (the property tests use this as the
fresh-tree control).

Simplification is deliberately *local* — expressions are not converted
to a canonical normal form, because the probability engines (Shannon
expansion, BDD) do the heavy lifting and the un-normalised tree is the
data lineage shown to users.

The public constructors are :func:`conj`, :func:`disj`, :func:`neg`,
:func:`atom` and the constants :data:`ALWAYS` / :data:`NEVER`; the
operators ``&``, ``|`` and ``~`` are provided on every node.
"""

from __future__ import annotations

import weakref
from typing import Iterable, Iterator, Mapping

from repro.errors import EventError
from repro.events.atoms import BasicEvent

__all__ = [
    "EventExpr",
    "TrueEvent",
    "FalseEvent",
    "Atom",
    "Not",
    "And",
    "Or",
    "ALWAYS",
    "NEVER",
    "atom",
    "conj",
    "disj",
    "neg",
    "intern_expr",
    "interned_node_count",
]


class EventExpr:
    """Abstract base class of all event-expression nodes.

    Nodes compare and hash by structure, support the Boolean operators
    ``&``, ``|`` and ``~``, and know the set of basic events they
    mention (:meth:`atoms`).
    """

    __slots__ = ("_key", "_hash", "_atoms", "__weakref__")

    _key: tuple
    _hash: int
    _atoms: frozenset[BasicEvent]

    def _init_node(self, key: tuple, atoms: frozenset[BasicEvent]) -> None:
        self._key = key
        self._hash = hash(key)
        self._atoms = atoms

    # -- structure -----------------------------------------------------
    def atoms(self) -> frozenset[BasicEvent]:
        """Return the set of basic events mentioned in this expression."""
        return self._atoms

    def atom_names(self) -> frozenset[str]:
        """Return the names of the basic events mentioned here."""
        return frozenset(event.name for event in self._atoms)

    @property
    def is_certain(self) -> bool:
        """True when the expression is the constant TRUE."""
        return self is ALWAYS or isinstance(self, TrueEvent)

    @property
    def is_impossible(self) -> bool:
        """True when the expression is the constant FALSE."""
        return self is NEVER or isinstance(self, FalseEvent)

    # -- evaluation ----------------------------------------------------
    def evaluate(self, assignment: Mapping[str, bool]) -> bool:
        """Evaluate under a *complete* truth assignment of atom names.

        Raises
        ------
        EventError
            If an atom mentioned in the expression is missing from the
            assignment.
        """
        raise NotImplementedError

    def substitute(self, assignment: Mapping[str, bool]) -> "EventExpr":
        """Partially evaluate under a (possibly partial) assignment.

        Returns a simplified expression in which every atom named in
        ``assignment`` is replaced by the corresponding constant.
        """
        raise NotImplementedError

    # -- operators -----------------------------------------------------
    def __and__(self, other: "EventExpr") -> "EventExpr":
        return conj([self, other])

    def __or__(self, other: "EventExpr") -> "EventExpr":
        return disj([self, other])

    def __invert__(self) -> "EventExpr":
        return neg(self)

    # -- identity ------------------------------------------------------
    def __eq__(self, other: object) -> bool:
        if self is other:
            return True
        if not isinstance(other, EventExpr):
            return NotImplemented
        return self._key == other._key

    def __hash__(self) -> int:
        return self._hash

    def sort_key(self) -> tuple:
        """A total-order key used to canonicalise child order."""
        return self._key

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self})"


class TrueEvent(EventExpr):
    """The certain event (probability 1)."""

    __slots__ = ()

    def __init__(self) -> None:
        self._init_node(("T",), frozenset())

    def evaluate(self, assignment: Mapping[str, bool]) -> bool:
        return True

    def substitute(self, assignment: Mapping[str, bool]) -> EventExpr:
        return self

    def __str__(self) -> str:
        return "TRUE"


class FalseEvent(EventExpr):
    """The impossible event (probability 0)."""

    __slots__ = ()

    def __init__(self) -> None:
        self._init_node(("F",), frozenset())

    def evaluate(self, assignment: Mapping[str, bool]) -> bool:
        return False

    def substitute(self, assignment: Mapping[str, bool]) -> EventExpr:
        return self

    def __str__(self) -> str:
        return "FALSE"


ALWAYS = TrueEvent()
NEVER = FalseEvent()


class Atom(EventExpr):
    """A reference to a single basic event."""

    __slots__ = ("event",)

    def __init__(self, event: BasicEvent):
        if not isinstance(event, BasicEvent):
            raise EventError(f"Atom requires a BasicEvent, got {event!r}")
        self.event = event
        self._init_node(("a", event.name), frozenset({event}))

    @property
    def name(self) -> str:
        """Name of the underlying basic event."""
        return self.event.name

    def evaluate(self, assignment: Mapping[str, bool]) -> bool:
        try:
            return bool(assignment[self.event.name])
        except KeyError as exc:
            raise EventError(f"no truth value assigned to atom {self.event.name!r}") from exc

    def substitute(self, assignment: Mapping[str, bool]) -> EventExpr:
        if self.event.name in assignment:
            return ALWAYS if assignment[self.event.name] else NEVER
        return self

    def __str__(self) -> str:
        return self.event.name


class Not(EventExpr):
    """Negation of an event expression.

    Use :func:`neg` (or the ``~`` operator) instead of instantiating
    directly: the constructor function applies simplification.
    """

    __slots__ = ("child",)

    def __init__(self, child: EventExpr):
        self.child = child
        self._init_node(("n", child._key), child._atoms)

    def evaluate(self, assignment: Mapping[str, bool]) -> bool:
        return not self.child.evaluate(assignment)

    def substitute(self, assignment: Mapping[str, bool]) -> EventExpr:
        return neg(self.child.substitute(assignment))

    def __str__(self) -> str:
        return f"NOT {self.child}" if isinstance(self.child, Atom) else f"NOT ({self.child})"


class _Nary(EventExpr):
    """Shared implementation of the n-ary connectives."""

    __slots__ = ("children",)

    _tag = "?"
    _word = "?"

    def __init__(self, children: tuple[EventExpr, ...]):
        self.children = children
        atoms: frozenset[BasicEvent] = frozenset().union(*(c._atoms for c in children)) if children else frozenset()
        self._init_node((self._tag,) + tuple(c._key for c in children), atoms)

    def __iter__(self) -> Iterator[EventExpr]:
        return iter(self.children)

    def __str__(self) -> str:
        parts = []
        for child in self.children:
            text = str(child)
            if isinstance(child, _Nary):
                text = f"({text})"
            parts.append(text)
        return f" {self._word} ".join(parts)


class And(_Nary):
    """Conjunction of two or more event expressions (use :func:`conj`)."""

    __slots__ = ()
    _tag = "&"
    _word = "AND"

    def evaluate(self, assignment: Mapping[str, bool]) -> bool:
        return all(child.evaluate(assignment) for child in self.children)

    def substitute(self, assignment: Mapping[str, bool]) -> EventExpr:
        return conj(child.substitute(assignment) for child in self.children)


class Or(_Nary):
    """Disjunction of two or more event expressions (use :func:`disj`)."""

    __slots__ = ()
    _tag = "|"
    _word = "OR"

    def evaluate(self, assignment: Mapping[str, bool]) -> bool:
        return any(child.evaluate(assignment) for child in self.children)

    def substitute(self, assignment: Mapping[str, bool]) -> EventExpr:
        return disj(child.substitute(assignment) for child in self.children)


#: The hash-consing table.  Values are weak: an expression no longer
#: referenced anywhere else is collected, and its entry disappears with
#: it.  Composite keys reference children by ``id`` — valid because the
#: interned parent holds its children alive, so a live entry's key can
#: only be re-produced by the very same child objects.
_INTERN: "weakref.WeakValueDictionary[tuple, EventExpr]" = weakref.WeakValueDictionary()


def _intern_atom(event: BasicEvent) -> Atom:
    key = ("a", event.name, event.probability)
    node = _INTERN.get(key)
    if node is None:
        node = Atom(event)
        _INTERN[key] = node
    return node  # type: ignore[return-value]


def _intern_not(child: EventExpr) -> Not:
    key = ("n", id(child))
    node = _INTERN.get(key)
    if node is None:
        node = Not(child)
        _INTERN[key] = node
    return node  # type: ignore[return-value]


def _intern_nary(tag: str, klass: type, children: tuple[EventExpr, ...]) -> EventExpr:
    key = (tag,) + tuple(map(id, children))
    node = _INTERN.get(key)
    if node is None:
        node = klass(children)
        _INTERN[key] = node
    return node


def interned_node_count() -> int:
    """Number of live interned nodes (diagnostics / tests)."""
    return len(_INTERN)


def intern_expr(expr: EventExpr) -> EventExpr:
    """Return the interned twin of ``expr`` (rebuilding bottom-up).

    Re-runs the public constructors, so an unsimplified hand-built tree
    also gets their simplifications applied.
    """
    if isinstance(expr, TrueEvent):
        return ALWAYS
    if isinstance(expr, FalseEvent):
        return NEVER
    if isinstance(expr, Atom):
        return _intern_atom(expr.event)
    if isinstance(expr, Not):
        return neg(intern_expr(expr.child))
    if isinstance(expr, And):
        return conj(intern_expr(child) for child in expr.children)
    if isinstance(expr, Or):
        return disj(intern_expr(child) for child in expr.children)
    raise EventError(f"cannot intern unknown expression node {expr!r}")


def atom(event: BasicEvent) -> Atom:
    """Wrap a :class:`BasicEvent` in an (interned) expression node."""
    if not isinstance(event, BasicEvent):
        raise EventError(f"atom() requires a BasicEvent, got {event!r}")
    return _intern_atom(event)


def neg(child: EventExpr) -> EventExpr:
    """Build the negation of ``child``, simplifying constants and ¬¬."""
    if not isinstance(child, EventExpr):
        raise EventError(f"neg() requires an EventExpr, got {child!r}")
    if child.is_certain:
        return NEVER
    if child.is_impossible:
        return ALWAYS
    if isinstance(child, Not):
        return child.child
    return _intern_not(child)


def _flatten(children: Iterable[EventExpr], klass: type) -> list[EventExpr]:
    flat: list[EventExpr] = []
    for child in children:
        if not isinstance(child, EventExpr):
            raise EventError(f"connective requires EventExpr children, got {child!r}")
        if isinstance(child, klass):
            flat.extend(child.children)  # type: ignore[attr-defined]
        else:
            flat.append(child)
    return flat


def _canonical(children: list[EventExpr]) -> tuple[EventExpr, ...]:
    unique: dict[tuple, EventExpr] = {}
    for child in children:
        unique.setdefault(child._key, child)
    return tuple(sorted(unique.values(), key=EventExpr.sort_key))


def _has_complementary_pair(children: tuple[EventExpr, ...]) -> bool:
    keys = {child._key for child in children}
    for child in children:
        if isinstance(child, Not) and child.child._key in keys:
            return True
    return False


def conj(children: Iterable[EventExpr]) -> EventExpr:
    """Conjunction with flattening, canonical ordering and simplification.

    ``conj([])`` is :data:`ALWAYS` (the empty conjunction is true).
    """
    flat = _flatten(children, And)
    kept = [child for child in flat if not child.is_certain]
    if any(child.is_impossible for child in kept):
        return NEVER
    ordered = _canonical(kept)
    if not ordered:
        return ALWAYS
    if len(ordered) == 1:
        return ordered[0]
    if _has_complementary_pair(ordered):
        return NEVER
    return _intern_nary("&", And, ordered)


def disj(children: Iterable[EventExpr]) -> EventExpr:
    """Disjunction with flattening, canonical ordering and simplification.

    ``disj([])`` is :data:`NEVER` (the empty disjunction is false).
    """
    flat = _flatten(children, Or)
    kept = [child for child in flat if not child.is_impossible]
    if any(child.is_certain for child in kept):
        return ALWAYS
    ordered = _canonical(kept)
    if not ordered:
        return NEVER
    if len(ordered) == 1:
        return ordered[0]
    if _has_complementary_pair(ordered):
        return ALWAYS
    return _intern_nary("|", Or, ordered)
