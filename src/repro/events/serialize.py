"""Serialisation of event expressions to and from s-expression text.

The sqlite backend stores event expressions in ordinary TEXT columns
(the stand-in for the paper's PostgreSQL event-expression datatype), so
expressions must round-trip through a compact, unambiguous text form:

* ``T`` / ``F`` — the constants;
* ``(a <name> <probability>)`` — an atom;
* ``(n <expr>)`` — negation;
* ``(& <expr> <expr> ...)`` / ``(| <expr> <expr> ...)`` — connectives.

Atom names are quoted with URL-style escaping so arbitrary identifiers
(including spaces and parentheses) survive the round trip.
"""

from __future__ import annotations

from urllib.parse import quote, unquote

from repro.errors import ParseError
from repro.events.atoms import BasicEvent
from repro.events.expr import ALWAYS, NEVER, And, Atom, EventExpr, FalseEvent, Not, Or, TrueEvent, atom, conj, disj, neg

__all__ = ["dumps", "loads", "dump_lines", "load_lines"]


def dumps(expr: EventExpr) -> str:
    """Serialise an event expression to s-expression text."""
    if isinstance(expr, TrueEvent):
        return "T"
    if isinstance(expr, FalseEvent):
        return "F"
    if isinstance(expr, Atom):
        # ``:`` stays raw — it is the namespace separator in nearly
        # every generated event name, and an unescaped colon keeps the
        # decoder on its no-percent fast path (and the text greppable).
        return f"(a {quote(expr.event.name, safe=':')} {expr.event.probability!r})"
    if isinstance(expr, Not):
        return f"(n {dumps(expr.child)})"
    if isinstance(expr, And):
        return "(& " + " ".join(dumps(child) for child in expr.children) + ")"
    if isinstance(expr, Or):
        return "(| " + " ".join(dumps(child) for child in expr.children) + ")"
    raise ParseError(f"cannot serialise unknown expression node {expr!r}")


def loads(text: str) -> EventExpr:
    """Parse s-expression text back into an event expression.

    The inverse of :func:`dumps`; reconstruction goes through the
    interning constructors and re-applies their simplifications, so
    ``loads(dumps(e)) is e`` for every expression ``e`` built through
    the public constructors (hash-consing makes the round trip land on
    the identical node).
    """
    stripped = text.strip()
    # Fast path for the two overwhelmingly common shapes in bulk
    # streams (snapshot sections, sqlite columns): constants and flat
    # atoms.  Anything that does not match exactly falls through to
    # the full tokenizer, so error behaviour is unchanged.
    if stripped == "T":
        return ALWAYS
    if stripped == "F":
        return NEVER
    if (
        stripped.startswith("(a ")
        and stripped.endswith(")")
        and stripped.count("(") == 1
        and stripped.count(")") == 1
    ):
        parts = stripped[1:-1].split()
        if len(parts) == 3:
            try:
                prob = float(parts[2])
            except ValueError as exc:
                raise ParseError(
                    f"bad probability literal {parts[2]!r}", text, 0
                ) from exc
            name = parts[1]
            if "%" in name:
                name = unquote(name)
            return atom(BasicEvent(name, prob))
    tokens = _tokenize(text)
    expr, rest = _parse(tokens, 0, text)
    if rest != len(tokens):
        raise ParseError("trailing tokens after event expression", text, rest)
    return expr


def dump_lines(exprs) -> str:
    """Serialise an iterable of expressions, one s-expression per line.

    The multi-expression form the snapshot store uses: each line is a
    complete :func:`dumps` rendering, so the stream stays greppable and
    a truncated tail is detected as a parse failure rather than a
    silently shorter list.
    """
    return "\n".join(dumps(expr) for expr in exprs)


def load_lines(text: str) -> list[EventExpr]:
    """Parse a :func:`dump_lines` stream back into a list of expressions.

    Blank lines are skipped; any malformed line raises
    :class:`~repro.errors.ParseError`.
    """
    return [loads(line) for line in text.splitlines() if line.strip()]


def _tokenize(text: str) -> list[str]:
    tokens: list[str] = []
    i = 0
    while i < len(text):
        ch = text[i]
        if ch.isspace():
            i += 1
        elif ch in "()":
            tokens.append(ch)
            i += 1
        else:
            j = i
            while j < len(text) and not text[j].isspace() and text[j] not in "()":
                j += 1
            tokens.append(text[i:j])
            i = j
    return tokens


def _parse(tokens: list[str], pos: int, text: str) -> tuple[EventExpr, int]:
    if pos >= len(tokens):
        raise ParseError("unexpected end of event expression", text, pos)
    token = tokens[pos]
    if token == "T":
        return ALWAYS, pos + 1
    if token == "F":
        return NEVER, pos + 1
    if token != "(":
        raise ParseError(f"unexpected token {token!r} in event expression", text, pos)
    if pos + 1 >= len(tokens):
        raise ParseError("unexpected end after '('", text, pos)
    head = tokens[pos + 1]
    if head == "a":
        if pos + 4 >= len(tokens) or tokens[pos + 4] != ")":
            raise ParseError("malformed atom serialisation", text, pos)
        name = unquote(tokens[pos + 2])
        try:
            prob = float(tokens[pos + 3])
        except ValueError as exc:
            raise ParseError(f"bad probability literal {tokens[pos + 3]!r}", text, pos) from exc
        # The interning constructor, not a bare ``Atom``: a parsed
        # expression lands on the same node as its live twin, so
        # ``loads(dumps(e)) is e`` under hash-consing.
        return atom(BasicEvent(name, prob)), pos + 5
    if head == "n":
        child, next_pos = _parse(tokens, pos + 2, text)
        if next_pos >= len(tokens) or tokens[next_pos] != ")":
            raise ParseError("missing ')' after negation", text, next_pos)
        return neg(child), next_pos + 1
    if head in ("&", "|"):
        children: list[EventExpr] = []
        cursor = pos + 2
        while cursor < len(tokens) and tokens[cursor] != ")":
            child, cursor = _parse(tokens, cursor, text)
            children.append(child)
        if cursor >= len(tokens):
            raise ParseError("missing ')' after connective", text, cursor)
        if not children:
            raise ParseError("empty connective in event expression", text, pos)
        return (conj if head == "&" else disj)(children), cursor + 1
    raise ParseError(f"unknown s-expression head {head!r}", text, pos)
