"""Monte Carlo estimation of event probabilities.

The exact engines cover every expression the reproduction produces, but
a database-backed deployment eventually meets events too wide for exact
inference (hundreds of atoms from long-lived context histories).  This
module provides the standard fallback: sample possible worlds, count
satisfying ones.  Sampling honours mutex groups (one categorical draw
per group) and is seeded, so estimates are reproducible.

The estimator is unbiased; the returned object carries a normal-
approximation confidence half-width so callers can decide whether the
sample size sufficed.  Agreement with the exact engines (within the
confidence interval) is a property-tested invariant.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.errors import EventError
from repro.events.atoms import BasicEvent
from repro.events.expr import EventExpr
from repro.events.space import EventSpace, MutexGroup

__all__ = ["MonteCarloEstimate", "probability_by_sampling"]

#: 97.5 % standard-normal quantile, for 95 % confidence half-widths.
_Z_95 = 1.959963984540054


@dataclass(frozen=True)
class MonteCarloEstimate:
    """A sampled probability with its sampling error."""

    value: float
    samples: int

    @property
    def half_width_95(self) -> float:
        """Half-width of the 95 % normal-approximation interval."""
        if self.samples == 0:
            return 1.0
        variance = self.value * (1.0 - self.value) / self.samples
        return _Z_95 * variance**0.5

    def agrees_with(self, exact: float, slack: float = 3.0) -> bool:
        """Is the exact value within ``slack`` half-widths (min 0.01)?"""
        tolerance = max(0.01, slack * self.half_width_95)
        return abs(self.value - exact) <= tolerance

    def __str__(self) -> str:
        return f"{self.value:.4f} ± {self.half_width_95:.4f} (n={self.samples})"


def _sample_world(
    independent: list[BasicEvent],
    grouped: list[tuple[MutexGroup, list[BasicEvent]]],
    rng: random.Random,
) -> dict[str, bool]:
    assignment: dict[str, bool] = {}
    for event in independent:
        assignment[event.name] = rng.random() < event.probability
    for _group, members in grouped:
        draw = rng.random()
        cumulative = 0.0
        chosen: str | None = None
        for member in members:
            cumulative += member.probability
            if draw < cumulative:
                chosen = member.name
                break
        for member in members:
            assignment[member.name] = member.name == chosen
    return assignment


def probability_by_sampling(
    expr: EventExpr,
    space: EventSpace | None = None,
    samples: int = 10000,
    seed: int = 0,
) -> MonteCarloEstimate:
    """Estimate ``P(expr)`` from seeded possible-world samples.

    Examples
    --------
    >>> from repro.events import EventSpace
    >>> space = EventSpace()
    >>> a = space.atom("a", 0.5)
    >>> estimate = probability_by_sampling(a, space, samples=2000, seed=1)
    >>> abs(estimate.value - 0.5) < 0.05
    True
    """
    if samples < 1:
        raise EventError(f"samples must be >= 1, got {samples}")
    if expr.is_certain:
        return MonteCarloEstimate(1.0, samples)
    if expr.is_impossible:
        return MonteCarloEstimate(0.0, samples)

    atoms = expr.atoms()
    if space is None:
        independent = sorted(atoms, key=lambda e: e.name)
        grouped: list[tuple[MutexGroup, list[BasicEvent]]] = []
    else:
        independent, grouped = space.partition_atoms(atoms)

    rng = random.Random(seed)
    hits = 0
    for _ in range(samples):
        if expr.evaluate(_sample_world(independent, grouped, rng)):
            hits += 1
    return MonteCarloEstimate(hits / samples, samples)
