"""Lineage: human-readable provenance of derived events.

One of the paper's arguments for event expressions is that "they provide
data lineage which could help making the system more traceable".  This
module renders an event expression as an explanation tree, and as the
flat list of alternative derivations (DNF terms) with their
probabilities, for use by the explanation layer of the ranker.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.events.dnf import DnfTerm, to_dnf
from repro.events.expr import And, Atom, EventExpr, FalseEvent, Not, Or, TrueEvent
from repro.events.probability import probability
from repro.events.space import EventSpace

__all__ = ["render_tree", "Derivation", "derivations", "explain_probability"]


def render_tree(expr: EventExpr, indent: str = "  ") -> str:
    """Render the expression as an indented tree.

    Atoms show their marginal probabilities; connectives are spelled
    out, so a user can trace which base facts contribute to a derived
    tuple's existence.
    """
    lines: list[str] = []

    def walk(node: EventExpr, depth: int) -> None:
        pad = indent * depth
        if isinstance(node, TrueEvent):
            lines.append(f"{pad}TRUE")
        elif isinstance(node, FalseEvent):
            lines.append(f"{pad}FALSE")
        elif isinstance(node, Atom):
            lines.append(f"{pad}{node.event.name}  (p={node.event.probability:g})")
        elif isinstance(node, Not):
            lines.append(f"{pad}NOT")
            walk(node.child, depth + 1)
        elif isinstance(node, And):
            lines.append(f"{pad}AND")
            for child in node.children:
                walk(child, depth + 1)
        elif isinstance(node, Or):
            lines.append(f"{pad}OR")
            for child in node.children:
                walk(child, depth + 1)
        else:  # pragma: no cover - exhaustive over node types
            lines.append(f"{pad}{node}")

    walk(expr, 0)
    return "\n".join(lines)


@dataclass(frozen=True)
class Derivation:
    """One alternative way a derived event can occur (a DNF term)."""

    term: DnfTerm
    probability: float

    def __str__(self) -> str:
        return f"{self.term}  (p={self.probability:g})"


def derivations(expr: EventExpr, space: EventSpace | None = None, term_limit: int = 256) -> list[Derivation]:
    """The alternative derivations of ``expr``, most probable first.

    Each DNF term of the expression is one conjunction of base facts
    (and absences) under which the event occurs.
    """
    terms = to_dnf(expr, term_limit=term_limit)
    result = [Derivation(term, term.probability(space)) for term in terms]
    result.sort(key=lambda d: (-d.probability, str(d.term)))
    return result


def explain_probability(expr: EventExpr, space: EventSpace | None = None) -> str:
    """A multi-line textual explanation of ``P(expr)``.

    Shows the overall probability, the expression tree, and the top
    alternative derivations.
    """
    lines = [f"P = {probability(expr, space):.6g}", "lineage:"]
    lines.append(render_tree(expr, indent="  "))
    try:
        alternatives = derivations(expr, space)
    except Exception:  # noqa: BLE001 - lineage display must never fail hard
        alternatives = []
    if alternatives:
        lines.append("derivations (alternative proofs):")
        for derivation in alternatives[:8]:
            lines.append(f"  - {derivation}")
        if len(alternatives) > 8:
            lines.append(f"  ... and {len(alternatives) - 8} more")
    return "\n".join(lines)
