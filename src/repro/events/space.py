"""Event spaces: registries of basic events and their correlations.

The paper stresses that "correlations and constraints that exist among
concepts and roles [are] highly desirable (e.g., a person can only be at
a single place at one moment)" and that these must be captured "without
approximations".  An :class:`EventSpace` therefore records, next to the
marginal probability of every basic event, *mutual-exclusion groups*:
sets of basic events of which at most one can occur.

All basic events are pairwise independent except within a mutex group.
The exact probability engines consult the space to honour these
constraints; expressions evaluated without a space treat all atoms as
independent.

The space also provides the *chain encoding* that rewrites mutex-group
members into combinations of fresh independent variables, which lets
engines that require independent variables (the BDD weighted model
counter) remain exact in the presence of mutex groups.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator, Sequence

from repro.errors import EventSpaceError, UnknownEventError
from repro.events.atoms import BasicEvent, validate_probability
from repro.events.expr import ALWAYS, Atom, EventExpr, atom as make_atom, conj, disj, neg

__all__ = ["EventSpace", "MutexGroup", "chain_encode"]

#: Tolerance for "the probabilities of a mutex group sum to at most 1".
_MUTEX_SUM_TOLERANCE = 1e-9


@dataclass(frozen=True)
class MutexGroup:
    """A set of pairwise mutually exclusive basic events.

    At most one member occurs; the residual probability
    ``1 - sum(member probabilities)`` is the chance that none does.
    """

    name: str
    members: tuple[BasicEvent, ...] = field(default_factory=tuple)

    @property
    def member_names(self) -> tuple[str, ...]:
        return tuple(event.name for event in self.members)

    @property
    def total_probability(self) -> float:
        return sum(event.probability for event in self.members)

    @property
    def none_probability(self) -> float:
        """Probability that no member of the group occurs."""
        return max(0.0, 1.0 - self.total_probability)


class EventSpace:
    """Registry of basic events, their probabilities and mutex groups.

    Parameters
    ----------
    name:
        Optional label used in error messages and reprs.

    Examples
    --------
    >>> space = EventSpace()
    >>> sunny = space.atom("weather:sunny", 0.6)
    >>> rainy = space.atom("weather:rainy", 0.3)
    >>> _ = space.declare_mutex("weather", ["weather:sunny", "weather:rainy"])
    >>> from repro.events import probability
    >>> probability(sunny | rainy, space)
    0.9
    """

    def __init__(self, name: str = "events"):
        self.name = name
        self._events: dict[str, BasicEvent] = {}
        self._group_of: dict[str, str] = {}
        self._groups: dict[str, MutexGroup] = {}
        self._fresh_counter = 0
        self._revision = 0

    @property
    def revision(self) -> int:
        """Counter bumped when the *correlation structure* changes.

        Registering a new independent event leaves probabilities of
        existing expressions untouched; declaring a mutex group does
        not.  Probability caches (the compiled reasoner's memo, a
        long-lived :class:`~repro.events.shannon.ShannonEngine`) key on
        this to invalidate when a group appears.
        """
        return self._revision

    # -- registration ----------------------------------------------------
    def event(self, name: str, probability: float) -> BasicEvent:
        """Register (or re-fetch) a basic event.

        Registering an existing name with the same probability is a
        no-op; with a different probability it is an error, since a
        basic event is a single random variable.
        """
        probability = validate_probability(probability, f"probability of event {name!r}")
        existing = self._events.get(name)
        if existing is not None:
            if abs(existing.probability - probability) > 1e-12:
                raise EventSpaceError(
                    f"event {name!r} already registered with probability "
                    f"{existing.probability!r}, cannot re-register with {probability!r}"
                )
            return existing
        event = BasicEvent(name, probability)
        self._events[name] = event
        return event

    def atom(self, name: str, probability: float | None = None) -> Atom:
        """Register an event (if needed) and return it as an expression.

        When ``probability`` is omitted the event must already exist.
        """
        if probability is None:
            return make_atom(self.get(name))
        return make_atom(self.event(name, probability))

    def fresh_atom(self, probability: float, prefix: str = "e") -> Atom:
        """Register a new basic event under a generated unique name."""
        while True:
            self._fresh_counter += 1
            name = f"{prefix}#{self._fresh_counter}"
            if name not in self._events:
                return self.atom(name, probability)

    def get(self, name: str) -> BasicEvent:
        """Look up a registered basic event by name."""
        try:
            return self._events[name]
        except KeyError as exc:
            raise UnknownEventError(f"unknown event {name!r} in space {self.name!r}") from exc

    def __contains__(self, name: str) -> bool:
        return name in self._events

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self) -> Iterator[BasicEvent]:
        return iter(self._events.values())

    def __repr__(self) -> str:
        return f"EventSpace({self.name!r}, events={len(self._events)}, groups={len(self._groups)})"

    # -- mutex groups ------------------------------------------------------
    def declare_mutex(self, group_name: str, member_names: Sequence[str]) -> MutexGroup:
        """Declare that the named events are pairwise mutually exclusive.

        All members must already be registered, belong to no other
        group, and their probabilities must sum to at most 1.
        """
        if group_name in self._groups:
            raise EventSpaceError(f"mutex group {group_name!r} already declared")
        if len(set(member_names)) != len(member_names):
            raise EventSpaceError(f"mutex group {group_name!r} has duplicate members")
        if len(member_names) < 2:
            raise EventSpaceError(f"mutex group {group_name!r} needs at least two members")
        members = tuple(self.get(name) for name in member_names)
        for event in members:
            existing_group = self._group_of.get(event.name)
            if existing_group is not None:
                raise EventSpaceError(
                    f"event {event.name!r} already belongs to mutex group {existing_group!r}"
                )
        total = sum(event.probability for event in members)
        if total > 1.0 + _MUTEX_SUM_TOLERANCE:
            raise EventSpaceError(
                f"mutex group {group_name!r} probabilities sum to {total:g} > 1"
            )
        group = MutexGroup(group_name, members)
        self._groups[group_name] = group
        for event in members:
            self._group_of[event.name] = group_name
        self._revision += 1
        return group

    def mutex_choice(self, group_name: str, outcomes: dict[str, float], prefix: str = "") -> dict[str, Atom]:
        """Register a family of mutually exclusive outcomes in one call.

        ``outcomes`` maps outcome labels to probabilities; each label is
        registered as the event ``f"{prefix}{label}"``.  Returns the
        label-to-atom mapping.
        """
        atoms = {label: self.atom(f"{prefix}{label}", prob) for label, prob in outcomes.items()}
        self.declare_mutex(group_name, [a.name for a in atoms.values()])
        return atoms

    def group_of(self, event_name: str) -> MutexGroup | None:
        """Return the mutex group containing the event, if any."""
        group_name = self._group_of.get(event_name)
        return self._groups[group_name] if group_name is not None else None

    @property
    def groups(self) -> tuple[MutexGroup, ...]:
        return tuple(self._groups.values())

    def are_exclusive(self, first: str, second: str) -> bool:
        """True when two distinct events share a mutex group."""
        if first == second:
            return False
        group = self._group_of.get(first)
        return group is not None and group == self._group_of.get(second)

    # -- analysis ------------------------------------------------------
    def partition_atoms(self, atoms: Iterable[BasicEvent]) -> tuple[list[BasicEvent], list[tuple[MutexGroup, list[BasicEvent]]]]:
        """Split atoms into independent singletons and per-group clusters.

        Returns ``(independent, grouped)`` where ``grouped`` pairs each
        mutex group with the subset of its members that appear in
        ``atoms``.  The engines branch over groups jointly and over
        independent atoms individually.
        """
        independent: list[BasicEvent] = []
        by_group: dict[str, list[BasicEvent]] = {}
        for event in sorted(set(atoms), key=lambda e: e.name):
            group_name = self._group_of.get(event.name)
            if group_name is None:
                independent.append(event)
            else:
                by_group.setdefault(group_name, []).append(event)
        grouped = [(self._groups[name], members) for name, members in sorted(by_group.items())]
        return independent, grouped


def chain_encode(expr: EventExpr, space: EventSpace | None) -> tuple[EventExpr, dict[str, float]]:
    """Rewrite mutex-group members into independent chain variables.

    For a mutex group with members ``m1..mk`` (marginals ``p1..pk``)
    appearing in ``expr``, fresh independent variables ``c1..ck`` are
    introduced with conditional probabilities
    ``P(ci) = pi / (1 - p1 - ... - p_{i-1})`` and every occurrence of
    ``mi`` is replaced by ``NOT c1 AND ... AND NOT c_{i-1} AND ci``.
    The rewritten expression mentions only independent variables and has
    exactly the same probability as the original under the mutex
    semantics, which lets independence-assuming engines (the BDD
    weighted model counter) stay exact.

    Returns the rewritten expression together with the map from variable
    name to marginal probability for *all* variables in the result.
    """
    probabilities: dict[str, float] = {}
    if space is None:
        for event in expr.atoms():
            probabilities[event.name] = event.probability
        return expr, probabilities

    independent, grouped = space.partition_atoms(expr.atoms())
    for event in independent:
        probabilities[event.name] = event.probability

    substitution: dict[str, EventExpr] = {}
    for group, _present_members in grouped:
        # Encode over the full group so the conditional probabilities are
        # well defined regardless of which members appear in ``expr``.
        prefix_not: list[EventExpr] = []
        remaining = 1.0
        for index, member in enumerate(group.members):
            if remaining <= 1e-15:
                conditional = 0.0
            else:
                conditional = min(1.0, member.probability / remaining)
            chain_name = f"__chain:{group.name}:{index}:{member.name}"
            probabilities[chain_name] = conditional
            chain_atom = make_atom(BasicEvent(chain_name, conditional))
            substitution[member.name] = conj(prefix_not + [chain_atom])
            prefix_not.append(neg(chain_atom))
            remaining -= member.probability

    if not substitution:
        return expr, probabilities

    return _replace_atoms(expr, substitution), probabilities


def _replace_atoms(expr: EventExpr, substitution: dict[str, EventExpr]) -> EventExpr:
    """Structurally replace atoms by expressions (bottom-up rebuild)."""
    from repro.events.expr import And, FalseEvent, Not, Or, TrueEvent

    if isinstance(expr, (TrueEvent, FalseEvent)):
        return expr
    if isinstance(expr, Atom):
        return substitution.get(expr.name, expr)
    if isinstance(expr, Not):
        return neg(_replace_atoms(expr.child, substitution))
    if isinstance(expr, And):
        return conj(_replace_atoms(child, substitution) for child in expr.children)
    if isinstance(expr, Or):
        return disj(_replace_atoms(child, substitution) for child in expr.children)
    raise EventSpaceError(f"cannot rewrite unknown expression node {expr!r}")
