"""Possible-world enumeration: the brute-force reference engine.

Enumerates every possible world (joint outcome of all mentioned basic
events, honouring mutex groups) and sums the probabilities of the worlds
in which the expression is true.  Exponential in the number of atoms —
this engine exists as the ground truth the cleverer engines are tested
against, and refuses inputs beyond a configurable budget.
"""

from __future__ import annotations

from itertools import product
from typing import Iterator

from repro.errors import ComplexityLimitError
from repro.events.atoms import BasicEvent
from repro.events.expr import EventExpr
from repro.events.space import EventSpace, MutexGroup

__all__ = ["enumerate_worlds", "probability_by_enumeration", "DEFAULT_WORLD_LIMIT"]

#: Refuse enumeration beyond this many possible worlds.
DEFAULT_WORLD_LIMIT = 1 << 20


def _outcome_count(independent: list[BasicEvent], grouped: list[tuple[MutexGroup, list[BasicEvent]]]) -> int:
    count = 1 << len(independent)
    for _group, members in grouped:
        count *= len(members) + 1
    return count


def enumerate_worlds(
    expr: EventExpr,
    space: EventSpace | None = None,
    limit: int = DEFAULT_WORLD_LIMIT,
) -> Iterator[tuple[dict[str, bool], float]]:
    """Yield ``(assignment, probability)`` for every possible world.

    Only the atoms mentioned in ``expr`` are assigned.  Within a mutex
    group the outcomes are "exactly member *i* occurs" (for the members
    that appear in the expression) plus a single "none of the appearing
    members occurs" outcome carrying the residual probability mass.

    Raises
    ------
    ComplexityLimitError
        If the number of worlds would exceed ``limit``.
    """
    atoms = expr.atoms()
    if space is None:
        independent: list[BasicEvent] = sorted(atoms, key=lambda e: e.name)
        grouped: list[tuple[MutexGroup, list[BasicEvent]]] = []
    else:
        independent, grouped = space.partition_atoms(atoms)

    worlds = _outcome_count(independent, grouped)
    if worlds > limit:
        raise ComplexityLimitError(
            f"world enumeration would visit {worlds} worlds (> limit {limit})"
        )

    # Branch choices: for an independent atom, (True, p) / (False, 1-p).
    # For a group cluster, one branch per appearing member plus "none".
    branch_sets: list[list[tuple[dict[str, bool], float]]] = []
    for event in independent:
        branch_sets.append(
            [
                ({event.name: True}, event.probability),
                ({event.name: False}, event.complement_probability),
            ]
        )
    for _group, members in grouped:
        cluster: list[tuple[dict[str, bool], float]] = []
        member_names = [event.name for event in members]
        for chosen in members:
            assignment = {name: name == chosen.name for name in member_names}
            cluster.append((assignment, chosen.probability))
        none_probability = max(0.0, 1.0 - sum(event.probability for event in members))
        cluster.append(({name: False for name in member_names}, none_probability))
        branch_sets.append(cluster)

    if not branch_sets:
        yield {}, 1.0
        return

    for combo in product(*branch_sets):
        assignment: dict[str, bool] = {}
        weight = 1.0
        for partial, partial_weight in combo:
            assignment.update(partial)
            weight *= partial_weight
        yield assignment, weight


def probability_by_enumeration(
    expr: EventExpr,
    space: EventSpace | None = None,
    limit: int = DEFAULT_WORLD_LIMIT,
) -> float:
    """Exact probability of ``expr`` by summing over possible worlds."""
    total = 0.0
    for assignment, weight in enumerate_worlds(expr, space, limit):
        if weight and expr.evaluate(assignment):
            total += weight
    return min(1.0, max(0.0, total))
