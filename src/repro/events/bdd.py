"""Reduced ordered binary decision diagrams with weighted model counting.

The third exact probability engine.  Expressions are compiled into a
ROBDD over an explicit variable order; the probability is then a single
bottom-up weighted count over the (shared) DAG, linear in the number of
BDD nodes.  Mutex groups are handled by first rewriting the expression
through the chain encoding of :func:`repro.events.space.chain_encode`,
after which all variables are independent.

This engine is the scalable one: for the conjunctive/disjunctive events
produced by view composition the BDD stays small, and repeated
sub-structure across tuples of one view is shared through the node
cache.
"""

from __future__ import annotations

from repro.errors import EventError
from repro.events.expr import And, Atom, EventExpr, FalseEvent, Not, Or, TrueEvent
from repro.events.space import EventSpace, chain_encode

__all__ = ["Bdd", "BddNode", "probability_by_bdd"]


class BddNode:
    """Internal node of a :class:`Bdd` (use the manager to create nodes)."""

    __slots__ = ("index", "variable", "low", "high")

    def __init__(self, index: int, variable: int, low: "BddNode | int", high: "BddNode | int"):
        self.index = index
        self.variable = variable
        self.low = low
        self.high = high


#: Terminal drains of every BDD.
ZERO = 0
ONE = 1


class Bdd:
    """A ROBDD manager over a fixed variable order.

    Parameters
    ----------
    order:
        Variable names, outermost first.  Every expression compiled by
        this manager may only mention these variables.
    """

    def __init__(self, order: list[str]):
        if len(set(order)) != len(order):
            raise EventError("BDD variable order contains duplicates")
        self._order = list(order)
        self._level: dict[str, int] = {name: i for i, name in enumerate(order)}
        self._unique: dict[tuple[int, int, int], BddNode] = {}
        self._apply_cache: dict[tuple, "BddNode | int"] = {}
        self._expr_cache: dict[EventExpr, "BddNode | int"] = {}
        self._nodes = 2  # the two terminals

    # -- node construction ----------------------------------------------
    def _id(self, node: "BddNode | int") -> int:
        return node if isinstance(node, int) else node.index

    def _make(self, variable: int, low: "BddNode | int", high: "BddNode | int") -> "BddNode | int":
        if self._id(low) == self._id(high):
            return low
        key = (variable, self._id(low), self._id(high))
        node = self._unique.get(key)
        if node is None:
            node = BddNode(self._nodes, variable, low, high)
            self._nodes += 1
            self._unique[key] = node
        return node

    def variable(self, name: str) -> "BddNode | int":
        """The BDD for a single variable."""
        try:
            level = self._level[name]
        except KeyError as exc:
            raise EventError(f"variable {name!r} not in BDD order") from exc
        return self._make(level, ZERO, ONE)

    @property
    def node_count(self) -> int:
        """Number of distinct nodes created so far (incl. terminals)."""
        return self._nodes

    # -- boolean combinators ---------------------------------------------
    def negate(self, node: "BddNode | int") -> "BddNode | int":
        if isinstance(node, int):
            return ONE - node
        key = ("not", node.index)
        cached = self._apply_cache.get(key)
        if cached is not None:
            return cached
        result = self._make(node.variable, self.negate(node.low), self.negate(node.high))
        self._apply_cache[key] = result
        return result

    def _apply(self, op: str, left: "BddNode | int", right: "BddNode | int") -> "BddNode | int":
        if op == "and":
            if left is ZERO or right is ZERO or left == ZERO or right == ZERO:
                return ZERO
            if isinstance(left, int):  # left == ONE
                return right
            if isinstance(right, int):
                return left
        elif op == "or":
            if left == ONE or right == ONE:
                return ONE
            if isinstance(left, int):  # left == ZERO
                return right
            if isinstance(right, int):
                return left
        else:  # pragma: no cover - internal misuse
            raise EventError(f"unknown BDD operation {op!r}")

        key = (op, min(left.index, right.index), max(left.index, right.index))
        cached = self._apply_cache.get(key)
        if cached is not None:
            return cached

        if left.variable == right.variable:
            result = self._make(
                left.variable,
                self._apply(op, left.low, right.low),
                self._apply(op, left.high, right.high),
            )
        elif left.variable < right.variable:
            result = self._make(left.variable, self._apply(op, left.low, right), self._apply(op, left.high, right))
        else:
            result = self._make(right.variable, self._apply(op, left, right.low), self._apply(op, left, right.high))
        self._apply_cache[key] = result
        return result

    def conj(self, left: "BddNode | int", right: "BddNode | int") -> "BddNode | int":
        return self._apply("and", left, right)

    def disj(self, left: "BddNode | int", right: "BddNode | int") -> "BddNode | int":
        return self._apply("or", left, right)

    # -- compilation ------------------------------------------------------
    def compile(self, expr: EventExpr) -> "BddNode | int":
        """Compile an event expression (over independent vars) to a node.

        Sub-expressions are cached per manager, so shared (interned)
        subtrees across the expressions of one view compile once.
        """
        if isinstance(expr, TrueEvent):
            return ONE
        if isinstance(expr, FalseEvent):
            return ZERO
        cached = self._expr_cache.get(expr)
        if cached is not None:
            return cached
        node = self._compile(expr)
        self._expr_cache[expr] = node
        return node

    def _compile(self, expr: EventExpr) -> "BddNode | int":
        if isinstance(expr, Atom):
            return self.variable(expr.name)
        if isinstance(expr, Not):
            return self.negate(self.compile(expr.child))
        if isinstance(expr, And):
            node: BddNode | int = ONE
            for child in expr.children:
                node = self.conj(node, self.compile(child))
                if node == ZERO:
                    return ZERO
            return node
        if isinstance(expr, Or):
            node = ZERO
            for child in expr.children:
                node = self.disj(node, self.compile(child))
                if node == ONE:
                    return ONE
            return node
        raise EventError(f"cannot compile unknown expression node {expr!r}")

    # -- weighted model counting ------------------------------------------
    def probability(self, node: "BddNode | int", probabilities: dict[str, float]) -> float:
        """Weighted model count: P of the function rooted at ``node``.

        ``probabilities`` maps each variable name in the order to its
        (independent) marginal probability.
        """
        weights = [probabilities[name] for name in self._order]
        memo: dict[int, float] = {}

        def walk(current: "BddNode | int") -> float:
            if isinstance(current, int):
                return float(current)
            cached = memo.get(current.index)
            if cached is not None:
                return cached
            p = weights[current.variable]
            value = p * walk(current.high) + (1.0 - p) * walk(current.low)
            memo[current.index] = value
            return value

        return min(1.0, max(0.0, walk(node)))


def probability_by_bdd(expr: EventExpr, space: EventSpace | None = None) -> float:
    """Exact probability of ``expr`` via BDD weighted model counting.

    Mutex groups (when ``space`` is given) are removed up front by the
    chain encoding, so the count itself runs over independent variables.
    """
    encoded, probabilities = chain_encode(expr, space)
    if encoded.is_certain:
        return 1.0
    if encoded.is_impossible:
        return 0.0
    # Order variables by name: deterministic, and chain variables of one
    # group stay adjacent, which keeps group structure compact.
    order = sorted(encoded.atom_names())
    manager = Bdd(order)
    node = manager.compile(encoded)
    return manager.probability(node, probabilities)
