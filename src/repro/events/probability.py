"""Facade over the exact probability engines.

Four engines compute the same value in different ways:

========== ============================================  ==================
engine     algorithm                                     complexity
========== ============================================  ==================
"shannon"  Shannon expansion with memoisation (default)  good in practice
"bdd"      ROBDD weighted model counting                 good in practice
"worlds"   possible-world enumeration                    2^atoms (guarded)
"dnf"      DNF + inclusion-exclusion                     2^terms (guarded)
========== ============================================  ==================

All are exact; the exponential two exist as independent oracles for the
test-suite and for lineage display.
"""

from __future__ import annotations

from typing import Callable

from repro.errors import EventError
from repro.events.bdd import probability_by_bdd
from repro.events.dnf import probability_by_dnf
from repro.events.expr import EventExpr
from repro.events.shannon import probability_by_shannon
from repro.events.space import EventSpace
from repro.events.worlds import probability_by_enumeration

__all__ = ["probability", "conditional_probability", "ENGINES", "DEFAULT_ENGINE"]

ENGINES: dict[str, Callable[[EventExpr, EventSpace | None], float]] = {
    "shannon": probability_by_shannon,
    "bdd": probability_by_bdd,
    "worlds": probability_by_enumeration,
    "dnf": probability_by_dnf,
}

DEFAULT_ENGINE = "shannon"


def probability(expr: EventExpr, space: EventSpace | None = None, engine: str = DEFAULT_ENGINE) -> float:
    """Exact probability of an event expression.

    Parameters
    ----------
    expr:
        The event expression to evaluate.
    space:
        Event space carrying mutex-group declarations.  ``None`` treats
        every atom as independent.
    engine:
        One of ``"shannon"``, ``"bdd"``, ``"worlds"``, ``"dnf"``.

    Examples
    --------
    >>> from repro.events import EventSpace
    >>> space = EventSpace()
    >>> a = space.atom("a", 0.5)
    >>> b = space.atom("b", 0.5)
    >>> probability(a | b, space)
    0.75
    """
    try:
        compute = ENGINES[engine]
    except KeyError as exc:
        raise EventError(f"unknown probability engine {engine!r}; choose from {sorted(ENGINES)}") from exc
    return compute(expr, space)


def conditional_probability(
    expr: EventExpr,
    given: EventExpr,
    space: EventSpace | None = None,
    engine: str = DEFAULT_ENGINE,
) -> float:
    """``P(expr | given)``; raises if the condition is impossible."""
    denominator = probability(given, space, engine)
    if denominator <= 0.0:
        raise EventError("conditional probability on an impossible event")
    joint = probability(expr & given, space, engine)
    return min(1.0, joint / denominator)
