"""Probabilistic event expressions — the uncertainty substrate (S1).

This package implements the "event expression datatype" the paper adds
to PostgreSQL in its naive implementation (Section 5), following the
probabilistic relational algebra of Fuhr & Roelleke and the context
uncertainty model of van Bunningen et al.:

* :class:`~repro.events.atoms.BasicEvent` — atomic Bernoulli variables;
* :class:`~repro.events.space.EventSpace` — registry with
  mutual-exclusion groups ("a person is at a single place at a time");
* :mod:`~repro.events.expr` — Boolean event expressions with lineage;
* four exact probability engines (Shannon expansion, BDD weighted model
  counting, possible-world enumeration, DNF inclusion-exclusion);
* serialisation to TEXT for the sqlite backend, and lineage rendering.
"""

from repro.events.atoms import BasicEvent, validate_probability
from repro.events.bdd import Bdd, probability_by_bdd
from repro.events.dnf import DnfTerm, Literal, probability_by_dnf, to_dnf
from repro.events.expr import (
    ALWAYS,
    NEVER,
    And,
    Atom,
    EventExpr,
    FalseEvent,
    Not,
    Or,
    TrueEvent,
    atom,
    conj,
    disj,
    neg,
)
from repro.events.lineage import Derivation, derivations, explain_probability, render_tree
from repro.events.montecarlo import MonteCarloEstimate, probability_by_sampling
from repro.events.probability import DEFAULT_ENGINE, ENGINES, conditional_probability, probability
from repro.events.serialize import dump_lines, dumps, load_lines, loads
from repro.events.shannon import ShannonEngine, probability_by_shannon
from repro.events.space import EventSpace, MutexGroup, chain_encode
from repro.events.worlds import enumerate_worlds, probability_by_enumeration

__all__ = [
    "ALWAYS",
    "NEVER",
    "And",
    "Atom",
    "BasicEvent",
    "Bdd",
    "DEFAULT_ENGINE",
    "Derivation",
    "DnfTerm",
    "ENGINES",
    "EventExpr",
    "EventSpace",
    "FalseEvent",
    "Literal",
    "MonteCarloEstimate",
    "MutexGroup",
    "Not",
    "Or",
    "ShannonEngine",
    "TrueEvent",
    "atom",
    "chain_encode",
    "conditional_probability",
    "conj",
    "derivations",
    "disj",
    "dump_lines",
    "dumps",
    "enumerate_worlds",
    "explain_probability",
    "load_lines",
    "loads",
    "neg",
    "probability",
    "probability_by_bdd",
    "probability_by_dnf",
    "probability_by_enumeration",
    "probability_by_sampling",
    "probability_by_shannon",
    "render_tree",
    "to_dnf",
    "validate_probability",
]
