"""Basic events: the atomic random variables of the uncertainty model.

The paper's naive implementation (Section 5) extends the database with an
*event expression* datatype following van Bunningen et al.'s context
uncertainty model and Fuhr & Roelleke's probabilistic relational algebra.
Every uncertain fact in the system — a sensor reading, an uncertain
document feature — is witnessed by a *basic event*: an atomic Bernoulli
variable with a fixed marginal probability.

Basic events are independent unless they are placed in a mutual-exclusion
group by an :class:`~repro.events.space.EventSpace` (for example, "Peter
is in the kitchen" and "Peter is in the living room" cannot both hold;
a person can only be at a single place at one moment).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import EventSpaceError

__all__ = ["BasicEvent", "validate_probability"]


def validate_probability(value: float, what: str = "probability") -> float:
    """Return ``value`` if it is a number in ``[0, 1]``, else raise.

    Raises
    ------
    EventSpaceError
        If ``value`` is not a real number in the closed unit interval.
    """
    try:
        number = float(value)
    except (TypeError, ValueError) as exc:
        raise EventSpaceError(f"{what} must be a number, got {value!r}") from exc
    if number != number:  # NaN
        raise EventSpaceError(f"{what} must not be NaN")
    if not 0.0 <= number <= 1.0:
        raise EventSpaceError(f"{what} must be in [0, 1], got {number!r}")
    return number


@dataclass(frozen=True)
class BasicEvent:
    """An atomic Bernoulli event with a name and a marginal probability.

    Two basic events with the same name denote the *same* random
    variable; it is an error (detected by the event space) to register
    the same name twice with different probabilities.

    Parameters
    ----------
    name:
        Globally unique identifier of the event, e.g. ``"loc:peter:kitchen"``.
    probability:
        Marginal probability that the event occurs, in ``[0, 1]``.
    """

    name: str
    probability: float

    def __post_init__(self) -> None:
        if not isinstance(self.name, str) or not self.name:
            raise EventSpaceError(f"event name must be a non-empty string, got {self.name!r}")
        object.__setattr__(self, "probability", validate_probability(self.probability, f"probability of event {self.name!r}"))

    @property
    def complement_probability(self) -> float:
        """Probability that the event does *not* occur."""
        return 1.0 - self.probability

    def __str__(self) -> str:
        return f"{self.name}[p={self.probability:g}]"
