"""Disjunctive normal form and inclusion-exclusion probability.

A fourth, independent way to compute exact probabilities, used to
cross-check the other engines and to present lineage as a flat list of
alternative "proofs" (each DNF term is one way the derived event can
come about).  Both the DNF conversion and inclusion-exclusion are
exponential; both refuse inputs beyond a budget.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations

from repro.errors import ComplexityLimitError, EventError
from repro.events.atoms import BasicEvent
from repro.events.expr import ALWAYS, And, Atom, EventExpr, FalseEvent, Not, Or, TrueEvent
from repro.events.space import EventSpace

__all__ = ["Literal", "DnfTerm", "to_dnf", "probability_by_dnf", "DEFAULT_TERM_LIMIT"]

#: Refuse inclusion-exclusion beyond this many DNF terms (2**n subsets).
DEFAULT_TERM_LIMIT = 18


@dataclass(frozen=True)
class Literal:
    """A possibly negated basic event."""

    event: BasicEvent
    positive: bool = True

    def negated(self) -> "Literal":
        return Literal(self.event, not self.positive)

    def __str__(self) -> str:
        return self.event.name if self.positive else f"NOT {self.event.name}"


@dataclass(frozen=True)
class DnfTerm:
    """A conjunction of literals; ``None`` result of conjoining = ⊥.

    Terms are stored as a mapping from event to sign to make
    contradiction detection O(1) per literal.
    """

    literals: frozenset[Literal]

    @staticmethod
    def true() -> "DnfTerm":
        return DnfTerm(frozenset())

    def conjoin(self, other: "DnfTerm", space: EventSpace | None = None) -> "DnfTerm | None":
        """Conjunction of two terms, or ``None`` if contradictory.

        With a ``space``, two *positive* literals over distinct members
        of one mutex group also contradict.
        """
        signs: dict[BasicEvent, bool] = {lit.event: lit.positive for lit in self.literals}
        for lit in other.literals:
            existing = signs.get(lit.event)
            if existing is None:
                signs[lit.event] = lit.positive
            elif existing != lit.positive:
                return None
        if space is not None:
            positive = [event for event, sign in signs.items() if sign]
            for first, second in combinations(positive, 2):
                if space.are_exclusive(first.name, second.name):
                    return None
        return DnfTerm(frozenset(Literal(event, sign) for event, sign in signs.items()))

    def probability(self, space: EventSpace | None = None) -> float:
        """Exact probability of the conjunction under mutex semantics.

        Literals over independent events multiply.  Within one mutex
        group: one positive member (probability ``p_i``) forces every
        other member false, so extra negative literals of that group are
        free; with only negative literals the probability is
        ``1 - sum of the negated members' probabilities``.
        """
        if space is None:
            value = 1.0
            for lit in self.literals:
                value *= lit.event.probability if lit.positive else lit.event.complement_probability
            return value

        independent, grouped = space.partition_atoms(lit.event for lit in self.literals)
        signs = {lit.event: lit.positive for lit in self.literals}
        value = 1.0
        for event in independent:
            value *= event.probability if signs[event] else event.complement_probability
        for _group, members in grouped:
            positives = [event for event in members if signs[event]]
            if len(positives) > 1:
                return 0.0
            if len(positives) == 1:
                value *= positives[0].probability
            else:
                value *= max(0.0, 1.0 - sum(event.probability for event in members))
        return value

    def __str__(self) -> str:
        if not self.literals:
            return "TRUE"
        return " AND ".join(sorted(str(lit) for lit in self.literals))


def to_dnf(expr: EventExpr, term_limit: int = 4096) -> list[DnfTerm]:
    """Convert an expression to a list of DNF terms.

    The empty list denotes ⊥; a list containing the empty term denotes ⊤.
    Contradictory terms (``x AND NOT x``) are dropped during expansion.

    Raises
    ------
    ComplexityLimitError
        If the intermediate term count exceeds ``term_limit``.
    """
    terms = _expand(_push_negations(expr, negate=False), term_limit)
    return terms


def _push_negations(expr: EventExpr, negate: bool) -> EventExpr:
    """Rewrite to negation normal form (negations only on atoms)."""
    if isinstance(expr, TrueEvent):
        return FalseEvent() if negate else expr
    if isinstance(expr, FalseEvent):
        return ALWAYS if negate else expr
    if isinstance(expr, Atom):
        return Not(expr) if negate else expr
    if isinstance(expr, Not):
        return _push_negations(expr.child, not negate)
    if isinstance(expr, And):
        children = [_push_negations(child, negate) for child in expr.children]
        from repro.events.expr import conj, disj

        return disj(children) if negate else conj(children)
    if isinstance(expr, Or):
        children = [_push_negations(child, negate) for child in expr.children]
        from repro.events.expr import conj, disj

        return conj(children) if negate else disj(children)
    raise EventError(f"cannot normalise unknown expression node {expr!r}")


def _expand(expr: EventExpr, term_limit: int) -> list[DnfTerm]:
    """Distribute AND over OR on a negation-normal-form expression."""
    if isinstance(expr, TrueEvent):
        return [DnfTerm.true()]
    if isinstance(expr, FalseEvent):
        return []
    if isinstance(expr, Atom):
        return [DnfTerm(frozenset({Literal(expr.event, True)}))]
    if isinstance(expr, Not):
        if not isinstance(expr.child, Atom):  # pragma: no cover - NNF guarantees
            raise EventError("negation below non-atom after NNF")
        return [DnfTerm(frozenset({Literal(expr.child.event, False)}))]
    if isinstance(expr, Or):
        terms: list[DnfTerm] = []
        seen: set[frozenset[Literal]] = set()
        for child in expr.children:
            for term in _expand(child, term_limit):
                if term.literals not in seen:
                    seen.add(term.literals)
                    terms.append(term)
            if len(terms) > term_limit:
                raise ComplexityLimitError(f"DNF expansion exceeds {term_limit} terms")
        return terms
    if isinstance(expr, And):
        terms = [DnfTerm.true()]
        for child in expr.children:
            child_terms = _expand(child, term_limit)
            next_terms: list[DnfTerm] = []
            seen = set()
            for left in terms:
                for right in child_terms:
                    merged = left.conjoin(right)
                    if merged is not None and merged.literals not in seen:
                        seen.add(merged.literals)
                        next_terms.append(merged)
            if len(next_terms) > term_limit:
                raise ComplexityLimitError(f"DNF expansion exceeds {term_limit} terms")
            terms = next_terms
        return terms
    raise EventError(f"cannot expand unknown expression node {expr!r}")


def probability_by_dnf(
    expr: EventExpr,
    space: EventSpace | None = None,
    term_limit: int = DEFAULT_TERM_LIMIT,
) -> float:
    """Exact probability via DNF + inclusion-exclusion.

    ``P(t1 or ... or tn) = sum over non-empty subsets S of
    (-1)^(|S|+1) * P(conjunction of S)``.  Exponential in the number of
    DNF terms; refuses inputs with more than ``term_limit`` terms.
    """
    terms = to_dnf(expr)
    if not terms:
        return 0.0
    if any(not term.literals for term in terms):
        return 1.0
    if len(terms) > term_limit:
        raise ComplexityLimitError(
            f"inclusion-exclusion over {len(terms)} terms exceeds limit {term_limit}"
        )
    total = 0.0
    for size in range(1, len(terms) + 1):
        sign = 1.0 if size % 2 == 1 else -1.0
        for subset in combinations(terms, size):
            merged: DnfTerm | None = DnfTerm.true()
            for term in subset:
                merged = merged.conjoin(term, space)
                if merged is None:
                    break
            if merged is not None:
                total += sign * merged.probability(space)
    return min(1.0, max(0.0, total))
