"""Shannon expansion: the workhorse exact probability engine.

``P(e) = P(x) * P(e[x:=T]) + (1 - P(x)) * P(e[x:=F])`` for any atom
``x``.  Conditioning is performed jointly per mutex group (one branch
per member that appears in the expression, plus a "none of them"
branch), so mutex constraints are honoured exactly.  Memoisation on the
simplified sub-expressions keeps repeated sub-problems cheap; with a
sensible branching order this engine comfortably handles the event
expressions produced by the view machinery.
"""

from __future__ import annotations

from collections import Counter

from repro.events.atoms import BasicEvent
from repro.events.expr import Atom, EventExpr
from repro.events.space import EventSpace

__all__ = ["probability_by_shannon", "ShannonEngine"]


class ShannonEngine:
    """Reusable Shannon-expansion evaluator with a shared memo table.

    Reuse one engine across many related expressions (e.g. the per-tuple
    events of one view) to share memoised sub-results.

    Parameters
    ----------
    space:
        Event space supplying mutex-group structure; ``None`` treats all
        atoms as independent.
    """

    def __init__(self, space: EventSpace | None = None):
        self._space = space
        self._memo: dict[EventExpr, float] = {}

    def probability(self, expr: EventExpr) -> float:
        """Exact probability of ``expr``."""
        return self._probability(expr)

    def clear(self) -> None:
        """Drop the memo table (e.g. after the space gains new groups)."""
        self._memo.clear()

    # -- internals -----------------------------------------------------
    def _probability(self, expr: EventExpr) -> float:
        if expr.is_certain:
            return 1.0
        if expr.is_impossible:
            return 0.0
        # Expressions hash by their cached structural hash and compare
        # identity-first, so with interned nodes (repro.events.expr) a
        # memo lookup is one dict probe — no deep tuple rehash.
        cached = self._memo.get(expr)
        if cached is not None:
            return cached

        branch_atom = self._pick_atom(expr)
        value = self._branch(expr, branch_atom)
        value = min(1.0, max(0.0, value))
        self._memo[expr] = value
        return value

    def _pick_atom(self, expr: EventExpr) -> BasicEvent:
        """Choose the most frequently occurring atom as the pivot.

        Branching on frequent atoms simplifies the expression fastest,
        which keeps the recursion shallow in practice.
        """
        counts: Counter[BasicEvent] = Counter()
        _count_atoms(expr, counts)
        # Deterministic tie-break on name keeps memo behaviour stable.
        return max(counts, key=lambda event: (counts[event], event.name))

    def _branch(self, expr: EventExpr, pivot: BasicEvent) -> float:
        group = self._space.group_of(pivot.name) if self._space is not None else None
        if group is None:
            positive = expr.substitute({pivot.name: True})
            negative = expr.substitute({pivot.name: False})
            return (
                pivot.probability * self._probability(positive)
                + pivot.complement_probability * self._probability(negative)
            )

        # Joint conditioning over the mutex group: exactly one appearing
        # member occurs, or none of them does.
        appearing = [event for event in group.members if event in expr.atoms()]
        member_names = [event.name for event in appearing]
        value = 0.0
        for chosen in appearing:
            assignment = {name: name == chosen.name for name in member_names}
            value += chosen.probability * self._probability(expr.substitute(assignment))
        none_probability = 1.0 - sum(event.probability for event in appearing)
        if none_probability > 0.0:
            assignment = {name: False for name in member_names}
            value += none_probability * self._probability(expr.substitute(assignment))
        return value


def _count_atoms(expr: EventExpr, counts: Counter) -> None:
    from repro.events.expr import And, Not, Or

    if isinstance(expr, Atom):
        counts[expr.event] += 1
    elif isinstance(expr, Not):
        _count_atoms(expr.child, counts)
    elif isinstance(expr, (And, Or)):
        for child in expr.children:
            _count_atoms(child, counts)


def probability_by_shannon(expr: EventExpr, space: EventSpace | None = None) -> float:
    """One-shot convenience wrapper around :class:`ShannonEngine`."""
    return ShannonEngine(space).probability(expr)
