"""Command-line interface: ``python -m repro <command>``.

Five commands cover the library's everyday workflows:

* ``example``  — run the paper's worked example (Table 1 + SQL query);
* ``rank``     — score a rule file against a context description;
* ``mine``     — mine scored preference rules from a JSON-lines history;
* ``scaling``  — a quick naive-vs-factorised scaling measurement;
* ``serve``    — the HTTP/JSON ranking gateway over a tenant fleet.

The CLI is deliberately thin: every ranking path goes through the
:class:`~repro.engine.RankingEngine` facade (``serve`` through the
:class:`~repro.service.RankingService` pipeline on top of it), so it
doubles as executable documentation of the public API.
"""

from __future__ import annotations

import argparse
import sys
from typing import Sequence

from repro.engine import RankingEngine, RankRequest
from repro.errors import ReproError
from repro.history import HistoryLog
from repro.mining import MiningConfig, mine_rules
from repro.reporting import TextTable, fit_growth, timed
from repro.rules import load_rules
from repro.workloads import (
    Section5Counts,
    build_tvtouch,
    generate_rule_series,
    generate_test_database,
    install_context_series,
    set_breakfast_weekend_context,
)

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Context-aware preference ranking (van Bunningen et al., ICDE 2007).",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    commands.add_parser("example", help="run the paper's worked example")

    rank = commands.add_parser("rank", help="rank the TVTouch programs under a rule file")
    rank.add_argument("rules", help="path to a rule DSL file")
    rank.add_argument(
        "--context",
        action="append",
        default=[],
        metavar="CONCEPT[:PROB]",
        help="context concept held by the user, e.g. 'Weekend' or 'Breakfast:0.7' (repeatable)",
    )

    mine = commands.add_parser("mine", help="mine preference rules from a history file")
    mine.add_argument("history", help="JSON-lines episode log (HistoryLog.save format)")
    mine.add_argument("--min-support", type=int, default=5)
    mine.add_argument("--min-lift", type=float, default=0.1)
    mine.add_argument("--smoothing", type=float, default=0.0)

    scaling = commands.add_parser("scaling", help="naive vs factorised query-time sweep")
    scaling.add_argument("--max-rules", type=int, default=6)
    scaling.add_argument("--scale", type=float, default=0.2, help="database scale factor")

    serve = commands.add_parser(
        "serve", help="run the HTTP/JSON ranking gateway over a tenant fleet"
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=8080, help="0 picks a free port")
    serve.add_argument(
        "--rules", help="rule DSL file applied to every minted tenant (default: the paper's)"
    )
    serve.add_argument("--shards", type=int, default=8, help="tenant-registry shards")
    serve.add_argument("--max-sessions", type=int, default=4096, help="live-session LRU bound")
    serve.add_argument(
        "--max-concurrency", type=int, default=8, help="admission bound on in-flight ranks"
    )
    serve.add_argument(
        "--queue-timeout", type=float, default=0.25,
        help="seconds a request may wait for admission before a 503",
    )
    serve.add_argument(
        "--request-timeout", type=float, default=2.0,
        help="per-request deadline in seconds; 0 disables deadlines",
    )
    serve.add_argument(
        "--stale-max-age", type=float, default=300.0,
        help="oldest stale cache body servable in degraded mode (seconds)",
    )
    serve.add_argument(
        "--no-stale", action="store_true",
        help="never serve stale cache bodies on overload/error",
    )
    serve.add_argument(
        "--no-breaker", action="store_true",
        help="disable the per-tenant/global circuit breaker",
    )
    serve.add_argument(
        "--workers", type=int, default=1,
        help="worker processes; > 1 runs the pre-fork fleet on one shared port",
    )
    fault = serve.add_argument_group(
        "fault injection", "chaos knobs (defaults from REPRO_FAULT_* env vars)"
    )
    fault.add_argument(
        "--fault-rank-delay", type=float, default=None, metavar="SECONDS",
        help="inject this sleep before every rank",
    )
    fault.add_argument(
        "--fault-rank-error-rate", type=float, default=None, metavar="P",
        help="inject a rank failure with this probability (0..1)",
    )
    fault.add_argument(
        "--fault-kill-every", type=int, default=None, metavar="N",
        help="SIGKILL the serving worker after every N responses",
    )
    fault.add_argument(
        "--fault-worker-ttl", type=float, default=None, metavar="SECONDS",
        help="SIGKILL each worker this long after boot (crash-loop drill)",
    )
    fault.add_argument(
        "--fault-seed", type=int, default=None,
        help="fault-injection RNG seed",
    )
    fault.add_argument(
        "--fault-tenants", default=None, metavar="NAMES",
        help="comma-separated tenants the rank faults target (default: all)",
    )
    serve.add_argument(
        "--cache", choices=("memory", "none"), default="memory",
        help="response-cache backend (per worker)",
    )
    serve.add_argument(
        "--cache-entries", type=int, default=4096,
        help="response-cache LRU bound (per worker)",
    )
    serve.add_argument(
        "--cache-ttl", type=float, default=300.0,
        help="response-cache TTL in seconds; 0 disables expiry",
    )
    serve.add_argument("--verbose", action="store_true", help="log each HTTP request")
    return parser


def _cmd_example(_args: argparse.Namespace) -> int:
    world = build_tvtouch()
    set_breakfast_weekend_context(world)
    engine = RankingEngine.from_world(world)
    response = engine.rank(RankRequest(documents=world.program_ids, explain=True))
    print(response.explanation)
    return 0


def _cmd_rank(args: argparse.Namespace) -> int:
    world = build_tvtouch()
    try:
        rules = load_rules(args.rules)
    except (OSError, ReproError) as exc:
        print(f"error: cannot load rule file: {exc}", file=sys.stderr)
        return 2
    engine = RankingEngine.from_world(world, rules=rules)
    try:
        engine.install_context(*args.context, tick="cli")
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if not engine.context_covered():
        print("warning: no rule applies in this context; all scores are 1", file=sys.stderr)
    response = engine.rank(RankRequest(documents=world.program_ids, explain=True))
    print(response.explanation)
    return 0


def _cmd_mine(args: argparse.Namespace) -> int:
    log = HistoryLog.load(args.history)
    config = MiningConfig(
        min_support=args.min_support,
        min_lift=args.min_lift,
        smoothing=args.smoothing,
    )
    mined = mine_rules(log, config)
    if not mined:
        print("no rules cleared the thresholds", file=sys.stderr)
        return 1
    for mined_rule in mined:
        print(f"{mined_rule.rule.to_dsl()}   # support {mined_rule.support}")
    return 0


def _cmd_scaling(args: argparse.Namespace) -> int:
    from repro.core import naive_scores_python
    from repro.core.problem import bind_problem

    counts = Section5Counts().scaled(args.scale)
    world = generate_test_database(seed=7, counts=counts)
    install_context_series(world, k=args.max_rules + 1, seed=11)
    table = TextTable(["rules", "naive (s)", "factorised (s)"])
    naive_times = []
    ks = list(range(1, args.max_rules + 1))
    for k in ks:
        repository = generate_rule_series(world, k, seed=13)
        problem = bind_problem(world.abox, world.tbox, world.user, repository, [], world.space)
        _scores, naive_seconds = timed(
            lambda: naive_scores_python(
                world.database, world.tbox, world.target, list(problem.bindings), world.space
            )
        )
        engine = RankingEngine.from_world(world, rules=repository)
        request = RankRequest(documents=world.programs)
        _response, factorised_seconds = timed(lambda: engine.rank(request))
        naive_times.append(naive_seconds)
        table.add_row([k, naive_seconds, factorised_seconds])
    print(table.render())
    if len(ks) >= 2:
        ratio = fit_growth(ks, naive_times).ratio
        print(f"naive growth per extra rule: x{ratio:.2f}")
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.cache import InMemoryCacheAdapter, NoCacheAdapter
    from repro.service import FaultInjector, RankingService, ServiceConfig
    from repro.service.fleet import serve_fleet
    from repro.service.http import serve as run_gateway
    from repro.tenants import TenantRegistry

    if args.workers < 1:
        print(f"error: --workers must be >= 1, got {args.workers}", file=sys.stderr)
        return 2
    world = build_tvtouch()  # built pre-fork; workers share it copy-on-write
    rules = None
    if args.rules:
        try:
            rules = load_rules(args.rules)
        except (OSError, ReproError) as exc:
            print(f"error: cannot load rule file: {exc}", file=sys.stderr)
            return 2

    # CLI fault flags override the REPRO_FAULT_* environment defaults.
    env_faults = FaultInjector.from_env()
    try:
        injector_spec = dict(
            rank_delay=(
                args.fault_rank_delay
                if args.fault_rank_delay is not None
                else env_faults.rank_delay
            ),
            rank_error_rate=(
                args.fault_rank_error_rate
                if args.fault_rank_error_rate is not None
                else env_faults.rank_error_rate
            ),
            worker_kill_every=(
                args.fault_kill_every
                if args.fault_kill_every is not None
                else env_faults.worker_kill_every
            ),
            worker_ttl=(
                args.fault_worker_ttl
                if args.fault_worker_ttl is not None
                else env_faults.worker_ttl
            ),
            tenants=(
                frozenset(
                    part.strip()
                    for part in args.fault_tenants.split(",")
                    if part.strip()
                )
                or None
                if args.fault_tenants is not None
                else env_faults.tenants
            ),
            seed=args.fault_seed if args.fault_seed is not None else env_faults.seed,
        )
        FaultInjector(**injector_spec)  # validate in the parent, pre-fork
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    def make_service(worker_info=None):
        # Each fleet worker runs this after the fork: its own registry,
        # its own response cache — workers share no mutable state.
        if args.cache == "none":
            cache = NoCacheAdapter()
        else:
            cache = InMemoryCacheAdapter(
                max_entries=args.cache_entries, ttl=args.cache_ttl or None
            )
        registry = TenantRegistry(
            world, rules=rules, shards=args.shards, max_sessions=args.max_sessions
        )
        return RankingService(
            registry,
            ServiceConfig(
                max_concurrency=args.max_concurrency,
                queue_timeout=args.queue_timeout,
                request_timeout=args.request_timeout or None,
                stale_max_age=args.stale_max_age,
                serve_stale=not args.no_stale,
                breaker_enabled=not args.no_breaker,
            ),
            cache=cache,
            worker_info=worker_info,
            fault_injector=FaultInjector(**injector_spec),
        )

    settings = (
        f"cache={args.cache}, shards={args.shards}, "
        f"max_sessions={args.max_sessions}, max_concurrency={args.max_concurrency}, "
        f"request_timeout={args.request_timeout or None}"
    )

    if args.workers == 1:
        try:
            service = make_service({"index": 0, "workers": 1, "mode": "single"})
        except ReproError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2

        def announce(server) -> None:
            print(
                f"repro serve: listening on {server.url} ({settings})",
                flush=True,
            )
            print(
                f"  try: curl '{server.url}/rank?tenant=alice&context=Weekend"
                f"&context=Breakfast&top_k=3'",
                flush=True,
            )

        return run_gateway(
            service, args.host, args.port, verbose=args.verbose, ready=announce
        )

    try:
        # Validate cache/registry settings in the parent before forking
        # anything (a worker would only hit the error after the fork).
        make_service({"index": -1, "workers": args.workers, "mode": "preflight"})
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    def announce_fleet(supervisor) -> None:
        print(
            f"repro serve: listening on {supervisor.url} "
            f"(workers={args.workers}, mode={supervisor.mode}, {settings})",
            flush=True,
        )
        for index, pid in enumerate(supervisor.worker_pids()):
            print(f"repro serve: fleet worker {index} pid {pid}", flush=True)
        print(
            f"  try: curl '{supervisor.url}/rank?tenant=alice&context=Weekend"
            f"&context=Breakfast&top_k=3'",
            flush=True,
        )

    def factory(worker_info):
        return make_service(dict(worker_info))

    try:
        return serve_fleet(
            factory,
            args.workers,
            args.host,
            args.port,
            verbose=args.verbose,
            announce=announce_fleet,
        )
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    handlers = {
        "example": _cmd_example,
        "rank": _cmd_rank,
        "mine": _cmd_mine,
        "scaling": _cmd_scaling,
        "serve": _cmd_serve,
    }
    return handlers[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
