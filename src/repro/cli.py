"""Command-line interface: ``python -m repro <command>``.

Six commands cover the library's everyday workflows:

* ``example``  — run the paper's worked example (Table 1 + SQL query);
* ``rank``     — score a rule file against a context description;
* ``mine``     — mine scored preference rules from a JSON-lines history;
* ``scaling``  — a quick naive-vs-factorised scaling measurement;
* ``serve``    — the HTTP/JSON ranking gateway over a tenant fleet;
* ``snapshot`` — build or inspect a persistent world snapshot
  (``serve --snapshot`` boots the fleet from one instead of rebuilding).

The CLI is deliberately thin: every ranking path goes through the
:class:`~repro.engine.RankingEngine` facade (``serve`` through the
:class:`~repro.service.RankingService` pipeline on top of it), so it
doubles as executable documentation of the public API.
"""

from __future__ import annotations

import argparse
import sys
from typing import Sequence

from repro.engine import RankingEngine, RankRequest
from repro.errors import ReproError
from repro.history import HistoryLog
from repro.mining import MiningConfig, mine_rules
from repro.reporting import TextTable, fit_growth, timed
from repro.rules import load_rules
from repro.workloads import (
    Section5Counts,
    build_tvtouch,
    generate_rule_series,
    generate_test_database,
    install_context_series,
    set_breakfast_weekend_context,
)

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Context-aware preference ranking (van Bunningen et al., ICDE 2007).",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    commands.add_parser("example", help="run the paper's worked example")

    rank = commands.add_parser("rank", help="rank the TVTouch programs under a rule file")
    rank.add_argument("rules", help="path to a rule DSL file")
    rank.add_argument(
        "--context",
        action="append",
        default=[],
        metavar="CONCEPT[:PROB]",
        help="context concept held by the user, e.g. 'Weekend' or 'Breakfast:0.7' (repeatable)",
    )

    mine = commands.add_parser("mine", help="mine preference rules from a history file")
    mine.add_argument("history", help="JSON-lines episode log (HistoryLog.save format)")
    mine.add_argument("--min-support", type=int, default=5)
    mine.add_argument("--min-lift", type=float, default=0.1)
    mine.add_argument("--smoothing", type=float, default=0.0)

    scaling = commands.add_parser("scaling", help="naive vs factorised query-time sweep")
    scaling.add_argument("--max-rules", type=int, default=6)
    scaling.add_argument("--scale", type=float, default=0.2, help="database scale factor")

    serve = commands.add_parser(
        "serve", help="run the HTTP/JSON ranking gateway over a tenant fleet"
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=8080, help="0 picks a free port")
    serve.add_argument(
        "--rules", help="rule DSL file applied to every minted tenant (default: the paper's)"
    )
    serve.add_argument("--shards", type=int, default=8, help="tenant-registry shards")
    serve.add_argument("--max-sessions", type=int, default=4096, help="live-session LRU bound")
    serve.add_argument(
        "--max-concurrency", type=int, default=8, help="admission bound on in-flight ranks"
    )
    serve.add_argument(
        "--queue-timeout", type=float, default=0.25,
        help="seconds a request may wait for admission before a 503",
    )
    serve.add_argument(
        "--request-timeout", type=float, default=2.0,
        help="per-request deadline in seconds; 0 disables deadlines",
    )
    serve.add_argument(
        "--stale-max-age", type=float, default=300.0,
        help="oldest stale cache body servable in degraded mode (seconds)",
    )
    serve.add_argument(
        "--no-stale", action="store_true",
        help="never serve stale cache bodies on overload/error",
    )
    serve.add_argument(
        "--no-breaker", action="store_true",
        help="disable the per-tenant/global circuit breaker",
    )
    serve.add_argument(
        "--batch-max-size", type=int, default=0,
        help="cross-request micro-batching: max concurrent ranks fused into "
        "one kernel pass (0 or 1 disables batching)",
    )
    serve.add_argument(
        "--batch-max-wait-us", type=float, default=1000.0,
        help="microseconds a batch leader waits for mates before flushing",
    )
    serve.add_argument(
        "--batch-queue-limit", type=int, default=256,
        help="max requests waiting in open batches; overflow scores sequentially",
    )
    serve.add_argument(
        "--workers", type=int, default=1,
        help="worker processes; > 1 runs the pre-fork fleet on one shared port",
    )
    serve.add_argument(
        "--gateway", choices=("aio", "threads"), default="aio",
        help="HTTP front per worker: the event-loop gateway (default) or "
        "the thread-per-connection fallback",
    )
    serve.add_argument(
        "--snapshot", metavar="PATH",
        help="boot the world from this snapshot (see 'repro snapshot build'); "
        "a missing or stale snapshot falls back to a source rebuild",
    )
    serve.add_argument(
        "--journal", metavar="PATH",
        help="persist per-tenant context overlays to this append-only journal "
        "(sessions survive restarts)",
    )
    serve.add_argument(
        "--start-method", choices=("auto", "fork", "spawn"), default="auto",
        help="fleet worker start method (auto prefers fork; spawn needs "
        "SO_REUSEPORT and re-loads the world per worker from --snapshot)",
    )
    fault = serve.add_argument_group(
        "fault injection", "chaos knobs (defaults from REPRO_FAULT_* env vars)"
    )
    fault.add_argument(
        "--fault-rank-delay", type=float, default=None, metavar="SECONDS",
        help="inject this sleep before every rank",
    )
    fault.add_argument(
        "--fault-rank-error-rate", type=float, default=None, metavar="P",
        help="inject a rank failure with this probability (0..1)",
    )
    fault.add_argument(
        "--fault-kill-every", type=int, default=None, metavar="N",
        help="SIGKILL the serving worker after every N responses",
    )
    fault.add_argument(
        "--fault-worker-ttl", type=float, default=None, metavar="SECONDS",
        help="SIGKILL each worker this long after boot (crash-loop drill)",
    )
    fault.add_argument(
        "--fault-seed", type=int, default=None,
        help="fault-injection RNG seed",
    )
    fault.add_argument(
        "--fault-tenants", default=None, metavar="NAMES",
        help="comma-separated tenants the rank faults target (default: all)",
    )
    serve.add_argument(
        "--cache", choices=("memory", "none"), default="memory",
        help="response-cache backend (per worker)",
    )
    serve.add_argument(
        "--cache-entries", type=int, default=4096,
        help="response-cache LRU bound (per worker)",
    )
    serve.add_argument(
        "--cache-ttl", type=float, default=300.0,
        help="response-cache TTL in seconds; 0 disables expiry",
    )
    serve.add_argument("--verbose", action="store_true", help="log each HTTP request")

    snapshot = commands.add_parser(
        "snapshot", help="build or inspect a persistent world snapshot"
    )
    snapshot_commands = snapshot.add_subparsers(dest="snapshot_command", required=True)
    snapshot_build = snapshot_commands.add_parser(
        "build", help="serialise a world (plus derived caches) to a snapshot file"
    )
    snapshot_build.add_argument("output", help="snapshot file to write")
    snapshot_build.add_argument(
        "--world", choices=("tvtouch",), default="tvtouch",
        help="which built-in world to snapshot",
    )
    snapshot_build.add_argument(
        "--no-basis", action="store_true",
        help="omit the compiled documents-by-rules basis matrix",
    )
    snapshot_inspect = snapshot_commands.add_parser(
        "inspect", help="verify a snapshot and print its header and sections"
    )
    snapshot_inspect.add_argument("path", help="snapshot file to inspect")
    return parser


def _cmd_example(_args: argparse.Namespace) -> int:
    world = build_tvtouch()
    set_breakfast_weekend_context(world)
    engine = RankingEngine.from_world(world)
    response = engine.rank(RankRequest(documents=world.program_ids, explain=True))
    print(response.explanation)
    return 0


def _cmd_rank(args: argparse.Namespace) -> int:
    world = build_tvtouch()
    try:
        rules = load_rules(args.rules)
    except (OSError, ReproError) as exc:
        print(f"error: cannot load rule file: {exc}", file=sys.stderr)
        return 2
    engine = RankingEngine.from_world(world, rules=rules)
    try:
        engine.install_context(*args.context, tick="cli")
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if not engine.context_covered():
        print("warning: no rule applies in this context; all scores are 1", file=sys.stderr)
    response = engine.rank(RankRequest(documents=world.program_ids, explain=True))
    print(response.explanation)
    return 0


def _cmd_mine(args: argparse.Namespace) -> int:
    log = HistoryLog.load(args.history)
    config = MiningConfig(
        min_support=args.min_support,
        min_lift=args.min_lift,
        smoothing=args.smoothing,
    )
    mined = mine_rules(log, config)
    if not mined:
        print("no rules cleared the thresholds", file=sys.stderr)
        return 1
    for mined_rule in mined:
        print(f"{mined_rule.rule.to_dsl()}   # support {mined_rule.support}")
    return 0


def _cmd_scaling(args: argparse.Namespace) -> int:
    from repro.core import naive_scores_python
    from repro.core.problem import bind_problem

    counts = Section5Counts().scaled(args.scale)
    world = generate_test_database(seed=7, counts=counts)
    install_context_series(world, k=args.max_rules + 1, seed=11)
    table = TextTable(["rules", "naive (s)", "factorised (s)"])
    naive_times = []
    ks = list(range(1, args.max_rules + 1))
    for k in ks:
        repository = generate_rule_series(world, k, seed=13)
        problem = bind_problem(world.abox, world.tbox, world.user, repository, [], world.space)
        _scores, naive_seconds = timed(
            lambda: naive_scores_python(
                world.database, world.tbox, world.target, list(problem.bindings), world.space
            )
        )
        engine = RankingEngine.from_world(world, rules=repository)
        request = RankRequest(documents=world.programs)
        _response, factorised_seconds = timed(lambda: engine.rank(request))
        naive_times.append(naive_seconds)
        table.add_row([k, naive_seconds, factorised_seconds])
    print(table.render())
    if len(ks) >= 2:
        ratio = fit_growth(ks, naive_times).ratio
        print(f"naive growth per extra rule: x{ratio:.2f}")
    return 0


def _preload_world(snapshot_path: str | None):
    """The parent's world: snapshot-loaded when possible, else built.

    Returns ``(world, source, segment_name)`` — ``segment_name`` is the
    shared-memory segment spawned workers attach to for a zero-copy
    view of the basis matrix.
    """
    if not snapshot_path:
        return build_tvtouch(), "built", None
    from repro.store import load_or_build

    loaded = load_or_build(
        snapshot_path,
        build_tvtouch,
        on_fallback=lambda reason: print(
            f"repro serve: snapshot fallback ({reason}); rebuilding from source",
            file=sys.stderr,
            flush=True,
        ),
    )
    return loaded, loaded.source, loaded.segment_name


class _ServeFactory:
    """The per-worker service factory behind ``repro serve``.

    Module-level and built from a plain-primitive ``config`` dict so it
    pickles, which the ``spawn`` start method requires.  Fork workers
    (and the single-process path) receive the parent's pre-loaded
    ``world`` by reference — a respawned fork worker never rebuilds;
    spawn workers start with ``world=None`` and restore it themselves
    from ``config["snapshot"]``, attaching to the parent's shared
    matrix segment when one exists.
    """

    def __init__(self, config, world=None, world_source=None, rules=None):
        self.config = config
        self.world = world
        self.world_source = world_source
        self.rules = rules

    def _world(self):
        if self.world is not None:
            return self.world, self.world_source
        config = self.config
        if config.get("snapshot"):
            from repro.store import load_or_build, load_world

            segment = config.get("segment")
            if segment:
                try:
                    loaded = load_world(config["snapshot"], attach=segment)
                    return loaded, loaded.source
                except (ReproError, OSError):
                    pass  # segment died with the parent; load privately
            loaded = load_or_build(config["snapshot"], build_tvtouch)
            return loaded, loaded.source
        return build_tvtouch(), "built"

    def __call__(self, worker_info=None):
        from repro.cache import InMemoryCacheAdapter, NoCacheAdapter
        from repro.service import FaultInjector, RankingService, ServiceConfig
        from repro.tenants import TenantRegistry

        config = self.config
        world, source = self._world()
        rules = self.rules
        if rules is None and config.get("rules_path"):
            rules = load_rules(config["rules_path"])
        if config["cache"] == "none":
            cache = NoCacheAdapter()
        else:
            cache = InMemoryCacheAdapter(
                max_entries=config["cache_entries"], ttl=config["cache_ttl"] or None
            )
        registry = TenantRegistry(
            world,
            rules=rules,
            shards=config["shards"],
            max_sessions=config["max_sessions"],
            journal=config.get("journal"),
        )
        info = dict(worker_info or {})
        info["world_source"] = source
        return RankingService(
            registry,
            ServiceConfig(
                max_concurrency=config["max_concurrency"],
                queue_timeout=config["queue_timeout"],
                request_timeout=config["request_timeout"] or None,
                stale_max_age=config["stale_max_age"],
                serve_stale=config["serve_stale"],
                breaker_enabled=config["breaker_enabled"],
                batch_max_size=config.get("batch_max_size", 0),
                batch_max_wait_us=config.get("batch_max_wait_us", 1000.0),
                batch_queue_limit=config.get("batch_queue_limit", 256),
            ),
            cache=cache,
            worker_info=info,
            fault_injector=FaultInjector(**config["injector"]),
        )


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.service import FaultInjector
    from repro.service.fleet import serve_fleet, supports_fleet

    if args.gateway == "aio":
        from repro.service.aio import serve as run_gateway
    else:
        from repro.service.http import serve as run_gateway

    if args.workers < 1:
        print(f"error: --workers must be >= 1, got {args.workers}", file=sys.stderr)
        return 2
    # Built (or snapshot-loaded) pre-fork; fork workers share it
    # copy-on-write, spawn workers re-load it from the snapshot.
    world, world_source, segment_name = _preload_world(args.snapshot)
    rules = None
    if args.rules:
        try:
            rules = load_rules(args.rules)
        except (OSError, ReproError) as exc:
            print(f"error: cannot load rule file: {exc}", file=sys.stderr)
            return 2

    # CLI fault flags override the REPRO_FAULT_* environment defaults.
    env_faults = FaultInjector.from_env()
    try:
        injector_spec = dict(
            rank_delay=(
                args.fault_rank_delay
                if args.fault_rank_delay is not None
                else env_faults.rank_delay
            ),
            rank_error_rate=(
                args.fault_rank_error_rate
                if args.fault_rank_error_rate is not None
                else env_faults.rank_error_rate
            ),
            worker_kill_every=(
                args.fault_kill_every
                if args.fault_kill_every is not None
                else env_faults.worker_kill_every
            ),
            worker_ttl=(
                args.fault_worker_ttl
                if args.fault_worker_ttl is not None
                else env_faults.worker_ttl
            ),
            tenants=(
                frozenset(
                    part.strip()
                    for part in args.fault_tenants.split(",")
                    if part.strip()
                )
                or None
                if args.fault_tenants is not None
                else env_faults.tenants
            ),
            seed=args.fault_seed if args.fault_seed is not None else env_faults.seed,
        )
        FaultInjector(**injector_spec)  # validate in the parent, pre-fork
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    config = dict(
        cache=args.cache,
        cache_entries=args.cache_entries,
        cache_ttl=args.cache_ttl,
        shards=args.shards,
        max_sessions=args.max_sessions,
        max_concurrency=args.max_concurrency,
        queue_timeout=args.queue_timeout,
        request_timeout=args.request_timeout,
        stale_max_age=args.stale_max_age,
        serve_stale=not args.no_stale,
        breaker_enabled=not args.no_breaker,
        batch_max_size=args.batch_max_size,
        batch_max_wait_us=args.batch_max_wait_us,
        batch_queue_limit=args.batch_queue_limit,
        rules_path=args.rules,
        snapshot=args.snapshot,
        segment=segment_name,
        journal=args.journal,
        injector=injector_spec,
    )
    # Each fleet worker runs the factory in its own process: its own
    # registry, its own response cache — workers share no mutable state
    # (the frozen world and its matrix are the shared read-only part).
    make_service = _ServeFactory(
        config, world=world, world_source=world_source, rules=rules
    )

    settings = (
        f"gateway={args.gateway}, cache={args.cache}, shards={args.shards}, "
        f"max_sessions={args.max_sessions}, max_concurrency={args.max_concurrency}, "
        f"request_timeout={args.request_timeout or None}, world={world_source}"
    )

    if args.workers == 1:
        try:
            service = make_service({"index": 0, "workers": 1, "mode": "single"})
        except ReproError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2

        def announce(server) -> None:
            print(
                f"repro serve: listening on {server.url} ({settings})",
                flush=True,
            )
            print(
                f"  try: curl '{server.url}/rank?tenant=alice&context=Weekend"
                f"&context=Breakfast&top_k=3'",
                flush=True,
            )

        return run_gateway(
            service, args.host, args.port, verbose=args.verbose, ready=announce
        )

    try:
        # Validate cache/registry settings in the parent before forking
        # anything (a worker would only hit the error after the fork).
        make_service({"index": -1, "workers": args.workers, "mode": "preflight"})
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    def announce_fleet(supervisor) -> None:
        print(
            f"repro serve: listening on {supervisor.url} "
            f"(workers={args.workers}, mode={supervisor.mode}, "
            f"start_method={supervisor.start_method}, {settings})",
            flush=True,
        )
        for index, pid in enumerate(supervisor.worker_pids()):
            print(f"repro serve: fleet worker {index} pid {pid}", flush=True)
        print(
            f"  try: curl '{supervisor.url}/rank?tenant=alice&context=Weekend"
            f"&context=Breakfast&top_k=3'",
            flush=True,
        )

    start_method = None if args.start_method == "auto" else args.start_method
    resolved = start_method or ("fork" if supports_fleet("fork") else "spawn")
    if resolved == "spawn":
        # A spawned worker starts from a fresh interpreter: strip the
        # unpicklable by-reference world/rules so the factory crosses
        # the pickle boundary; the worker restores from the snapshot.
        factory = _ServeFactory(config)
    else:
        factory = make_service

    try:
        return serve_fleet(
            factory,
            args.workers,
            args.host,
            args.port,
            verbose=args.verbose,
            announce=announce_fleet,
            start_method=start_method,
            gateway=args.gateway,
        )
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


def _cmd_snapshot(args: argparse.Namespace) -> int:
    from repro.store import inspect_snapshot, write_world_snapshot

    if args.snapshot_command == "build":
        world = build_tvtouch()  # --world tvtouch is the only builder today
        try:
            digest = write_world_snapshot(
                args.output, world, include_basis=not args.no_basis
            )
        except (OSError, ReproError) as exc:
            print(f"error: cannot write snapshot: {exc}", file=sys.stderr)
            return 2
        info = inspect_snapshot(args.output)
        print(f"wrote {args.output} ({info.total_bytes} payload bytes)")
        print(f"  format version {info.version}, digest {digest}")
        for name, kind, length in info.sections:
            print(f"  section {name:<16} {kind:<5} {length} bytes")
        return 0

    try:
        info = inspect_snapshot(args.path)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    print(f"{info.path}: format version {info.version}, digest {info.digest}")
    meta = {key: value for key, value in info.meta.items() if not key.startswith("_")}
    for key in sorted(meta):
        print(f"  meta {key} = {meta[key]}")
    for name, kind, length in info.sections:
        print(f"  section {name:<16} {kind:<5} {length} bytes")
    print(f"  total payload {info.total_bytes} bytes")
    return 0


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    handlers = {
        "example": _cmd_example,
        "rank": _cmd_rank,
        "mine": _cmd_mine,
        "scaling": _cmd_scaling,
        "serve": _cmd_serve,
        "snapshot": _cmd_snapshot,
    }
    return handlers[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
