"""Exception hierarchy for the :mod:`repro` library.

Every exception raised intentionally by this library derives from
:class:`ReproError`, so callers can catch library failures with a single
``except`` clause while still being able to distinguish fine-grained
failure modes.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the :mod:`repro` library."""


class EventError(ReproError):
    """Base class for errors in the event-expression subsystem."""


class EventSpaceError(EventError):
    """Raised for invalid event registrations or mutex declarations."""


class UnknownEventError(EventError):
    """Raised when an event name is not registered in an event space."""


class ComplexityLimitError(ReproError):
    """Raised when an exact computation would exceed its complexity budget.

    The naive engines (world enumeration, DNF inclusion-exclusion) are
    exponential; this error signals that a request was refused rather
    than silently running forever.
    """


class ParseError(ReproError):
    """Raised when parsing a concept expression, rule DSL or SQL text fails.

    Attributes
    ----------
    text:
        The full input text being parsed.
    position:
        Character offset at which the failure was detected, if known.
    """

    def __init__(self, message: str, text: str = "", position: int | None = None):
        super().__init__(message)
        self.text = text
        self.position = position


class DLError(ReproError):
    """Base class for Description Logic errors."""


class TBoxError(DLError):
    """Raised for invalid TBox axioms (e.g. definitional cycles)."""


class ABoxError(DLError):
    """Raised for invalid ABox assertions."""


class StorageError(ReproError):
    """Base class for errors in the relational storage subsystem."""


class SchemaError(StorageError):
    """Raised when a schema is malformed or a row violates its schema."""


class UnknownTableError(StorageError):
    """Raised when a table or view name cannot be resolved."""


class QueryError(StorageError):
    """Raised when a relational-algebra or SQL query is invalid."""


class SnapshotError(StorageError):
    """Raised when a world snapshot cannot be read, verified or applied.

    Covers a truncated or corrupted container (magic/digest mismatch),
    an incompatible format version, and malformed section payloads.
    Loaders treat it as "rebuild from source", never "serve garbage".
    """


class ContextError(ReproError):
    """Raised for invalid context measurements or snapshots."""


class HistoryError(ReproError):
    """Raised for malformed history episodes or impossible estimates."""


class RuleError(ReproError):
    """Raised for invalid scored preference rules."""


class ScoringError(ReproError):
    """Raised when a scoring problem is ill-formed."""


class MiningError(ReproError):
    """Raised when preference mining is given unusable inputs."""


class EngineError(ReproError):
    """Base class for errors raised by the :class:`RankingEngine` facade."""


class EngineConfigError(EngineError):
    """Raised when an engine is built from an invalid configuration.

    Every :class:`~repro.engine.EngineBuilder` validation failure —
    missing knowledge base, no preference rules, unknown scoring method
    or relevance strategy, malformed config mapping — raises this, so
    misconfiguration is reported at build time rather than surfacing as
    an attribute error mid-request.
    """
