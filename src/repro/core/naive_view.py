"""The paper's naive view-based implementation — exponential on purpose.

Section 5 scores tuples through database views: for each combination of
document features (one per subset of the rule set) the view machinery
derives the event under which a tuple has *exactly* those features, and
the final score sums the feature-combination probabilities weighted by
the enumerated context combinations.  "Since for each new rule, both
the amount of possible combinations of context features and the amount
of possible combinations of tuple features [...] are doubled, this
leads to highly exponential query times."

This module reproduces that implementation faithfully on both storage
backends:

* :func:`naive_scores_python` — terms are relational-algebra trees
  (joins for present features, probabilistic differences for absent
  ones) evaluated by the pure-Python engine;
* :func:`naive_scores_sqlite` — terms are real SQL with ``ev_and`` /
  ``ev_not`` / ``ev_prob`` evaluated inside sqlite3.

Benchmark E3 measures their per-rule doubling against the factorised
scorer; equality of results with the factorised scorer (under feature
independence) is a tested invariant.
"""

from __future__ import annotations

from itertools import product as cartesian_product
from typing import Sequence

from repro.errors import ComplexityLimitError
from repro.events.probability import probability
from repro.dl.concepts import Concept
from repro.dl.tbox import TBox
from repro.events.space import EventSpace
from repro.storage.algebra import AlgebraNode, Difference, Join
from repro.storage.database import Database
from repro.storage.mapping import compile_concept
from repro.storage.sqlite_backend import SqliteBackend
from repro.core.problem import RuleBinding

__all__ = [
    "subset_coefficient",
    "naive_scores_python",
    "naive_scores_sqlite",
    "MAX_NAIVE_RULES",
]

#: Refuse the naive implementation beyond this many rules (2^n terms).
MAX_NAIVE_RULES = 16


def subset_coefficient(bindings: Sequence[RuleBinding], feature_subset: Sequence[bool]) -> float:
    """The context-side weight of one document-feature combination.

    Enumerates every context-feature combination (the naive
    implementation's second exponential factor) and weights the
    equation-(4) factors:

    ``c(S) = sum over Sg of prod_r P(g_r in Sg) * factor_r(r in Sg, r in S)``
    """
    n = len(bindings)
    total = 0.0
    sigmas = [binding.sigma for binding in bindings]
    p_context = [binding.context_probability for binding in bindings]
    for context_subset in cartesian_product((True, False), repeat=n):
        weight = 1.0
        for g, p in zip(context_subset, p_context):
            weight *= p if g else 1.0 - p
        if weight == 0.0:
            continue
        for sigma, g, f in zip(sigmas, context_subset, feature_subset):
            if g:
                weight *= sigma if f else 1.0 - sigma
        total += weight
    return total


def _check_rule_count(bindings: Sequence[RuleBinding]) -> None:
    if len(bindings) > MAX_NAIVE_RULES:
        raise ComplexityLimitError(
            f"naive view over {len(bindings)} rules needs 2^{len(bindings)} terms; "
            f"limit is {MAX_NAIVE_RULES}"
        )


def naive_scores_python(
    database: Database,
    tbox: TBox,
    target: Concept,
    bindings: Sequence[RuleBinding],
    space: EventSpace | None = None,
    engine: str = "shannon",
) -> dict[str, float]:
    """Score the target concept's members through exponential view terms.

    For every subset ``S`` of rules, builds the view
    ``target ⋈ (⋈_{r∈S} pref_r) − pref_r (r∉S)`` whose tuples carry the
    event "has exactly the features in S", evaluates it, converts events
    to probabilities, and accumulates ``c(S) * P``.
    """
    _check_rule_count(bindings)
    preference_views: list[AlgebraNode] = [
        compile_concept(binding.rule.preference, tbox, database) for binding in bindings
    ]
    base_view = compile_concept(target, tbox, database)

    scores: dict[str, float] = {}
    n = len(bindings)
    for feature_subset in cartesian_product((True, False), repeat=n):
        coefficient = subset_coefficient(bindings, feature_subset)
        term: AlgebraNode = base_view
        for present, view in zip(feature_subset, preference_views):
            if present:
                term = Join(term, view, on=(("id", "id"),))
            else:
                term = Difference(term, view)
        table = database.evaluate(term)
        if coefficient == 0.0:
            continue
        id_position = table.schema.index_of("id")
        event_position = table.schema.index_of("event")
        for row in table:
            p = probability(row[event_position], space, engine)
            if p:
                scores[row[id_position]] = scores.get(row[id_position], 0.0) + coefficient * p
    return {doc: min(1.0, max(0.0, value)) for doc, value in scores.items()}


def _minus_sql(backend: SqliteBackend, left_sql: str, right_sql: str) -> str:
    """SQL for the probabilistic difference of two ``(id, event)`` queries."""
    a, b, outer = backend._alias(), backend._alias(), backend._alias()
    inner = (
        f"SELECT {a}.id AS id, "
        f"CASE WHEN {b}.event IS NULL THEN {a}.event "
        f"ELSE ev_and({a}.event, ev_not({b}.event)) END AS event "
        f"FROM ({left_sql}) {a} LEFT JOIN ({right_sql}) {b} ON {a}.id = {b}.id"
    )
    return f"SELECT id, event FROM ({inner}) {outer} WHERE event <> 'F'"


def _and_sql(backend: SqliteBackend, left_sql: str, right_sql: str) -> str:
    """SQL for the event-conjoining join of two ``(id, event)`` queries."""
    a, b = backend._alias(), backend._alias()
    return (
        f"SELECT {a}.id AS id, ev_and({a}.event, {b}.event) AS event "
        f"FROM ({left_sql}) {a} JOIN ({right_sql}) {b} ON {a}.id = {b}.id"
    )


def naive_scores_sqlite(
    backend: SqliteBackend,
    tbox: TBox,
    target: Concept,
    bindings: Sequence[RuleBinding],
) -> dict[str, float]:
    """The naive implementation running inside sqlite3 (real SQL views).

    Same term structure as :func:`naive_scores_python`; event
    propagation and probability computation happen in SQL through the
    backend's registered functions.
    """
    _check_rule_count(bindings)
    # Install the concept queries as views first, then build every term
    # stepwise through materialised temp tables — one AND/MINUS step at
    # a time, exactly how the paper's view machinery evaluates, and
    # shallow enough for sqlite's parser at any rule count.
    created: list[str] = []

    def install(name: str, sql: str, materialise: bool) -> str:
        backend.execute(f"DROP TABLE IF EXISTS {name}")
        backend.execute(f"DROP VIEW IF EXISTS {name}")
        kind = "TABLE" if materialise else "VIEW"
        backend.execute(f"CREATE TEMP {kind} {name} AS {sql}")
        created.append(name)
        return name

    def drop(name: str) -> None:
        backend.execute(f"DROP TABLE IF EXISTS {name}")
        backend.execute(f"DROP VIEW IF EXISTS {name}")

    base_view = install("naive_base", backend.concept_sql(target, tbox), materialise=True)
    preference_views = [
        install(
            f"naive_pref_{index}",
            backend.concept_sql(binding.rule.preference, tbox),
            materialise=True,
        )
        for index, binding in enumerate(bindings)
    ]

    def view_sql(name: str) -> str:
        return f"SELECT id, event FROM {name}"

    try:
        scores: dict[str, float] = {}
        n = len(bindings)
        for subset_index, feature_subset in enumerate(cartesian_product((True, False), repeat=n)):
            coefficient = subset_coefficient(bindings, feature_subset)
            if coefficient == 0.0:
                continue
            current = base_view
            steps: list[str] = []
            for step, (present, pref_view) in enumerate(zip(feature_subset, preference_views)):
                combiner = _and_sql if present else _minus_sql
                step_name = f"naive_term_{subset_index}_{step}"
                install(
                    step_name,
                    combiner(backend, view_sql(current), view_sql(pref_view)),
                    materialise=True,
                )
                steps.append(step_name)
                current = step_name
            for doc, p in backend.query_probabilities(view_sql(current)).items():
                if p:
                    scores[doc] = scores.get(doc, 0.0) + coefficient * p
            for step_name in steps:
                drop(step_name)
        return {doc: min(1.0, max(0.0, value)) for doc, value in scores.items()}
    finally:
        for name in created:
            drop(name)
