"""Pruning: the Section 6 performance levers.

"There are possible ways to address this challenge, if we can prune the
amount of applicable rules and candidate documents in early stages."

Two prunes are implemented, both measured by ablation benchmark E4:

* **rule pruning** — drop rules whose context probability does not
  exceed a threshold.  At threshold 0 this is *lossless*: a rule with
  an impossible context contributes the constant factor 1 to eq. (4).
  Positive thresholds trade exactness for speed (the dropped factor is
  close to, but not exactly, 1).
* **document pruning** — candidates that satisfy *no* rule's preference
  (all preference events impossible) share one "all-miss" score,
  ``prod over rules of (1 - P(g_r) * sigma_r)``, computed once instead
  of per document.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.problem import DocumentBinding, RuleBinding, ScoringProblem

__all__ = ["PruneReport", "prune_rules", "split_trivial_documents", "all_miss_score"]


@dataclass(frozen=True)
class PruneReport:
    """What pruning removed (for explanations and the ablation bench)."""

    kept_rules: int
    dropped_rules: int
    trivial_documents: int
    scored_documents: int


def prune_rules(problem: ScoringProblem, threshold: float = 0.0) -> ScoringProblem:
    """Drop rule bindings whose context probability is <= ``threshold``.

    Documents' preference-event tuples are narrowed consistently.
    """
    keep = [
        index
        for index, binding in enumerate(problem.bindings)
        if binding.context_probability > threshold
    ]
    if len(keep) == len(problem.bindings):
        return problem
    bindings = tuple(problem.bindings[index] for index in keep)
    documents = tuple(
        DocumentBinding(
            document.document,
            tuple(document.preference_events[index] for index in keep),
            tuple(document.preference_probabilities[index] for index in keep),
        )
        for document in problem.documents
    )
    return ScoringProblem(bindings, documents, problem.space)


def all_miss_score(bindings: tuple[RuleBinding, ...] | list[RuleBinding]) -> float:
    """Score shared by every document that satisfies no preference.

    With ``P(f_r) = 0`` for all rules, the factorised score reduces to
    ``prod (1 - P(g_r) + P(g_r) * (1 - sigma_r)) = prod (1 - P(g_r) * sigma_r)``.
    """
    score = 1.0
    for binding in bindings:
        score *= 1.0 - binding.context_probability * binding.sigma
    return score


def split_trivial_documents(
    problem: ScoringProblem,
) -> tuple[list[DocumentBinding], list[DocumentBinding]]:
    """Partition candidates into (needs scoring, trivially all-miss)."""
    interesting: list[DocumentBinding] = []
    trivial: list[DocumentBinding] = []
    for document in problem.documents:
        if any(not event.is_impossible for event in document.preference_events):
            interesting.append(document)
        else:
            trivial.append(document)
    return interesting, trivial
