"""Scoring problems: rules bound to a concrete situation and candidates.

Following Section 4.1 — "we consider only those features important for
relevance that are mentioned in the preference rules" — the feature
space of a scoring problem is exactly the rule set:

* per rule ``r``, the *context feature* is the event under which the
  situated user satisfies ``r.context`` (one event for the whole
  problem);
* per rule ``r`` and candidate document ``d``, the *document feature*
  is the event under which ``d`` satisfies ``r.preference``.

:func:`bind_problem` computes all of these through the probabilistic
instance checker and packages them for the scorers in
:mod:`repro.core.scoring`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Sequence

from repro.errors import ScoringError
from repro.events.expr import EventExpr
from repro.events.probability import probability
from repro.events.space import EventSpace
from repro.dl.abox import ABox
from repro.dl.instances import membership_event
from repro.dl.tbox import TBox
from repro.dl.vocabulary import Individual
from repro.rules.repository import RuleRepository
from repro.rules.rule import PreferenceRule

__all__ = [
    "RuleBinding",
    "DocumentBinding",
    "ScoringProblem",
    "bind_problem",
    "bind_rules",
    "bind_documents",
]


@dataclass(frozen=True)
class RuleBinding:
    """One rule with its context event in the current situation."""

    rule: PreferenceRule
    context_event: EventExpr
    context_probability: float

    @property
    def sigma(self) -> float:
        return self.rule.sigma


@dataclass(frozen=True)
class DocumentBinding:
    """One candidate with its per-rule preference events.

    ``preference_events[i]`` / ``preference_probabilities[i]`` line up
    with the problem's ``bindings[i]``.
    """

    document: Individual
    preference_events: tuple[EventExpr, ...]
    preference_probabilities: tuple[float, ...]


@dataclass
class ScoringProblem:
    """Everything the scorers need for one ranking round.

    Attributes
    ----------
    bindings:
        The rules (with context events), in repository order.
    documents:
        Per-candidate bindings, in candidate order.
    space:
        The event space (mutex groups) behind all events.
    """

    bindings: tuple[RuleBinding, ...]
    documents: tuple[DocumentBinding, ...] = ()
    space: EventSpace | None = None

    def __post_init__(self) -> None:
        width = len(self.bindings)
        for document in self.documents:
            if len(document.preference_events) != width:
                raise ScoringError(
                    f"document {document.document} has {len(document.preference_events)} "
                    f"preference events for {width} rules"
                )

    @property
    def rule_count(self) -> int:
        return len(self.bindings)

    @property
    def covered(self) -> bool:
        """Is any rule's context possible?  (Section 4.1's coverage check.)"""
        return any(not binding.context_event.is_impossible for binding in self.bindings)

    def document(self, individual: Individual) -> DocumentBinding:
        for binding in self.documents:
            if binding.document == individual:
                return binding
        raise ScoringError(f"document {individual} is not part of this problem")


def bind_rules(
    abox: ABox,
    tbox: TBox,
    user: Individual,
    rules: Sequence[PreferenceRule],
    space: EventSpace | None = None,
    engine: str = "shannon",
) -> tuple[RuleBinding, ...]:
    """The context half of a binding: each rule's context event for ``user``.

    This is the cheap half — one membership event per rule — and the
    only half that changes when the situation develops; the incremental
    rescoring path (:meth:`repro.core.kernel.ScoringKernel.with_context`)
    recomputes just this vector on an unchanged candidate matrix.
    """
    bindings = []
    for rule in rules:
        event = membership_event(abox, tbox, user, rule.context)
        bindings.append(RuleBinding(rule, event, probability(event, space, engine)))
    return tuple(bindings)


def bind_documents(
    abox: ABox,
    tbox: TBox,
    rules: Sequence[PreferenceRule],
    documents: Iterable[Individual | str],
    space: EventSpace | None = None,
    engine: str = "shannon",
) -> tuple[DocumentBinding, ...]:
    """The candidate half: per document, every rule's preference event.

    The documents x rules sweep dominates binding cost; its result is
    what the scoring kernel compiles into the ``P(f)`` matrix.
    """
    document_bindings = []
    for document in documents:
        individual = Individual(document) if isinstance(document, str) else document
        events = tuple(
            membership_event(abox, tbox, individual, rule.preference) for rule in rules
        )
        probabilities = tuple(probability(event, space, engine) for event in events)
        document_bindings.append(DocumentBinding(individual, events, probabilities))
    return tuple(document_bindings)


def bind_problem(
    abox: ABox,
    tbox: TBox,
    user: Individual,
    repository: RuleRepository | Sequence[PreferenceRule],
    documents: Iterable[Individual | str],
    space: EventSpace | None = None,
    engine: str = "shannon",
) -> ScoringProblem:
    """Bind a repository to the current context and candidate documents.

    Examples
    --------
    >>> # See repro.workloads.tvtouch for a fully worked binding.
    """
    rules = list(repository)
    bindings = bind_rules(abox, tbox, user, rules, space, engine)
    document_bindings = bind_documents(abox, tbox, rules, documents, space, engine)
    return ScoringProblem(bindings, document_bindings, space)
