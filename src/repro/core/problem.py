"""Scoring problems: rules bound to a concrete situation and candidates.

Following Section 4.1 — "we consider only those features important for
relevance that are mentioned in the preference rules" — the feature
space of a scoring problem is exactly the rule set:

* per rule ``r``, the *context feature* is the event under which the
  situated user satisfies ``r.context`` (one event for the whole
  problem);
* per rule ``r`` and candidate document ``d``, the *document feature*
  is the event under which ``d`` satisfies ``r.preference``.

:func:`bind_problem` computes all of these through the *compiled*
probabilistic instance checker (:mod:`repro.reason`): one reasoner
session evaluates each concept across all candidates set-at-a-time, so
role-successor walks, filler membership events and repeated
probabilities are shared across the documents x rules sweep — and,
through the shared KB registry, across requests, engines and group
members over the same world.  Pass an explicit ``kb`` to control
sharing; the uncached reference path remains
:func:`repro.dl.instances.membership_event`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Sequence

from repro.errors import ScoringError
from repro.events.expr import EventExpr
from repro.events.space import EventSpace
from repro.dl.abox import ABox
from repro.dl.tbox import TBox
from repro.dl.vocabulary import Individual
from repro.reason import CompiledKB, compiled_kb
from repro.rules.repository import RuleRepository
from repro.rules.rule import PreferenceRule

__all__ = [
    "RuleBinding",
    "DocumentBinding",
    "ScoringProblem",
    "bind_problem",
    "bind_rules",
    "bind_documents",
]


@dataclass(frozen=True)
class RuleBinding:
    """One rule with its context event in the current situation."""

    rule: PreferenceRule
    context_event: EventExpr
    context_probability: float

    @property
    def sigma(self) -> float:
        return self.rule.sigma


@dataclass(frozen=True)
class DocumentBinding:
    """One candidate with its per-rule preference events.

    ``preference_events[i]`` / ``preference_probabilities[i]`` line up
    with the problem's ``bindings[i]``.
    """

    document: Individual
    preference_events: tuple[EventExpr, ...]
    preference_probabilities: tuple[float, ...]


@dataclass
class ScoringProblem:
    """Everything the scorers need for one ranking round.

    Attributes
    ----------
    bindings:
        The rules (with context events), in repository order.
    documents:
        Per-candidate bindings, in candidate order.
    space:
        The event space (mutex groups) behind all events.
    """

    bindings: tuple[RuleBinding, ...]
    documents: tuple[DocumentBinding, ...] = ()
    space: EventSpace | None = None

    def __post_init__(self) -> None:
        width = len(self.bindings)
        for document in self.documents:
            if len(document.preference_events) != width:
                raise ScoringError(
                    f"document {document.document} has {len(document.preference_events)} "
                    f"preference events for {width} rules"
                )

    @property
    def rule_count(self) -> int:
        return len(self.bindings)

    @property
    def covered(self) -> bool:
        """Is any rule's context possible?  (Section 4.1's coverage check.)"""
        return any(not binding.context_event.is_impossible for binding in self.bindings)

    def document(self, individual: Individual) -> DocumentBinding:
        for binding in self.documents:
            if binding.document == individual:
                return binding
        raise ScoringError(f"document {individual} is not part of this problem")


def bind_rules(
    abox: ABox,
    tbox: TBox,
    user: Individual,
    rules: Sequence[PreferenceRule],
    space: EventSpace | None = None,
    engine: str = "shannon",
    kb: CompiledKB | None = None,
) -> tuple[RuleBinding, ...]:
    """The context half of a binding: each rule's context event for ``user``.

    This is the cheap half — one membership event per rule — and the
    only half that changes when the situation develops; the incremental
    rescoring path (:meth:`repro.core.kernel.ScoringKernel.with_context`)
    recomputes just this vector on an unchanged candidate matrix.
    """
    user = Individual(user) if isinstance(user, str) else user
    session = (kb if kb is not None else compiled_kb(abox, tbox, space)).session()
    bindings = []
    for rule in rules:
        event = session.event(user, session.expand_concept(rule.context))
        bindings.append(RuleBinding(rule, event, session.probability(event, engine)))
    return tuple(bindings)


def bind_documents(
    abox: ABox,
    tbox: TBox,
    rules: Sequence[PreferenceRule],
    documents: Iterable[Individual | str],
    space: EventSpace | None = None,
    engine: str = "shannon",
    kb: CompiledKB | None = None,
) -> tuple[DocumentBinding, ...]:
    """The candidate half: per document, every rule's preference event.

    The documents x rules sweep dominates binding cost; its result is
    what the scoring kernel compiles into the ``P(f)`` matrix.  The
    sweep is set-at-a-time: each preference concept is expanded once
    and evaluated across all candidates inside one reasoner session, so
    successor walks and shared filler events are paid once, not once
    per document.
    """
    session = (kb if kb is not None else compiled_kb(abox, tbox, space)).session()
    expanded = [session.expand_concept(rule.preference) for rule in rules]
    document_bindings = []
    for document in documents:
        individual = Individual(document) if isinstance(document, str) else document
        events = tuple(session.event(individual, concept) for concept in expanded)
        probabilities = tuple(session.probability(event, engine) for event in events)
        document_bindings.append(DocumentBinding(individual, events, probabilities))
    return tuple(document_bindings)


def bind_problem(
    abox: ABox,
    tbox: TBox,
    user: Individual,
    repository: RuleRepository | Sequence[PreferenceRule],
    documents: Iterable[Individual | str],
    space: EventSpace | None = None,
    engine: str = "shannon",
    kb: CompiledKB | None = None,
) -> ScoringProblem:
    """Bind a repository to the current context and candidate documents.

    Examples
    --------
    >>> # See repro.workloads.tvtouch for a fully worked binding.
    """
    rules = list(repository)
    if kb is None:
        kb = compiled_kb(abox, tbox, space)
    bindings = bind_rules(abox, tbox, user, rules, space, engine, kb)
    document_bindings = bind_documents(abox, tbox, rules, documents, space, engine, kb)
    return ScoringProblem(bindings, document_bindings, space)
