"""The compiled batch-scoring kernel: one-pass vectorised ranking.

Section 6 names scoring cost as the deployment bottleneck; the
per-document path (:func:`repro.core.scoring.score_document`) re-walks
dataclasses and rebuilds per-rule breakdowns for every candidate.  The
kernel compiles a bound :class:`~repro.core.problem.ScoringProblem`
once into flat numeric arrays:

* per rule: ``sigma`` and the context probability ``P(g)``, folded into
  the factor coefficients ``a = (1-P(g)) + P(g)(1-sigma)`` and
  ``b = P(g)(2 sigma - 1)`` (each rule's eq.(4) factor is ``a + b P(f)``,
  linear in the document's preference probability);
* per document x rule: the ``P(f)`` matrix, plus a possibility bitmask
  for Section 6 document pruning.

Scoring the whole candidate set is then a single row-wise product —
numpy when importable, the :mod:`repro.perf.flatops` loops otherwise —
and per-rule :class:`~repro.core.scoring.RuleContribution` breakdowns
are **lazy**: materialised only when an explanation actually reads
them.

On top of the compiled form:

* :meth:`ScoringKernel.rank_top_k` — a heap-based top-k path using the
  Section 6 upper bound (each rule's factor is at most
  ``(1-P(g)) + P(g) max(sigma, 1-sigma)``, independent of the
  document) to abandon candidates that cannot enter the current top k;
* :meth:`ScoringKernel.with_context` — incremental rescoring: when only
  the context changed, rebuild the per-rule coefficient vectors on the
  *same* compiled ``P(f)`` matrix instead of re-binding every
  document (wired into the engine through
  :mod:`repro.engine.basis`).

The three reference scorers in :mod:`repro.core.scoring` remain the
correctness oracle; kernel-vs-reference agreement is property-tested.
"""

from __future__ import annotations

import heapq
import sys
from collections import abc
from dataclasses import dataclass
from typing import Iterator, Optional, Sequence

from repro.errors import ScoringError
from repro.core.problem import RuleBinding, ScoringProblem
from repro.core.pruning import all_miss_score
from repro.core.scoring import DocumentScore, RuleContribution
from repro.perf.backend import resolve_backend
from repro.perf.flatops import TOPK_PRUNE_SLACK, row_scores, topk_survivors

__all__ = [
    "CompiledCandidates",
    "LazyContributions",
    "ScoringKernel",
    "compile_candidates",
]

#: Rows per block on the numpy top-k path (prune checks run per block,
#: and so do the serving layer's cooperative deadline checks).
TOPK_BLOCK = 512


def _active_deadline():
    """The serving layer's per-request deadline, when one is active.

    Resolved through ``sys.modules`` so the core never imports the
    service layer (no import cycle, no import cost): if
    ``repro.service.resilience`` was never loaded there cannot be a
    deadline, and the probe is one dict lookup.  Returns an object
    with a ``check()`` raising the service's ``DeadlineExceeded``, or
    ``None``.
    """
    resilience = sys.modules.get("repro.service.resilience")
    if resilience is None:
        return None
    return resilience.current_deadline()


@dataclass(frozen=True, eq=False)
class CompiledCandidates:
    """The context-independent half of a compiled problem.

    ``matrix`` holds the documents x rules ``P(f)`` probabilities —
    a float64 ndarray on the numpy backend, a row-major ``list`` on the
    fallback.  ``possible_bits[d]`` has bit ``r`` set when document
    ``d``'s preference event for rule ``r`` is not impossible (the
    Section 6 document-pruning test).  This half is what incremental
    rescoring reuses across context changes.
    """

    names: tuple[str, ...]
    rule_count: int
    backend: str
    matrix: object
    possible_bits: tuple[int, ...]

    @property
    def document_count(self) -> int:
        return len(self.names)


def compile_candidates(
    problem: ScoringProblem, backend: Optional[str] = None
) -> CompiledCandidates:
    """Flatten a bound problem's documents into the kernel's arrays."""
    np = resolve_backend(backend)
    names = tuple(binding.document.name for binding in problem.documents)
    rule_count = problem.rule_count
    possible_bits = tuple(
        sum(
            1 << index
            for index, event in enumerate(binding.preference_events)
            if not event.is_impossible
        )
        for binding in problem.documents
    )
    if np is not None:
        matrix = np.empty((len(names), rule_count), dtype=np.float64)
        for row, binding in enumerate(problem.documents):
            matrix[row, :] = binding.preference_probabilities
        matrix.setflags(write=False)
        return CompiledCandidates(names, rule_count, "numpy", matrix, possible_bits)
    flat: list[float] = []
    for binding in problem.documents:
        flat.extend(binding.preference_probabilities)
    return CompiledCandidates(names, rule_count, "python", flat, possible_bits)


class LazyContributions(abc.Sequence):
    """A document's per-rule breakdown, materialised on first access.

    Behaves like the tuple of :class:`RuleContribution` the reference
    :func:`~repro.core.scoring.score_document` builds eagerly, but the
    tuple only exists once an explanation (or a test) reads it — the
    batch-scoring hot path never pays for it.
    """

    __slots__ = ("_kernel", "_row", "_items")

    def __init__(self, kernel: "ScoringKernel", row: int):
        self._kernel = kernel
        self._row = row
        self._items: tuple[RuleContribution, ...] | None = None

    def _materialised(self) -> tuple[RuleContribution, ...]:
        if self._items is None:
            self._items = self._kernel.contributions_for(self._row)
        return self._items

    def __len__(self) -> int:
        return len(self._kernel.kept_rules)

    def __getitem__(self, index):
        return self._materialised()[index]

    def __iter__(self) -> Iterator[RuleContribution]:
        return iter(self._materialised())

    def __bool__(self) -> bool:
        return bool(self._kernel.kept_rules)

    def __eq__(self, other) -> bool:
        if isinstance(other, LazyContributions):
            return self._materialised() == other._materialised()
        if isinstance(other, (tuple, list)):
            return self._materialised() == tuple(other)
        return NotImplemented

    def __hash__(self) -> int:
        return hash(self._materialised())

    def __repr__(self) -> str:
        if self._items is None:
            return f"LazyContributions(<{len(self)} rules, unmaterialised>)"
        return repr(self._items)


class ScoringKernel:
    """A compiled scoring problem, ready for one-pass batch evaluation.

    Immutable: the candidate matrix and the per-rule coefficient
    vectors are fixed at construction, so cached
    :class:`DocumentScore` objects may lazily read contributions from
    the kernel at any later time.  A context change produces a *new*
    kernel via :meth:`with_context`, sharing the compiled matrix.
    """

    def __init__(
        self,
        candidates: CompiledCandidates,
        bindings: Sequence[RuleBinding],
        rule_threshold: float = 0.0,
    ):
        if len(bindings) != candidates.rule_count:
            raise ScoringError(
                f"kernel compiled for {candidates.rule_count} rules, "
                f"got {len(bindings)} context bindings"
            )
        self.candidates = candidates
        self.bindings = tuple(bindings)
        self.rule_threshold = rule_threshold
        self._np = resolve_backend(candidates.backend)

        keep = [
            index
            for index, binding in enumerate(self.bindings)
            if binding.context_probability > rule_threshold
        ]
        self._keep = tuple(keep)
        self._kept_bits = sum(1 << index for index in keep)
        coeffs = []
        for index in keep:
            binding = self.bindings[index]
            p_g = binding.context_probability
            sigma = binding.sigma
            a = (1.0 - p_g) + p_g * (1.0 - sigma)
            b = p_g * (2.0 * sigma - 1.0)
            coeffs.append((index, a, b))
        self._coeffs = tuple(coeffs)
        # Section 6 upper bound: a rule's factor never exceeds
        # (1-P(g)) + P(g)*max(sigma, 1-sigma) = max(a, a+b).
        bounds = [max(a, a + b) for _index, a, b in coeffs]
        suffix = [1.0] * (len(coeffs) + 1)
        for j in range(len(coeffs) - 1, -1, -1):
            suffix[j] = suffix[j + 1] * bounds[j]
        self._suffix_bounds = suffix
        self._all_miss = all_miss_score([self.bindings[i] for i in keep])
        if self._np is not None:
            np = self._np
            self._keep_idx = np.array(keep, dtype=np.intp)
            self._a = np.array([a for _i, a, _b in coeffs], dtype=np.float64)
            self._b = np.array([b for _i, _a, b in coeffs], dtype=np.float64)

    # -- construction ------------------------------------------------------
    @classmethod
    def compile(
        cls,
        problem: ScoringProblem,
        rule_threshold: float = 0.0,
        backend: Optional[str] = None,
    ) -> "ScoringKernel":
        """Compile a bound problem (threshold pruning applied as a mask)."""
        return cls(compile_candidates(problem, backend), problem.bindings, rule_threshold)

    def with_context(self, bindings: Sequence[RuleBinding]) -> "ScoringKernel":
        """The incremental path: same ``P(f)`` matrix, fresh context.

        ``bindings`` must carry the same rules in the same order (the
        engine guarantees this through its rule fingerprint).
        """
        if len(bindings) != len(self.bindings):
            raise ScoringError(
                f"context rebind changed the rule count "
                f"({len(self.bindings)} -> {len(bindings)})"
            )
        for old, new in zip(self.bindings, bindings):
            if old.rule.rule_id != new.rule.rule_id:
                raise ScoringError(
                    f"context rebind changed the rule set "
                    f"({old.rule.rule_id!r} -> {new.rule.rule_id!r})"
                )
        return ScoringKernel(self.candidates, bindings, self.rule_threshold)

    # -- introspection -----------------------------------------------------
    @property
    def names(self) -> tuple[str, ...]:
        return self.candidates.names

    @property
    def document_count(self) -> int:
        return self.candidates.document_count

    @property
    def backend(self) -> str:
        return self.candidates.backend

    @property
    def kept_rules(self) -> tuple[int, ...]:
        """Indices of rules surviving the context-probability threshold."""
        return self._keep

    @property
    def dropped_rule_count(self) -> int:
        return len(self.bindings) - len(self._keep)

    @property
    def all_miss(self) -> float:
        """The shared score of documents matching no kept preference."""
        return self._all_miss

    def trivial_rows(self) -> list[int]:
        """Rows whose preference events all miss every kept rule."""
        kept_bits = self._kept_bits
        return [
            row
            for row, bits in enumerate(self.candidates.possible_bits)
            if bits & kept_bits == 0
        ]

    # -- batch scoring -----------------------------------------------------
    def scores(self, prune_documents: bool = True) -> list[float]:
        """Every document's eq.(4) score, in candidate order."""
        deadline = _active_deadline()
        if deadline is not None:
            deadline.check()
        if self._np is not None:
            np = self._np
            sub = self.candidates.matrix[:, self._keep_idx]
            factors = self._a + self._b * sub
            values = factors.prod(axis=1)
            np.clip(values, 0.0, 1.0, out=values)
            values = values.tolist()
        else:
            values = row_scores(
                self.candidates.matrix,
                self.document_count,
                self.candidates.rule_count,
                self._coeffs,
            )
        if prune_documents:
            shared = self._all_miss
            for row in self.trivial_rows():
                values[row] = shared
        return values

    def score_documents(
        self, prune_documents: bool = True, method: str = "factorised"
    ) -> list[DocumentScore]:
        """:class:`DocumentScore` per candidate, breakdowns lazy."""
        values = self.scores(prune_documents)
        trivial = set(self.trivial_rows()) if prune_documents else frozenset()
        results = []
        for row, (name, value) in enumerate(zip(self.names, values)):
            contributions = () if row in trivial else LazyContributions(self, row)
            results.append(DocumentScore(name, value, contributions, method))
        return results

    def contributions_for(self, row: int) -> tuple[RuleContribution, ...]:
        """Materialise one document's per-rule breakdown (kept rules)."""
        matrix = self.candidates.matrix
        if self._np is not None:
            row_values = matrix[row]
        else:
            base = row * self.candidates.rule_count
            row_values = matrix[base : base + self.candidates.rule_count]
        contributions = []
        for index in self._keep:
            binding = self.bindings[index]
            p_f = float(row_values[index])
            p_g = binding.context_probability
            sigma = binding.sigma
            inner = p_f * sigma + (1.0 - p_f) * (1.0 - sigma)
            contributions.append(
                RuleContribution(
                    rule_id=binding.rule.rule_id,
                    sigma=sigma,
                    context_probability=p_g,
                    preference_probability=p_f,
                    factor=(1.0 - p_g) + p_g * inner,
                )
            )
        return tuple(contributions)

    # -- top-k -------------------------------------------------------------
    def rank_top_k(
        self, k: int, prune_documents: bool = True, method: str = "factorised"
    ) -> list[DocumentScore]:
        """The best ``k`` documents (score desc, ties by name asc).

        Candidates whose Section 6 upper bound falls below the current
        k-th best score (by more than a rounding-safe slack, so exact
        ties survive for name tie-breaking) are abandoned mid-product;
        the result is exactly the first ``k`` entries of the full
        ranking.
        """
        if k < 1:
            raise ScoringError(f"top-k needs a positive k, got {k!r}")
        total = self.document_count
        if k >= total or not self._coeffs:
            ranked = sorted(
                self.score_documents(prune_documents, method),
                key=lambda score: (-score.value, score.document),
            )
            return ranked[:k]

        trivial = set(self.trivial_rows()) if prune_documents else frozenset()
        active = [row for row in range(total) if row not in trivial]
        shared = self._all_miss
        seeds = [shared] * min(len(trivial), k)
        if self._np is not None:
            survivors = self._topk_numpy(active, k, seeds)
        else:
            deadline = _active_deadline()
            if deadline is None:
                survivors = topk_survivors(
                    self.candidates.matrix,
                    self.candidates.rule_count,
                    self._coeffs,
                    self._suffix_bounds,
                    active,
                    k,
                    seeds,
                )
            else:
                # Cooperative cancellation: run the scan in blocks,
                # checking the deadline between them and carrying the
                # top-k value heap forward as the next block's seeds —
                # the survivor set stays a superset of the true top k,
                # so the final sort+slice below is still exact.
                survivors = []
                heap = list(seeds)
                heapq.heapify(heap)
                for start in range(0, len(active), TOPK_BLOCK):
                    deadline.check()
                    found = topk_survivors(
                        self.candidates.matrix,
                        self.candidates.rule_count,
                        self._coeffs,
                        self._suffix_bounds,
                        active[start : start + TOPK_BLOCK],
                        k,
                        tuple(heap),
                    )
                    for row, value in found:
                        survivors.append((row, value))
                        heapq.heappush(heap, value)
                        if len(heap) > k:
                            heapq.heappop(heap)
        pool = [(row, value) for row, value in survivors]
        pool.extend((row, shared) for row in trivial)
        pool.sort(key=lambda entry: (-entry[1], self.names[entry[0]]))
        results = []
        for row, value in pool[:k]:
            contributions = () if row in trivial else LazyContributions(self, row)
            results.append(DocumentScore(self.names[row], value, contributions, method))
        return results

    def _topk_numpy(
        self, rows: list[int], k: int, seeds: list[float]
    ) -> list[tuple[int, float]]:
        """Blocked vectorised top-k with the suffix-bound prune."""
        np = self._np
        deadline = _active_deadline()
        heap: list[float] = list(seeds)
        heapq.heapify(heap)
        suffix = self._suffix_bounds
        a, b = self._a, self._b
        survivors: list[tuple[int, float]] = []
        row_array = np.array(rows, dtype=np.intp)
        for start in range(0, len(row_array), TOPK_BLOCK):
            if deadline is not None:
                deadline.check()
            block = row_array[start : start + TOPK_BLOCK]
            sub = self.candidates.matrix[np.ix_(block, self._keep_idx)]
            prefix = np.ones(len(block), dtype=np.float64)
            alive = np.arange(len(block))
            for j in range(len(self._coeffs)):
                if len(heap) == k:
                    # Same rounding-safe slack as flatops.topk_survivors:
                    # exact ties must survive for name tie-breaking.
                    threshold = heap[0] * (1.0 - TOPK_PRUNE_SLACK)
                    still = prefix[alive] * suffix[j] >= threshold
                    alive = alive[still]
                    if alive.size == 0:
                        break
                prefix[alive] *= a[j] + b[j] * sub[alive, j]
            for position in alive.tolist():
                value = min(1.0, max(0.0, float(prefix[position])))
                survivors.append((int(block[position]), value))
                heapq.heappush(heap, value)
                if len(heap) > k:
                    heapq.heappop(heap)
        return survivors

    def __repr__(self) -> str:
        return (
            f"ScoringKernel({self.document_count} documents x "
            f"{len(self.bindings)} rules, kept={len(self._keep)}, "
            f"backend={self.backend!r})"
        )
