"""The compiled batch-scoring kernel: one-pass vectorised ranking.

Section 6 names scoring cost as the deployment bottleneck; the
per-document path (:func:`repro.core.scoring.score_document`) re-walks
dataclasses and rebuilds per-rule breakdowns for every candidate.  The
kernel compiles a bound :class:`~repro.core.problem.ScoringProblem`
once into flat numeric arrays:

* per rule: ``sigma`` and the context probability ``P(g)``, folded into
  the factor coefficients ``a = (1-P(g)) + P(g)(1-sigma)`` and
  ``b = P(g)(2 sigma - 1)`` (each rule's eq.(4) factor is ``a + b P(f)``,
  linear in the document's preference probability);
* per document x rule: the ``P(f)`` matrix, plus a possibility bitmask
  for Section 6 document pruning.

Scoring the whole candidate set is then a single row-wise product —
numpy when importable, the :mod:`repro.perf.flatops` loops otherwise —
and per-rule :class:`~repro.core.scoring.RuleContribution` breakdowns
are **lazy**: materialised only when an explanation actually reads
them.

On top of the compiled form:

* :meth:`ScoringKernel.rank_top_k` — a heap-based top-k path using the
  Section 6 upper bound (each rule's factor is at most
  ``(1-P(g)) + P(g) max(sigma, 1-sigma)``, independent of the
  document) to abandon candidates that cannot enter the current top k;
* :meth:`ScoringKernel.with_context` — incremental rescoring: when only
  the context changed, rebuild the per-rule coefficient vectors on the
  *same* compiled ``P(f)`` matrix instead of re-binding every
  document (wired into the engine through
  :mod:`repro.engine.basis`).

The three reference scorers in :mod:`repro.core.scoring` remain the
correctness oracle; kernel-vs-reference agreement is property-tested.
"""

from __future__ import annotations

import heapq
import sys
from collections import abc
from dataclasses import dataclass
from typing import Iterator, Optional, Sequence

from repro.errors import ScoringError
from repro.core.problem import RuleBinding, ScoringProblem
from repro.core.pruning import all_miss_score
from repro.core.scoring import DocumentScore, RuleContribution
from repro.perf.backend import resolve_backend
from repro.perf.flatops import (
    TOPK_PRUNE_SLACK,
    batch_row_scores,
    batch_topk_survivors,
    row_scores,
    topk_survivors,
)

__all__ = [
    "CompiledCandidates",
    "LazyContributions",
    "ScoringKernel",
    "compile_candidates",
    "rank_top_k_batch",
    "score_batch",
    "score_documents_batch",
]

#: Rows per block on the numpy top-k path (prune checks run per block,
#: and so do the serving layer's cooperative deadline checks).
TOPK_BLOCK = 512


def _active_deadline():
    """The serving layer's per-request deadline, when one is active.

    Resolved through ``sys.modules`` so the core never imports the
    service layer (no import cycle, no import cost): if
    ``repro.service.resilience`` was never loaded there cannot be a
    deadline, and the probe is one dict lookup.  Returns an object
    with a ``check()`` raising the service's ``DeadlineExceeded``, or
    ``None``.
    """
    resilience = sys.modules.get("repro.service.resilience")
    if resilience is None:
        return None
    return resilience.current_deadline()


@dataclass(frozen=True, eq=False)
class CompiledCandidates:
    """The context-independent half of a compiled problem.

    ``matrix`` holds the documents x rules ``P(f)`` probabilities —
    a float64 ndarray on the numpy backend, a row-major ``list`` on the
    fallback.  ``possible_bits[d]`` has bit ``r`` set when document
    ``d``'s preference event for rule ``r`` is not impossible (the
    Section 6 document-pruning test).  This half is what incremental
    rescoring reuses across context changes.
    """

    names: tuple[str, ...]
    rule_count: int
    backend: str
    matrix: object
    possible_bits: tuple[int, ...]

    @property
    def document_count(self) -> int:
        return len(self.names)


def compile_candidates(
    problem: ScoringProblem, backend: Optional[str] = None
) -> CompiledCandidates:
    """Flatten a bound problem's documents into the kernel's arrays."""
    np = resolve_backend(backend)
    names = tuple(binding.document.name for binding in problem.documents)
    rule_count = problem.rule_count
    possible_bits = tuple(
        sum(
            1 << index
            for index, event in enumerate(binding.preference_events)
            if not event.is_impossible
        )
        for binding in problem.documents
    )
    if np is not None:
        matrix = np.empty((len(names), rule_count), dtype=np.float64)
        for row, binding in enumerate(problem.documents):
            matrix[row, :] = binding.preference_probabilities
        matrix.setflags(write=False)
        return CompiledCandidates(names, rule_count, "numpy", matrix, possible_bits)
    flat: list[float] = []
    for binding in problem.documents:
        flat.extend(binding.preference_probabilities)
    return CompiledCandidates(names, rule_count, "python", flat, possible_bits)


class LazyContributions(abc.Sequence):
    """A document's per-rule breakdown, materialised on first access.

    Behaves like the tuple of :class:`RuleContribution` the reference
    :func:`~repro.core.scoring.score_document` builds eagerly, but the
    tuple only exists once an explanation (or a test) reads it — the
    batch-scoring hot path never pays for it.
    """

    __slots__ = ("_kernel", "_row", "_items")

    def __init__(self, kernel: "ScoringKernel", row: int):
        self._kernel = kernel
        self._row = row
        self._items: tuple[RuleContribution, ...] | None = None

    def _materialised(self) -> tuple[RuleContribution, ...]:
        if self._items is None:
            self._items = self._kernel.contributions_for(self._row)
        return self._items

    def __len__(self) -> int:
        return len(self._kernel.kept_rules)

    def __getitem__(self, index):
        return self._materialised()[index]

    def __iter__(self) -> Iterator[RuleContribution]:
        return iter(self._materialised())

    def __bool__(self) -> bool:
        return bool(self._kernel.kept_rules)

    def __eq__(self, other) -> bool:
        if isinstance(other, LazyContributions):
            return self._materialised() == other._materialised()
        if isinstance(other, (tuple, list)):
            return self._materialised() == tuple(other)
        return NotImplemented

    def __hash__(self) -> int:
        return hash(self._materialised())

    def __repr__(self) -> str:
        if self._items is None:
            return f"LazyContributions(<{len(self)} rules, unmaterialised>)"
        return repr(self._items)


class ScoringKernel:
    """A compiled scoring problem, ready for one-pass batch evaluation.

    Immutable: the candidate matrix and the per-rule coefficient
    vectors are fixed at construction, so cached
    :class:`DocumentScore` objects may lazily read contributions from
    the kernel at any later time.  A context change produces a *new*
    kernel via :meth:`with_context`, sharing the compiled matrix.
    """

    def __init__(
        self,
        candidates: CompiledCandidates,
        bindings: Sequence[RuleBinding],
        rule_threshold: float = 0.0,
    ):
        if len(bindings) != candidates.rule_count:
            raise ScoringError(
                f"kernel compiled for {candidates.rule_count} rules, "
                f"got {len(bindings)} context bindings"
            )
        self.candidates = candidates
        self.bindings = tuple(bindings)
        self.rule_threshold = rule_threshold
        self._np = resolve_backend(candidates.backend)

        keep = [
            index
            for index, binding in enumerate(self.bindings)
            if binding.context_probability > rule_threshold
        ]
        self._keep = tuple(keep)
        self._kept_bits = sum(1 << index for index in keep)
        coeffs = []
        for index in keep:
            binding = self.bindings[index]
            p_g = binding.context_probability
            sigma = binding.sigma
            a = (1.0 - p_g) + p_g * (1.0 - sigma)
            b = p_g * (2.0 * sigma - 1.0)
            coeffs.append((index, a, b))
        self._coeffs = tuple(coeffs)
        # Section 6 upper bound: a rule's factor never exceeds
        # (1-P(g)) + P(g)*max(sigma, 1-sigma) = max(a, a+b).
        bounds = [max(a, a + b) for _index, a, b in coeffs]
        suffix = [1.0] * (len(coeffs) + 1)
        for j in range(len(coeffs) - 1, -1, -1):
            suffix[j] = suffix[j + 1] * bounds[j]
        self._suffix_bounds = suffix
        self._all_miss = all_miss_score([self.bindings[i] for i in keep])
        if self._np is not None:
            np = self._np
            self._keep_idx = np.array(keep, dtype=np.intp)
            self._a = np.array([a for _i, a, _b in coeffs], dtype=np.float64)
            self._b = np.array([b for _i, _a, b in coeffs], dtype=np.float64)

    # -- construction ------------------------------------------------------
    @classmethod
    def compile(
        cls,
        problem: ScoringProblem,
        rule_threshold: float = 0.0,
        backend: Optional[str] = None,
    ) -> "ScoringKernel":
        """Compile a bound problem (threshold pruning applied as a mask)."""
        return cls(compile_candidates(problem, backend), problem.bindings, rule_threshold)

    def with_context(self, bindings: Sequence[RuleBinding]) -> "ScoringKernel":
        """The incremental path: same ``P(f)`` matrix, fresh context.

        ``bindings`` must carry the same rules in the same order (the
        engine guarantees this through its rule fingerprint).
        """
        if len(bindings) != len(self.bindings):
            raise ScoringError(
                f"context rebind changed the rule count "
                f"({len(self.bindings)} -> {len(bindings)})"
            )
        for old, new in zip(self.bindings, bindings):
            if old.rule.rule_id != new.rule.rule_id:
                raise ScoringError(
                    f"context rebind changed the rule set "
                    f"({old.rule.rule_id!r} -> {new.rule.rule_id!r})"
                )
        return ScoringKernel(self.candidates, bindings, self.rule_threshold)

    # -- introspection -----------------------------------------------------
    @property
    def names(self) -> tuple[str, ...]:
        return self.candidates.names

    @property
    def document_count(self) -> int:
        return self.candidates.document_count

    @property
    def backend(self) -> str:
        return self.candidates.backend

    @property
    def kept_rules(self) -> tuple[int, ...]:
        """Indices of rules surviving the context-probability threshold."""
        return self._keep

    @property
    def dropped_rule_count(self) -> int:
        return len(self.bindings) - len(self._keep)

    @property
    def all_miss(self) -> float:
        """The shared score of documents matching no kept preference."""
        return self._all_miss

    @property
    def coalesce_key(self) -> tuple[tuple[int, float, float], ...]:
        """Value identity of the context binding: the ``(rule, a, b)`` triples.

        Two kernels over the *same* compiled candidate matrix with equal
        coalesce keys produce identical scored views by construction —
        every per-document factor is ``a + b * P(f)`` and ``(a, b)``
        uniquely determine the binding's ``(P(g), sigma)`` pair.  Batch
        schedulers use this to share one scored row between concurrent
        requests even when their view signatures differ (e.g. the same
        context installed for two different tenants)."""
        return self._coeffs

    def trivial_rows(self) -> list[int]:
        """Rows whose preference events all miss every kept rule."""
        kept_bits = self._kept_bits
        return [
            row
            for row, bits in enumerate(self.candidates.possible_bits)
            if bits & kept_bits == 0
        ]

    # -- batch scoring -----------------------------------------------------
    def scores(self, prune_documents: bool = True) -> list[float]:
        """Every document's eq.(4) score, in candidate order."""
        deadline = _active_deadline()
        if deadline is not None:
            deadline.check()
        if self._np is not None:
            np = self._np
            sub = self.candidates.matrix[:, self._keep_idx]
            factors = self._a + self._b * sub
            values = factors.prod(axis=1)
            np.clip(values, 0.0, 1.0, out=values)
            values = values.tolist()
        else:
            values = row_scores(
                self.candidates.matrix,
                self.document_count,
                self.candidates.rule_count,
                self._coeffs,
            )
        if prune_documents:
            shared = self._all_miss
            for row in self.trivial_rows():
                values[row] = shared
        return values

    def score_documents(
        self, prune_documents: bool = True, method: str = "factorised"
    ) -> list[DocumentScore]:
        """:class:`DocumentScore` per candidate, breakdowns lazy."""
        values = self.scores(prune_documents)
        trivial = set(self.trivial_rows()) if prune_documents else frozenset()
        results = []
        for row, (name, value) in enumerate(zip(self.names, values)):
            contributions = () if row in trivial else LazyContributions(self, row)
            results.append(DocumentScore(name, value, contributions, method))
        return results

    def contributions_for(self, row: int) -> tuple[RuleContribution, ...]:
        """Materialise one document's per-rule breakdown (kept rules)."""
        matrix = self.candidates.matrix
        if self._np is not None:
            row_values = matrix[row]
        else:
            base = row * self.candidates.rule_count
            row_values = matrix[base : base + self.candidates.rule_count]
        contributions = []
        for index in self._keep:
            binding = self.bindings[index]
            p_f = float(row_values[index])
            p_g = binding.context_probability
            sigma = binding.sigma
            inner = p_f * sigma + (1.0 - p_f) * (1.0 - sigma)
            contributions.append(
                RuleContribution(
                    rule_id=binding.rule.rule_id,
                    sigma=sigma,
                    context_probability=p_g,
                    preference_probability=p_f,
                    factor=(1.0 - p_g) + p_g * inner,
                )
            )
        return tuple(contributions)

    # -- top-k -------------------------------------------------------------
    def rank_top_k(
        self, k: int, prune_documents: bool = True, method: str = "factorised"
    ) -> list[DocumentScore]:
        """The best ``k`` documents (score desc, ties by name asc).

        Candidates whose Section 6 upper bound falls below the current
        k-th best score (by more than a rounding-safe slack, so exact
        ties survive for name tie-breaking) are abandoned mid-product;
        the result is exactly the first ``k`` entries of the full
        ranking.
        """
        if k < 1:
            raise ScoringError(f"top-k needs a positive k, got {k!r}")
        total = self.document_count
        if k >= total or not self._coeffs:
            ranked = sorted(
                self.score_documents(prune_documents, method),
                key=lambda score: (-score.value, score.document),
            )
            return ranked[:k]

        trivial = set(self.trivial_rows()) if prune_documents else frozenset()
        active = [row for row in range(total) if row not in trivial]
        shared = self._all_miss
        seeds = [shared] * min(len(trivial), k)
        if self._np is not None:
            survivors = self._topk_numpy(active, k, seeds)
        else:
            deadline = _active_deadline()
            if deadline is None:
                survivors = topk_survivors(
                    self.candidates.matrix,
                    self.candidates.rule_count,
                    self._coeffs,
                    self._suffix_bounds,
                    active,
                    k,
                    seeds,
                )
            else:
                # Cooperative cancellation: run the scan in blocks,
                # checking the deadline between them and carrying the
                # top-k value heap forward as the next block's seeds —
                # the survivor set stays a superset of the true top k,
                # so the final sort+slice below is still exact.
                survivors = []
                heap = list(seeds)
                heapq.heapify(heap)
                for start in range(0, len(active), TOPK_BLOCK):
                    deadline.check()
                    found = topk_survivors(
                        self.candidates.matrix,
                        self.candidates.rule_count,
                        self._coeffs,
                        self._suffix_bounds,
                        active[start : start + TOPK_BLOCK],
                        k,
                        tuple(heap),
                    )
                    for row, value in found:
                        survivors.append((row, value))
                        heapq.heappush(heap, value)
                        if len(heap) > k:
                            heapq.heappop(heap)
        pool = [(row, value) for row, value in survivors]
        pool.extend((row, shared) for row in trivial)
        pool.sort(key=lambda entry: (-entry[1], self.names[entry[0]]))
        results = []
        for row, value in pool[:k]:
            contributions = () if row in trivial else LazyContributions(self, row)
            results.append(DocumentScore(self.names[row], value, contributions, method))
        return results

    def _topk_numpy(
        self, rows: list[int], k: int, seeds: list[float]
    ) -> list[tuple[int, float]]:
        """Blocked vectorised top-k with the suffix-bound prune."""
        np = self._np
        deadline = _active_deadline()
        heap: list[float] = list(seeds)
        heapq.heapify(heap)
        suffix = self._suffix_bounds
        a, b = self._a, self._b
        survivors: list[tuple[int, float]] = []
        row_array = np.array(rows, dtype=np.intp)
        for start in range(0, len(row_array), TOPK_BLOCK):
            if deadline is not None:
                deadline.check()
            block = row_array[start : start + TOPK_BLOCK]
            sub = self.candidates.matrix[np.ix_(block, self._keep_idx)]
            prefix = np.ones(len(block), dtype=np.float64)
            alive = np.arange(len(block))
            for j in range(len(self._coeffs)):
                if len(heap) == k:
                    # Same rounding-safe slack as flatops.topk_survivors:
                    # exact ties must survive for name tie-breaking.
                    threshold = heap[0] * (1.0 - TOPK_PRUNE_SLACK)
                    still = prefix[alive] * suffix[j] >= threshold
                    alive = alive[still]
                    if alive.size == 0:
                        break
                prefix[alive] *= a[j] + b[j] * sub[alive, j]
            for position in alive.tolist():
                value = min(1.0, max(0.0, float(prefix[position])))
                survivors.append((int(block[position]), value))
                heapq.heappush(heap, value)
                if len(heap) > k:
                    heapq.heappop(heap)
        return survivors

    def __repr__(self) -> str:
        return (
            f"ScoringKernel({self.document_count} documents x "
            f"{len(self.bindings)} rules, kept={len(self._keep)}, "
            f"backend={self.backend!r})"
        )


# -- cross-request batching ------------------------------------------------
#
# Many concurrent requests routinely share one compiled candidate
# matrix (the SharedBasisPool hands the same ``CompiledCandidates`` to
# every tenant over a frozen base world) while differing only in their
# per-request factor coefficients.  The batch entry points below score
# N such "batch mates" in one fused pass over the shared matrix: numpy
# stacks the coefficient vectors into (batch x rules) arrays and walks
# the matrix columns once; the python fallback walks each matrix row
# once and advances every mate's factor chain against it.
#
# Identity guarantee: a mate's multiplication chain visits exactly its
# own kept rules in index order — the same order the sequential path
# uses — and rules a mate dropped contribute the exact factor 1.0, so
# batched scores match ``ScoringKernel.scores()`` to within a few ulps
# (bit-identical on the python backend).


def _shared_candidates(kernels: Sequence[ScoringKernel]) -> CompiledCandidates:
    if not kernels:
        raise ScoringError("batched scoring needs at least one kernel")
    candidates = kernels[0].candidates
    for kernel in kernels[1:]:
        if kernel.candidates is not candidates:
            raise ScoringError(
                "batched kernels must share one compiled candidate matrix; "
                "group by basis identity before batching"
            )
    return candidates


def _union_coefficients(kernels: Sequence[ScoringKernel], np):
    """Full-width ``(batch, union-rules)`` coefficient arrays.

    The union holds every rule kept by at least one mate; a mate that
    dropped a union rule gets ``a=1, b=0`` there, multiplying its
    running product by exactly 1.0.
    """
    union = sorted({index for kernel in kernels for index in kernel._keep})
    position = {rule: j for j, rule in enumerate(union)}
    a = np.ones((len(kernels), len(union)), dtype=np.float64)
    b = np.zeros((len(kernels), len(union)), dtype=np.float64)
    for row, kernel in enumerate(kernels):
        for index, a_value, b_value in kernel._coeffs:
            a[row, position[index]] = a_value
            b[row, position[index]] = b_value
    return union, a, b


def score_batch(
    kernels: Sequence[ScoringKernel], prune_documents: bool = True
) -> list[list[float]]:
    """Every mate's eq.(4) scores, one fused pass over the shared matrix.

    All ``kernels`` must share one :class:`CompiledCandidates` (by
    identity — group by basis before batching); each result list is in
    candidate order and matches that kernel's sequential
    :meth:`ScoringKernel.scores` to well under 1e-9.
    """
    candidates = _shared_candidates(kernels)
    if len(kernels) == 1:
        return [kernels[0].scores(prune_documents)]
    deadline = _active_deadline()
    if deadline is not None:
        deadline.check()
    np = kernels[0]._np
    if np is not None:
        matrix = candidates.matrix
        union, a, b = _union_coefficients(kernels, np)
        values = np.ones((len(kernels), candidates.document_count), dtype=np.float64)
        for j, rule in enumerate(union):
            column = matrix[:, rule]
            values *= a[:, j, None] + b[:, j, None] * column[None, :]
        np.clip(values, 0.0, 1.0, out=values)
        results = [row.tolist() for row in values]
    else:
        results = batch_row_scores(
            candidates.matrix,
            candidates.document_count,
            candidates.rule_count,
            [kernel._coeffs for kernel in kernels],
        )
    if prune_documents:
        for kernel, row_values in zip(kernels, results):
            shared = kernel._all_miss
            for row in kernel.trivial_rows():
                row_values[row] = shared
    return results


def score_documents_batch(
    kernels: Sequence[ScoringKernel],
    prune_documents: bool = True,
    method: str = "factorised",
) -> list[list[DocumentScore]]:
    """:meth:`ScoringKernel.score_documents` for a whole batch at once."""
    batch_values = score_batch(kernels, prune_documents)
    results = []
    for kernel, values in zip(kernels, batch_values):
        trivial = set(kernel.trivial_rows()) if prune_documents else frozenset()
        scores = []
        for row, (name, value) in enumerate(zip(kernel.names, values)):
            contributions = () if row in trivial else LazyContributions(kernel, row)
            scores.append(DocumentScore(name, value, contributions, method))
        results.append(scores)
    return results


def rank_top_k_batch(
    kernels: Sequence[ScoringKernel],
    ks: Sequence[int],
    prune_documents: bool = True,
    method: str = "factorised",
) -> list[list[DocumentScore]]:
    """:meth:`ScoringKernel.rank_top_k` for a whole batch at once.

    One blocked pass over the shared matrix serves every mate; each
    mate keeps its own Section-6 upper bound and threshold heap, so the
    per-request result is exactly that mate's sequential top ``k``
    (score desc, ties by name asc).
    """
    candidates = _shared_candidates(kernels)
    if len(kernels) != len(ks):
        raise ScoringError(
            f"rank_top_k_batch got {len(kernels)} kernels but {len(ks)} k values"
        )
    for k in ks:
        if k < 1:
            raise ScoringError(f"top-k needs a positive k, got {k!r}")
    if len(kernels) == 1:
        return [kernels[0].rank_top_k(ks[0], prune_documents, method)]
    total = candidates.document_count
    if any(k >= total or not kernel._coeffs for kernel, k in zip(kernels, ks)):
        # Some mate needs every score anyway — share one full pass and
        # sort per mate instead of running a crippled pruning scan.
        ranked_sets = score_documents_batch(kernels, prune_documents, method)
        return [
            sorted(scores, key=lambda score: (-score.value, score.document))[:k]
            for scores, k in zip(ranked_sets, ks)
        ]

    trivials = [
        set(kernel.trivial_rows()) if prune_documents else set() for kernel in kernels
    ]
    # Scan every row some mate still needs; a row trivial for *every*
    # mate is reintroduced from the shared all-miss score below.  Rows
    # trivial for only one mate score to exactly that mate's all-miss
    # inside the scan (their kept P(f) entries are 0), so each document
    # feeds a mate's threshold heap at most once — no over-pruning.
    skip = set(trivials[0]).intersection(*trivials[1:])
    active = [row for row in range(total) if row not in skip]
    np = kernels[0]._np
    if np is not None:
        survivor_sets = _topk_numpy_batch(kernels, active, ks, np)
    else:
        survivor_sets = _topk_python_batch(kernels, active, ks)
    results = []
    for kernel, k, trivial, survivors in zip(kernels, ks, trivials, survivor_sets):
        shared = kernel._all_miss
        pool = [(row, value) for row, value in survivors if row not in trivial]
        pool.extend((row, shared) for row in trivial)
        pool.sort(key=lambda entry: (-entry[1], kernel.names[entry[0]]))
        ranked = []
        for row, value in pool[:k]:
            contributions = () if row in trivial else LazyContributions(kernel, row)
            ranked.append(DocumentScore(kernel.names[row], value, contributions, method))
        results.append(ranked)
    return results


def _topk_python_batch(
    kernels: Sequence[ScoringKernel], active: list[int], ks: Sequence[int]
) -> list[list[tuple[int, float]]]:
    """Batched fallback top-k: blocked when a deadline is active."""
    candidates = kernels[0].candidates
    coeff_sets = [kernel._coeffs for kernel in kernels]
    suffix_sets = [kernel._suffix_bounds for kernel in kernels]
    deadline = _active_deadline()
    if deadline is None:
        return batch_topk_survivors(
            candidates.matrix, candidates.rule_count, coeff_sets, suffix_sets, active, ks
        )
    survivor_sets: list[list[tuple[int, float]]] = [[] for _ in kernels]
    heaps: list[list[float]] = [[] for _ in kernels]
    for start in range(0, len(active), TOPK_BLOCK):
        deadline.check()
        found = batch_topk_survivors(
            candidates.matrix,
            candidates.rule_count,
            coeff_sets,
            suffix_sets,
            active[start : start + TOPK_BLOCK],
            ks,
            [tuple(heap) for heap in heaps],
        )
        for index, block_survivors in enumerate(found):
            heap, k = heaps[index], ks[index]
            for row, value in block_survivors:
                survivor_sets[index].append((row, value))
                heapq.heappush(heap, value)
                if len(heap) > k:
                    heapq.heappop(heap)
    return survivor_sets


def _topk_numpy_batch(
    kernels: Sequence[ScoringKernel], rows: list[int], ks: Sequence[int], np
) -> list[list[tuple[int, float]]]:
    """Blocked vectorised batch top-k.

    Each block's matrix rows are read once for the whole batch; the
    Section-6 upper bound is applied per mate at block granularity (a
    mate whose best possible block score falls below its k-th best
    drops out of the remaining rule products for that block).
    """
    batch = len(kernels)
    union, a, b = _union_coefficients(kernels, np)
    bounds = np.maximum(a, a + b)  # (batch, union) — dropped rules bound 1.0
    suffix = np.ones((batch, len(union) + 1), dtype=np.float64)
    for j in range(len(union) - 1, -1, -1):
        suffix[:, j] = suffix[:, j + 1] * bounds[:, j]
    matrix = kernels[0].candidates.matrix
    deadline = _active_deadline()
    keep_factor = 1.0 - TOPK_PRUNE_SLACK
    heaps: list[list[float]] = [[] for _ in kernels]
    survivor_sets: list[list[tuple[int, float]]] = [[] for _ in kernels]
    row_array = np.array(rows, dtype=np.intp)
    for start in range(0, len(row_array), TOPK_BLOCK):
        if deadline is not None:
            deadline.check()
        block = row_array[start : start + TOPK_BLOCK]
        length = len(block)
        prefix = np.ones((batch, length), dtype=np.float64)
        # Per-mate abandon thresholds are fixed for the block (heaps
        # only change between blocks).
        thresholds = np.array(
            [
                heaps[m][0] * keep_factor if len(heaps[m]) == ks[m] else -np.inf
                for m in range(batch)
            ],
            dtype=np.float64,
        )
        alive = np.arange(batch)
        for j, rule in enumerate(union):
            best = prefix[alive].max(axis=1) * suffix[alive, j]
            alive = alive[best >= thresholds[alive]]
            if alive.size == 0:
                break
            column = matrix[block, rule]
            prefix[alive] = prefix[alive] * (
                a[alive, j, None] + b[alive, j, None] * column[None, :]
            )
        for mate in alive.tolist():
            heap, k = heaps[mate], ks[mate]
            values = np.clip(prefix[mate], 0.0, 1.0)
            if len(heap) == k:
                keep = np.nonzero(values >= heap[0] * keep_factor)[0].tolist()
            else:
                keep = range(length)
            for position in keep:
                value = float(values[position])
                survivor_sets[mate].append((int(block[position]), value))
                heapq.heappush(heap, value)
                if len(heap) > k:
                    heapq.heappop(heap)
    return survivor_sets
