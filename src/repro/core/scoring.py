"""The paper's scoring model: equation (4) and the Section 3.3 expectation.

Three interchangeable scorers compute ``P(D=d | U=u_sit)``:

``enumeration``
    The paper's own formulation: enumerate every combination of context
    feature vector ``g`` and document feature vector ``f`` (2^n x 2^n
    for n rules), weight each by its probability under feature
    independence, and multiply in the equation-(4) factors.  Exponential
    — this is the naive implementation whose blow-up Section 5 measures.

``factorised``
    Algebraically identical under the same independence assumption, but
    computed per rule in O(n):

    ``score = prod over rules r of
      [ (1 - P(g_r))  +  P(g_r) * (P(f_r) * sigma_r + (1 - P(f_r)) * (1 - sigma_r)) ]``

    This is the Section 6 "performance" fix: the expectation
    distributes over the product because each rule's factor depends
    only on its own feature indicators.

``exact``
    Drops the independence assumption entirely: computes the
    expectation of the equation-(4) product over the *joint*
    distribution of the underlying event expressions (shared sensor
    atoms, mutex groups) by Shannon-expanding over the union of their
    atoms.  The reference semantics when features are correlated.

Equality of the three on independent features is a property-tested
invariant; their runtime divergence is benchmark E3/E4.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import product as cartesian_product

from repro.errors import ComplexityLimitError, ScoringError
from repro.events.atoms import BasicEvent
from repro.events.expr import EventExpr
from repro.events.space import EventSpace
from repro.core.problem import DocumentBinding, RuleBinding, ScoringProblem

__all__ = [
    "RuleContribution",
    "DocumentScore",
    "score_certain",
    "enumeration_score",
    "factorised_score",
    "exact_event_score",
    "score_document",
    "SCORING_METHODS",
]

#: Guard for the naive enumerator: 4^n grows fast.
MAX_ENUMERATION_RULES = 14

#: Guard for the exact scorer's Shannon recursion.
MAX_EXACT_ATOMS = 40


@dataclass(frozen=True)
class RuleContribution:
    """One rule's share of a document's score (for explanations)."""

    rule_id: str
    sigma: float
    context_probability: float
    preference_probability: float
    factor: float

    def __str__(self) -> str:
        return (
            f"{self.rule_id}: P(context)={self.context_probability:.3f}, "
            f"P(preference)={self.preference_probability:.3f}, sigma={self.sigma:.3f} "
            f"-> factor {self.factor:.4f}"
        )


@dataclass(frozen=True)
class DocumentScore:
    """A scored document with its per-rule breakdown."""

    document: str
    value: float
    contributions: tuple[RuleContribution, ...] = ()
    method: str = "factorised"

    def __str__(self) -> str:
        return f"{self.document}: {self.value:.4f}"


def _factor(sigma: float, context_holds: bool, preference_holds: bool) -> float:
    """Equation (4): 1 if g not in g; sigma if also f in f; 1-sigma otherwise."""
    if not context_holds:
        return 1.0
    return sigma if preference_holds else 1.0 - sigma


def score_certain(
    bindings: tuple[RuleBinding, ...] | list[RuleBinding],
    context_holds: list[bool],
    preference_holds: list[bool],
) -> float:
    """Equation (4) under fully certain features.

    ``context_holds[i]`` / ``preference_holds[i]`` state whether rule
    ``i``'s context and preference features hold.
    """
    if not (len(bindings) == len(context_holds) == len(preference_holds)):
        raise ScoringError("feature vectors must match the rule count")
    score = 1.0
    for binding, g, f in zip(bindings, context_holds, preference_holds):
        score *= _factor(binding.sigma, g, f)
    return score


def enumeration_score(bindings: list[RuleBinding], document: DocumentBinding) -> float:
    """The naive Section 3.3 computation: sum over all feature vectors.

    Exact when all feature events are independent; exponential in the
    rule count (the paper's bottleneck).
    """
    n = len(bindings)
    if n > MAX_ENUMERATION_RULES:
        raise ComplexityLimitError(
            f"enumeration over {n} rules needs 4^{n} terms; "
            f"limit is {MAX_ENUMERATION_RULES} rules (use the factorised scorer)"
        )
    sigmas = [binding.sigma for binding in bindings]
    p_context = [binding.context_probability for binding in bindings]
    p_preference = list(document.preference_probabilities)

    # The 2^n document-feature weights do not depend on the context
    # vector, so they are computed once here instead of inside the
    # g-vector loop (which would redo all of them 2^n times and push
    # the naive scorer from O(4^n) towards O(4^n * n)).
    f_entries = []
    for f_vector in cartesian_product((True, False), repeat=n):
        weight_f = 1.0
        for f, p in zip(f_vector, p_preference):
            weight_f *= p if f else 1.0 - p
        if weight_f == 0.0:
            continue
        f_entries.append((f_vector, weight_f))

    total = 0.0
    for g_vector in cartesian_product((True, False), repeat=n):
        weight_g = 1.0
        for g, p in zip(g_vector, p_context):
            weight_g *= p if g else 1.0 - p
        if weight_g == 0.0:
            continue
        for f_vector, weight_f in f_entries:
            term = weight_g * weight_f
            for sigma, g, f in zip(sigmas, g_vector, f_vector):
                term *= _factor(sigma, g, f)
            total += term
    return min(1.0, max(0.0, total))


def factorised_score(bindings: list[RuleBinding], document: DocumentBinding) -> float:
    """The O(n) per-rule factorisation (Section 6 performance fix)."""
    score = 1.0
    for binding, p_f in zip(bindings, document.preference_probabilities):
        p_g = binding.context_probability
        sigma = binding.sigma
        inner = p_f * sigma + (1.0 - p_f) * (1.0 - sigma)
        score *= (1.0 - p_g) + p_g * inner
    return min(1.0, max(0.0, score))


def exact_event_score(
    bindings: list[RuleBinding],
    document: DocumentBinding,
    space: EventSpace | None,
) -> float:
    """Expectation of the eq.(4) product over the joint event distribution.

    Correct even when context and preference features share basic
    events or mutex groups (e.g. two rules conditioned on the same
    sensor reading).  Shannon-expands jointly over the union of the
    atoms of every involved event expression, memoising on the reduced
    expression vector.
    """
    expressions: list[EventExpr] = []
    for binding, preference_event in zip(bindings, document.preference_events):
        expressions.append(binding.context_event)
        expressions.append(preference_event)
    sigmas = [binding.sigma for binding in bindings]

    all_atoms: set[BasicEvent] = set()
    for expression in expressions:
        all_atoms.update(expression.atoms())
    if len(all_atoms) > MAX_EXACT_ATOMS:
        raise ComplexityLimitError(
            f"exact scoring over {len(all_atoms)} atoms exceeds the limit {MAX_EXACT_ATOMS}"
        )

    memo: dict[tuple, float] = {}

    def leaf_value(exprs: list[EventExpr]) -> float:
        value = 1.0
        for index, sigma in enumerate(sigmas):
            g = exprs[2 * index].is_certain
            f = exprs[2 * index + 1].is_certain
            value *= _factor(sigma, g, f)
        return value

    def pick_atom(exprs: list[EventExpr]) -> BasicEvent | None:
        counts: dict[BasicEvent, int] = {}
        for expression in exprs:
            for event in expression.atoms():
                counts[event] = counts.get(event, 0) + 1
        if not counts:
            return None
        return max(counts, key=lambda event: (counts[event], event.name))

    def expectation(exprs: list[EventExpr]) -> float:
        pivot = pick_atom(exprs)
        if pivot is None:
            return leaf_value(exprs)
        key = tuple(expression.sort_key() for expression in exprs)
        cached = memo.get(key)
        if cached is not None:
            return cached

        group = space.group_of(pivot.name) if space is not None else None
        if group is None:
            positive = [expression.substitute({pivot.name: True}) for expression in exprs]
            negative = [expression.substitute({pivot.name: False}) for expression in exprs]
            value = pivot.probability * expectation(positive) + (
                pivot.complement_probability
            ) * expectation(negative)
        else:
            appearing = [
                event
                for event in group.members
                if any(event in expression.atoms() for expression in exprs)
            ]
            member_names = [event.name for event in appearing]
            value = 0.0
            for chosen in appearing:
                assignment = {name: name == chosen.name for name in member_names}
                value += chosen.probability * expectation(
                    [expression.substitute(assignment) for expression in exprs]
                )
            none_probability = 1.0 - sum(event.probability for event in appearing)
            if none_probability > 0.0:
                assignment = {name: False for name in member_names}
                value += none_probability * expectation(
                    [expression.substitute(assignment) for expression in exprs]
                )
        memo[key] = value
        return value

    return min(1.0, max(0.0, expectation(expressions)))


def score_document(
    problem: ScoringProblem,
    document: DocumentBinding,
    method: str = "factorised",
) -> DocumentScore:
    """Score one document with the chosen method, with rule breakdown."""
    bindings = list(problem.bindings)
    if method == "enumeration":
        value = enumeration_score(bindings, document)
    elif method == "factorised":
        value = factorised_score(bindings, document)
    elif method == "exact":
        value = exact_event_score(bindings, document, problem.space)
    else:
        raise ScoringError(
            f"unknown scoring method {method!r}; choose from {sorted(SCORING_METHODS)}"
        )
    contributions = []
    for binding, p_f in zip(bindings, document.preference_probabilities):
        p_g = binding.context_probability
        sigma = binding.sigma
        inner = p_f * sigma + (1.0 - p_f) * (1.0 - sigma)
        contributions.append(
            RuleContribution(
                rule_id=binding.rule.rule_id,
                sigma=sigma,
                context_probability=p_g,
                preference_probability=p_f,
                factor=(1.0 - p_g) + p_g * inner,
            )
        )
    return DocumentScore(document.document.name, value, tuple(contributions), method)


SCORING_METHODS = ("enumeration", "factorised", "exact")
