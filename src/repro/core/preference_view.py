"""The "big preference view": per-tuple scores as a database relation.

Section 5: "to calculate the probability P(D=d|U=u_sit) for each tuple,
we use the formula from Section 3.3 to provide a big preference view.
This view contains all preferred tuples together with the probabilities
that they are ideal based on the current context and preference rules
in the repository.  The nice part of having such a view is that, as the
current context develops, the probabilities of containment of tuples in
the view changes accordingly."

:class:`PreferenceView` materialises ``(id, preferencescore)`` for the
members of a target concept and refreshes on demand (typically after a
context refresh).  It also plugs into the SQL layer as the provider of
the ``preferencescore`` virtual column, so the paper's introduction
query runs verbatim.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.dl.concepts import Concept
from repro.storage.database import Database
from repro.storage.schema import Column, ColumnType, Schema
from repro.storage.sql import SqlSession
from repro.storage.table import Table
from repro.core.scorer import ContextAwareScorer
from repro.core.scoring import DocumentScore

__all__ = ["PreferenceView", "PREFERENCE_VIEW_TABLE"]

PREFERENCE_VIEW_TABLE = "preference_view"


@dataclass
class PreferenceView:
    """Maintains the scored view over a target concept's members.

    Parameters
    ----------
    scorer:
        The context-aware scorer to draw probabilities from.
    target:
        The concept whose members are scored (e.g. ``TvProgram``).
    database:
        Optional database to materialise the view into (as a base table
        replaced on every refresh, named :data:`PREFERENCE_VIEW_TABLE`).
    """

    scorer: ContextAwareScorer
    target: Concept
    database: Database | None = None
    table_name: str = PREFERENCE_VIEW_TABLE
    _scores: dict[str, DocumentScore] = field(default_factory=dict, repr=False)

    def refresh(self) -> dict[str, float]:
        """Recompute every member's score against the current context."""
        ranked = self.scorer.score_concept_members(self.target)
        self._scores = {score.document: score for score in ranked}
        if self.database is not None:
            self._materialise()
        return {name: score.value for name, score in self._scores.items()}

    def _materialise(self) -> None:
        schema = Schema([Column("id", ColumnType.TEXT), Column("preferencescore", ColumnType.REAL)])
        table = Table(self.table_name, schema)
        for name, score in sorted(self._scores.items()):
            table.insert((name, score.value))
        assert self.database is not None
        if self.database.has_base_table(self.table_name):
            self.database._tables[self.table_name] = table  # refresh in place
        else:
            self.database.add_table(table)

    def load_scores(self, scores: dict[str, DocumentScore]) -> None:
        """Install externally computed scores without rescoring.

        Used by the engine's preference-view cache: on a context
        signature the view has already been refreshed under, the cached
        per-document scores are loaded back instead of recomputed.  The
        database materialisation still runs so attached SQL sessions
        stay consistent.
        """
        self._scores = dict(scores)
        if self.database is not None:
            self._materialise()

    # -- lookups ----------------------------------------------------------
    def scores_map(self) -> dict[str, DocumentScore]:
        """A copy of the last refreshed per-document scores."""
        return dict(self._scores)

    def score_of(self, document: str) -> float | None:
        """Last refreshed score of one document (None if unknown)."""
        score = self._scores.get(document)
        return score.value if score is not None else None

    def explain(self, document: str) -> DocumentScore | None:
        """Full per-rule breakdown from the last refresh."""
        return self._scores.get(document)

    def ranking(self) -> list[DocumentScore]:
        """Last refreshed ranking, best first."""
        return sorted(self._scores.values(), key=lambda s: (-s.value, s.document))

    def rank_top_k(self, k: int) -> list[DocumentScore]:
        """A fresh top-k over the target's members on the kernel path.

        Unlike ``ranking()[:k]`` this does not require (or update) a
        full refresh: candidates run through
        :meth:`~repro.core.scorer.ContextAwareScorer.rank_top_k`, where
        the Section 6 upper bound abandons documents that cannot reach
        the top ``k``.
        """
        from repro.dl.instances import retrieve

        members = retrieve(self.scorer.abox, self.scorer.tbox, self.target)
        names = sorted(individual.name for individual in members)
        return self.scorer.rank_top_k(names, k)

    def __len__(self) -> int:
        return len(self._scores)

    # -- SQL integration --------------------------------------------------
    def attach_to_session(
        self,
        session: SqlSession,
        data_table: str,
        id_column: str = "id",
        column: str = "preferencescore",
    ) -> None:
        """Register ``preferencescore`` as a virtual column on a table.

        Rows of ``data_table`` are matched to scored documents through
        ``id_column``; unmatched rows score 0.0 (they are never the
        ideal document).
        """

        def provider(row: dict[str, object]) -> float:
            key = row.get(id_column)
            score = self._scores.get(str(key)) if key is not None else None
            return score.value if score is not None else 0.0

        session.register_virtual_column(data_table, column, provider)
