"""Explanations: the paper's traceability goal, made concrete.

Section 6, "Explanation of results": the system should "provide the
user with a motivation for the 'context based' answer" without
requiring them to read the preference rules themselves.  This module
renders a scored document as structured text: which rules applied, how
certainly the context and the document matched them, and how each rule
moved the score — plus (optionally) the raw event lineage for full
data-provenance tracing.
"""

from __future__ import annotations

from repro.events.lineage import render_tree
from repro.rules.repository import RuleRepository
from repro.core.problem import ScoringProblem
from repro.core.scoring import DocumentScore

__all__ = ["explain_score", "explain_ranking", "explain_document_events"]


def _describe_factor(contribution) -> str:
    if contribution.context_probability == 0.0:
        return "context impossible -> rule ignored"
    direction = "raises" if contribution.factor > 1.0 - contribution.context_probability * contribution.sigma else "lowers"
    if contribution.preference_probability >= 0.5:
        match = f"document matches the preference (P={contribution.preference_probability:.2f})"
    else:
        match = f"document mostly misses the preference (P={contribution.preference_probability:.2f})"
    return f"{match}; factor {contribution.factor:.4f} {direction} the score"


def explain_score(score: DocumentScore, repository: RuleRepository | None = None) -> str:
    """A per-rule motivation for one document's score.

    >>> # explain_score(view.explain("channel5_news"), repo)
    """
    lines = [f"{score.document}: P(ideal | context) = {score.value:.4f}  [{score.method}]"]
    if not score.contributions:
        lines.append("  no applicable rule mentioned this document's features")
        return "\n".join(lines)
    for contribution in score.contributions:
        rule_text = contribution.rule_id
        if repository is not None and contribution.rule_id in repository:
            rule = repository.get(contribution.rule_id)
            when = "always" if rule.is_default else f"when {rule.context}"
            rule_text = f"{contribution.rule_id} ({when}, prefer {rule.preference}, sigma={rule.sigma:g})"
        lines.append(f"  rule {rule_text}")
        lines.append(
            f"    context holds with P={contribution.context_probability:.2f}; "
            + _describe_factor(contribution)
        )
    return "\n".join(lines)


def explain_ranking(scores: list[DocumentScore], repository: RuleRepository | None = None) -> str:
    """A readable ranking table with per-document motivations."""
    lines = ["rank  score   document"]
    for position, score in enumerate(scores, start=1):
        lines.append(f"{position:>4}  {score.value:.4f}  {score.document}")
    lines.append("")
    for score in scores:
        lines.append(explain_score(score, repository))
        lines.append("")
    return "\n".join(lines).rstrip()


def explain_document_events(problem: ScoringProblem, document_name: str) -> str:
    """Raw event lineage of one document's feature events (provenance)."""
    from repro.dl.vocabulary import Individual

    binding = problem.document(Individual(document_name))
    lines = [f"event lineage for {document_name}:"]
    for rule_binding, event in zip(problem.bindings, binding.preference_events):
        lines.append(f"  rule {rule_binding.rule.rule_id} preference event:")
        lines.append("    " + render_tree(event, indent="    ").replace("\n", "\n    "))
    return "\n".join(lines)
