"""The paper's primary contribution (S7): context-aware scoring & ranking.

* :mod:`~repro.core.problem` — binding rules + candidates to a context;
* :mod:`~repro.core.scoring` — equation (4) and the Section 3.3
  expectation (naive enumeration, O(n) factorisation, correlation-aware
  exact scorer);
* :mod:`~repro.core.kernel` — the compiled batch-scoring kernel
  (vectorised one-pass ranking, top-k pruning, incremental rescoring);
* :mod:`~repro.core.scorer` — the high-level :class:`ContextAwareScorer`;
* :mod:`~repro.core.pruning` — Section 6 rule/document pruning;
* :mod:`~repro.core.preference_view` — the "big preference view";
* :mod:`~repro.core.naive_view` — the paper's exponential view-based
  implementation, reproduced on both storage backends (benchmark E3);
* :mod:`~repro.core.ranker` — union/mixed query integration;
* :mod:`~repro.core.explain` — per-rule motivations and event lineage.
"""

from repro.core.explain import explain_document_events, explain_ranking, explain_score
from repro.core.kernel import (
    CompiledCandidates,
    LazyContributions,
    ScoringKernel,
    compile_candidates,
    rank_top_k_batch,
    score_batch,
    score_documents_batch,
)
from repro.core.naive_view import (
    MAX_NAIVE_RULES,
    naive_scores_python,
    naive_scores_sqlite,
    subset_coefficient,
)
from repro.core.preference_view import PREFERENCE_VIEW_TABLE, PreferenceView
from repro.core.problem import (
    DocumentBinding,
    RuleBinding,
    ScoringProblem,
    bind_documents,
    bind_problem,
    bind_rules,
)
from repro.core.pruning import (
    PruneReport,
    all_miss_score,
    prune_rules,
    split_trivial_documents,
)
from repro.core.ranker import ContextAwareRanker, RankedDocument
from repro.core.scorer import ContextAwareScorer
from repro.core.scoring import (
    SCORING_METHODS,
    DocumentScore,
    RuleContribution,
    enumeration_score,
    exact_event_score,
    factorised_score,
    score_certain,
    score_document,
)

__all__ = [
    "CompiledCandidates",
    "ContextAwareRanker",
    "ContextAwareScorer",
    "DocumentBinding",
    "DocumentScore",
    "LazyContributions",
    "ScoringKernel",
    "MAX_NAIVE_RULES",
    "PREFERENCE_VIEW_TABLE",
    "PreferenceView",
    "PruneReport",
    "RankedDocument",
    "RuleBinding",
    "RuleContribution",
    "SCORING_METHODS",
    "ScoringProblem",
    "all_miss_score",
    "bind_documents",
    "bind_problem",
    "bind_rules",
    "compile_candidates",
    "enumeration_score",
    "exact_event_score",
    "explain_document_events",
    "explain_ranking",
    "explain_score",
    "factorised_score",
    "naive_scores_python",
    "naive_scores_sqlite",
    "prune_rules",
    "rank_top_k_batch",
    "score_batch",
    "score_certain",
    "score_documents_batch",
    "score_document",
    "split_trivial_documents",
    "subset_coefficient",
]
