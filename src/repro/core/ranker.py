"""Query integration: ordering user query results by preference score.

Section 5: "we have to adapt the query results of the user by ordering
the tuples in the result, based on the probability from the big
preference view.  This is done by doing a union of the preference view
and the results of [the] query of the user, where the results are
ordered by the probabilities in the preference view. [...] in this
naive approach, the probability of the query-dependent part is either
1, if the tuple was contained in the user query, or 0 if it was not."

:class:`ContextAwareRanker` implements that naive integration (binary
query relevance times preference score) and, as the Section 6
"weighting of the query-independent and query-dependent part"
extension, a smoothed mixture with graded IR scores (see
:mod:`repro.ir.combine`).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.storage.database import Database
from repro.storage.sql import ResultSet, SqlSession
from repro.core.preference_view import PreferenceView

__all__ = ["RankedDocument", "ContextAwareRanker", "mix_scores"]


def mix_scores(query_dependent: float, preference: float, mixing_weight: float) -> float:
    """The Section 6 log-linear mixture ``qd^λ · pref^(1-λ)``, with the
    λ = 0 and λ = 1 boundaries defined explicitly.

    * ``mixing_weight == 0.0`` is *pure context*: the combined score is
      the preference score, and the query-dependent part is ignored
      entirely — including for documents absent from the query result
      (no gating, and no reliance on Python's ``0.0 ** 0.0 == 1.0``).
    * ``mixing_weight == 1.0`` is *pure IR*: the combined score is the
      query-dependent score, and the preference part is ignored — a
      document the query missed scores 0 even with a perfect preference
      score.
    * For ``0 < λ < 1`` a zero in either part gates the document to 0
      (both parts must hold, as in the naive union).
    """
    if not 0.0 <= mixing_weight <= 1.0:
        raise ValueError(f"mixing weight must be in [0, 1], got {mixing_weight!r}")
    if mixing_weight == 0.0:
        return preference
    if mixing_weight == 1.0:
        return query_dependent
    if query_dependent <= 0.0 or preference <= 0.0:
        return 0.0
    return (query_dependent ** mixing_weight) * (preference ** (1.0 - mixing_weight))


@dataclass(frozen=True)
class RankedDocument:
    """A document with its final (combined) relevance."""

    document: str
    combined: float
    query_dependent: float
    preference: float

    def __str__(self) -> str:
        return f"{self.document}: {self.combined:.4f} (qd={self.query_dependent:.3f}, pref={self.preference:.3f})"


@dataclass
class ContextAwareRanker:
    """Combines the preference view with user queries.

    Parameters
    ----------
    view:
        The preference view (refreshed on demand).
    database:
        The database user queries run against.
    data_table / id_column:
        The table the paper's example query targets (``Programs``) and
        the column joining its rows to scored documents.
    """

    view: PreferenceView
    database: Database
    data_table: str
    id_column: str = "id"

    def session(self) -> SqlSession:
        """A SQL session with ``preferencescore`` attached."""
        session = SqlSession(self.database)
        self.view.attach_to_session(session, self.data_table, self.id_column)
        return session

    def execute(self, sql: str, refresh: bool = True) -> ResultSet:
        """Refresh the view and run a user query (the paper's pipeline)."""
        if refresh:
            self.view.refresh()
        return self.session().execute(sql)

    # -- ranking semantics ------------------------------------------------
    def rank_query_results(self, query_documents: list[str], refresh: bool = True) -> list[RankedDocument]:
        """The paper's naive union: binary query relevance x preference.

        Documents in the query result carry query-dependent probability
        1 and are ordered by preference score; everything else scores 0
        and is omitted.
        """
        if refresh:
            self.view.refresh()
        ranked = []
        in_query = set(query_documents)
        for score in self.view.ranking():
            if score.document in in_query:
                ranked.append(
                    RankedDocument(score.document, score.value, 1.0, score.value)
                )
        return ranked

    def rank_mixed(
        self,
        query_scores: dict[str, float],
        mixing_weight: float = 0.5,
        refresh: bool = True,
    ) -> list[RankedDocument]:
        """Section 6 extension: smooth the two parts instead of gating.

        ``combined = qd^lambda * pref^(1-lambda)`` (log-linear mixture);
        ``mixing_weight`` = lambda is the weight of the query-dependent
        part.  The boundaries are exact: ``mixing_weight=1`` is pure IR
        (documents absent from ``query_scores`` score 0), ``0`` is pure
        context (``query_scores`` is ignored entirely).  See
        :func:`mix_scores` for the full boundary semantics.
        """
        if not 0.0 <= mixing_weight <= 1.0:
            raise ValueError(f"mixing weight must be in [0, 1], got {mixing_weight!r}")
        if refresh:
            self.view.refresh()
        ranked = []
        for score in self.view.ranking():
            query_dependent = query_scores.get(score.document, 0.0)
            combined = mix_scores(query_dependent, score.value, mixing_weight)
            ranked.append(RankedDocument(score.document, combined, query_dependent, score.value))
        ranked.sort(key=lambda r: (-r.combined, r.document))
        return ranked
