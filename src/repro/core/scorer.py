"""The context-aware scorer: the library's main entry point.

Wraps problem binding, pruning and the scoring methods into one object
that answers "what is ``P(D=d | U=u_sit)`` for these candidates, right
now?" — recomputing as the context develops.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Sequence

from repro.errors import ScoringError
from repro.events.space import EventSpace
from repro.dl.abox import ABox
from repro.dl.concepts import Concept
from repro.dl.instances import retrieve
from repro.dl.tbox import TBox
from repro.dl.vocabulary import Individual
from repro.rules.repository import RuleRepository
from repro.rules.rule import PreferenceRule
from repro.core.problem import ScoringProblem, bind_problem
from repro.core.pruning import PruneReport, all_miss_score, prune_rules, split_trivial_documents
from repro.core.scoring import SCORING_METHODS, DocumentScore, score_document

__all__ = ["ContextAwareScorer"]


@dataclass
class ContextAwareScorer:
    """Scores documents against the user's current context.

    Parameters
    ----------
    abox / tbox / space:
        The knowledge base (static facts plus dynamic context).
    user:
        The situated user individual.
    repository:
        The scored preference rules.
    method:
        ``"factorised"`` (default), ``"enumeration"`` (the paper's
        naive math) or ``"exact"`` (correlation-aware).
    rule_threshold:
        Context-probability threshold for rule pruning (0 = lossless).
    prune_documents:
        Share the all-miss score across candidates that satisfy no
        preference instead of scoring them individually.

    Examples
    --------
    >>> # See repro.workloads.tvtouch.build_tvtouch for a ready-made setup.
    """

    abox: ABox
    tbox: TBox
    user: Individual
    repository: RuleRepository
    space: EventSpace | None = None
    method: str = "factorised"
    rule_threshold: float = 0.0
    prune_documents: bool = True
    _last_report: PruneReport | None = field(default=None, repr=False)

    def __post_init__(self) -> None:
        if self.method not in SCORING_METHODS:
            raise ScoringError(
                f"unknown scoring method {self.method!r}; choose from {sorted(SCORING_METHODS)}"
            )

    # -- problem construction ---------------------------------------------
    def bind(self, documents: Iterable[Individual | str]) -> ScoringProblem:
        """Bind the repository and candidates to the current context."""
        problem = bind_problem(
            self.abox, self.tbox, self.user, self.repository, documents, self.space
        )
        return prune_rules(problem, self.rule_threshold)

    def context_covered(self) -> bool:
        """Does any rule apply in the current context? (Section 4.1.)"""
        return self.repository.covers_context(self.abox, self.tbox, self.user)

    @property
    def last_prune_report(self) -> PruneReport | None:
        return self._last_report

    # -- scoring ----------------------------------------------------------
    def score(self, documents: Iterable[Individual | str]) -> list[DocumentScore]:
        """Score candidates; order follows the input."""
        documents = list(documents)
        problem = self.bind(documents)
        dropped = len(self.repository) - problem.rule_count

        results: dict[str, DocumentScore] = {}
        if self.prune_documents:
            interesting, trivial = split_trivial_documents(problem)
            shared = all_miss_score(problem.bindings)
            for document in trivial:
                results[document.document.name] = DocumentScore(
                    document.document.name, shared, (), self.method
                )
        else:
            interesting, trivial = list(problem.documents), []

        for document in interesting:
            results[document.document.name] = score_document(problem, document, self.method)

        self._last_report = PruneReport(
            kept_rules=problem.rule_count,
            dropped_rules=dropped,
            trivial_documents=len(trivial),
            scored_documents=len(interesting),
        )

        ordered = []
        for document in documents:
            name = document.name if isinstance(document, Individual) else document
            ordered.append(results[name])
        return ordered

    def score_map(self, documents: Iterable[Individual | str]) -> dict[str, float]:
        """Scores keyed by document name."""
        return {score.document: score.value for score in self.score(documents)}

    def rank(self, documents: Iterable[Individual | str]) -> list[DocumentScore]:
        """Scores sorted by decreasing probability (ties by name)."""
        scores = self.score(documents)
        return sorted(scores, key=lambda s: (-s.value, s.document))

    def score_concept_members(self, concept: Concept) -> list[DocumentScore]:
        """Rank every ABox individual that (possibly) satisfies ``concept``.

        The common "rank all TvPrograms" call: candidates come from
        instance retrieval over the target concept.
        """
        members = retrieve(self.abox, self.tbox, concept)
        return self.rank(sorted(members, key=lambda individual: individual.name))

    # -- maintenance ------------------------------------------------------
    def add_rule(self, rule: PreferenceRule) -> None:
        self.repository.add(rule)

    def with_method(self, method: str) -> "ContextAwareScorer":
        """A scorer sharing this knowledge base but using another method."""
        return ContextAwareScorer(
            abox=self.abox,
            tbox=self.tbox,
            user=self.user,
            repository=self.repository,
            space=self.space,
            method=method,
            rule_threshold=self.rule_threshold,
            prune_documents=self.prune_documents,
        )


def as_individuals(documents: Sequence[Individual | str]) -> list[Individual]:
    """Normalise a mixed document list to individuals."""
    return [doc if isinstance(doc, Individual) else Individual(doc) for doc in documents]
