"""The context-aware scorer: the library's main entry point.

Wraps problem binding, pruning and the scoring methods into one object
that answers "what is ``P(D=d | U=u_sit)`` for these candidates, right
now?" — recomputing as the context develops.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Sequence

from repro.errors import ScoringError
from repro.events.space import EventSpace
from repro.dl.abox import ABox
from repro.dl.concepts import Concept
from repro.dl.tbox import TBox
from repro.dl.vocabulary import Individual
from repro.reason import CompiledKB, compiled_kb
from repro.rules.repository import RuleRepository
from repro.rules.rule import PreferenceRule
from repro.core.kernel import ScoringKernel
from repro.core.problem import ScoringProblem, bind_problem
from repro.core.pruning import PruneReport, all_miss_score, prune_rules, split_trivial_documents
from repro.core.scoring import SCORING_METHODS, DocumentScore, score_document

__all__ = ["ContextAwareScorer"]


@dataclass
class ContextAwareScorer:
    """Scores documents against the user's current context.

    Parameters
    ----------
    abox / tbox / space:
        The knowledge base (static facts plus dynamic context).
    user:
        The situated user individual.
    repository:
        The scored preference rules.
    method:
        ``"factorised"`` (default), ``"enumeration"`` (the paper's
        naive math) or ``"exact"`` (correlation-aware).
    rule_threshold:
        Context-probability threshold for rule pruning (0 = lossless).
    prune_documents:
        Share the all-miss score across candidates that satisfy no
        preference instead of scoring them individually.
    kb:
        The compiled reasoner binding goes through.  Defaults to the
        shared :func:`repro.reason.compiled_kb` for the knowledge base,
        so scorers over the same world (including multi-user group
        members) share one membership/probability memo per epoch.

    Examples
    --------
    >>> # See repro.workloads.tvtouch.build_tvtouch for a ready-made setup.
    """

    abox: ABox
    tbox: TBox
    user: Individual
    repository: RuleRepository
    space: EventSpace | None = None
    method: str = "factorised"
    rule_threshold: float = 0.0
    prune_documents: bool = True
    kb: CompiledKB | None = None
    _last_report: PruneReport | None = field(default=None, repr=False)
    _last_kernel: ScoringKernel | None = field(default=None, repr=False)

    def __post_init__(self) -> None:
        if self.method not in SCORING_METHODS:
            raise ScoringError(
                f"unknown scoring method {self.method!r}; choose from {sorted(SCORING_METHODS)}"
            )
        if self.kb is None:
            self.kb = compiled_kb(self.abox, self.tbox, self.space)

    # -- problem construction ---------------------------------------------
    def bind(self, documents: Iterable[Individual | str]) -> ScoringProblem:
        """Bind the repository and candidates to the current context."""
        problem = bind_problem(
            self.abox, self.tbox, self.user, self.repository, documents, self.space,
            kb=self.kb,
        )
        return prune_rules(problem, self.rule_threshold)

    def context_covered(self) -> bool:
        """Does any rule apply in the current context? (Section 4.1.)"""
        return self.repository.covers_context(self.abox, self.tbox, self.user)

    @property
    def last_prune_report(self) -> PruneReport | None:
        return self._last_report

    @property
    def last_kernel(self) -> ScoringKernel | None:
        """The kernel compiled by the last fast-path :meth:`score` call.

        ``None`` when the last call went through a reference method
        (``enumeration`` / ``exact``).  The engine's incremental
        rescoring basis (:mod:`repro.engine.basis`) is built from this.
        """
        return self._last_kernel

    # -- scoring ----------------------------------------------------------
    def score(self, documents: Iterable[Individual | str]) -> list[DocumentScore]:
        """Score candidates; order follows the input.

        Repeated candidates are bound and scored once and share one
        :class:`DocumentScore`.  The ``factorised`` method runs on the
        compiled batch kernel (:class:`~repro.core.kernel.ScoringKernel`);
        ``enumeration`` and ``exact`` keep the per-document reference
        path.
        """
        names = [
            document.name if isinstance(document, Individual) else document
            for document in documents
        ]
        unique_names = list(dict.fromkeys(names))
        if self.method == "factorised":
            results = self._score_with_kernel(unique_names)
        else:
            results = self._score_with_reference(unique_names)
        return [results[name] for name in names]

    def _compile_kernel(self, unique_names: list[str]) -> ScoringKernel:
        """Bind and compile ``unique_names``, recording report + kernel."""
        problem = bind_problem(
            self.abox, self.tbox, self.user, self.repository, unique_names, self.space,
            kb=self.kb,
        )
        kernel = ScoringKernel.compile(problem, rule_threshold=self.rule_threshold)
        trivial = len(kernel.trivial_rows()) if self.prune_documents else 0
        self._last_report = PruneReport(
            kept_rules=len(kernel.kept_rules),
            dropped_rules=len(self.repository) - len(kernel.kept_rules),
            trivial_documents=trivial,
            scored_documents=len(unique_names) - trivial,
        )
        self._last_kernel = kernel
        return kernel

    def _score_with_kernel(self, unique_names: list[str]) -> dict[str, DocumentScore]:
        """The batch path: compile once, score all rows in one pass."""
        kernel = self._compile_kernel(unique_names)
        scored = kernel.score_documents(
            prune_documents=self.prune_documents, method=self.method
        )
        return {score.document: score for score in scored}

    def _score_with_reference(self, unique_names: list[str]) -> dict[str, DocumentScore]:
        """The per-document oracle path (enumeration / exact methods)."""
        problem = self.bind(unique_names)
        dropped = len(self.repository) - problem.rule_count

        results: dict[str, DocumentScore] = {}
        if self.prune_documents:
            interesting, trivial = split_trivial_documents(problem)
            shared = all_miss_score(problem.bindings)
            for document in trivial:
                results[document.document.name] = DocumentScore(
                    document.document.name, shared, (), self.method
                )
        else:
            interesting, trivial = list(problem.documents), []

        for document in interesting:
            results[document.document.name] = score_document(problem, document, self.method)

        self._last_report = PruneReport(
            kept_rules=problem.rule_count,
            dropped_rules=dropped,
            trivial_documents=len(trivial),
            scored_documents=len(interesting),
        )
        self._last_kernel = None
        return results

    def score_map(self, documents: Iterable[Individual | str]) -> dict[str, float]:
        """Scores keyed by document name."""
        return {score.document: score.value for score in self.score(documents)}

    def rank(self, documents: Iterable[Individual | str]) -> list[DocumentScore]:
        """Scores sorted by decreasing probability (ties by name)."""
        scores = self.score(documents)
        return sorted(scores, key=lambda s: (-s.value, s.document))

    def rank_top_k(self, documents: Iterable[Individual | str], k: int) -> list[DocumentScore]:
        """The best ``k`` candidates without fully scoring every one.

        On the kernel path the Section 6 upper bound abandons documents
        that cannot enter the current top k; the result is exactly
        ``self.rank(documents)[:k]``.  Reference methods fall back to
        the full ranking.
        """
        if k < 1:
            raise ScoringError(f"top-k needs a positive k, got {k!r}")
        if self.method != "factorised":
            return self.rank(documents)[:k]
        names = [
            document.name if isinstance(document, Individual) else document
            for document in documents
        ]
        kernel = self._compile_kernel(list(dict.fromkeys(names)))
        return kernel.rank_top_k(
            k, prune_documents=self.prune_documents, method=self.method
        )

    def score_concept_members(self, concept: Concept) -> list[DocumentScore]:
        """Rank every ABox individual that (possibly) satisfies ``concept``.

        The common "rank all TvPrograms" call: candidates come from
        set-at-a-time instance retrieval over the target concept,
        through the scorer's compiled reasoner.
        """
        kb = self.kb if self.kb is not None else compiled_kb(self.abox, self.tbox, self.space)
        members = kb.retrieve(concept)
        return self.rank(sorted(members, key=lambda individual: individual.name))

    # -- maintenance ------------------------------------------------------
    def add_rule(self, rule: PreferenceRule) -> None:
        self.repository.add(rule)

    def with_method(self, method: str) -> "ContextAwareScorer":
        """A scorer sharing this knowledge base but using another method."""
        return ContextAwareScorer(
            abox=self.abox,
            tbox=self.tbox,
            user=self.user,
            repository=self.repository,
            space=self.space,
            method=method,
            rule_threshold=self.rule_threshold,
            prune_documents=self.prune_documents,
            kb=self.kb,
        )


def as_individuals(documents: Sequence[Individual | str]) -> list[Individual]:
    """Normalise a mixed document list to individuals."""
    return [doc if isinstance(doc, Individual) else Individual(doc) for doc in documents]
