"""Numeric backend selection: numpy when available, pure python otherwise.

The kernel compiles scoring problems into flat numeric arrays; whether
those arrays are numpy ``ndarray``s or plain ``list``s is decided here,
once, at compile time.  The ``REPRO_KERNEL_BACKEND`` environment
variable forces a backend (``"python"`` pins the fallback even when
numpy is importable — used by the property tests and benchmark E10 to
exercise both paths on the same machine).

The environment is consulted **once per process**: the first default
resolution caches its answer, so hot-path callers (`compile`, the
relevance combiners, batch scoring) never pay an ``os.environ`` read
per request.  Tests that flip ``REPRO_KERNEL_BACKEND`` mid-process
must call :func:`reset_backend` to drop the cached choice.
"""

from __future__ import annotations

import os
from typing import Optional

from repro.errors import ScoringError

__all__ = [
    "BACKEND_ENV",
    "BACKENDS",
    "backend_name",
    "numpy_or_none",
    "reset_backend",
    "resolve_backend",
]

#: Environment override: "numpy" or "python".
BACKEND_ENV = "REPRO_KERNEL_BACKEND"

#: The recognised backend names.
BACKENDS = ("numpy", "python")

_NUMPY_CACHE: list = []  # [module | None], filled on first use

_DEFAULT_CACHE: list = []  # [module | None], the env-derived default


def numpy_or_none():
    """The numpy module, or None when it is not importable."""
    if not _NUMPY_CACHE:
        try:
            import numpy  # noqa: PLC0415 - optional dependency probe
        except ImportError:  # pragma: no cover - depends on the environment
            numpy = None
        _NUMPY_CACHE.append(numpy)
    return _NUMPY_CACHE[0]


def reset_backend() -> None:
    """Drop the cached default so the next resolution re-reads the
    environment (test hook; never needed in production processes)."""
    _DEFAULT_CACHE.clear()


def _resolve_choice(choice: Optional[str]):
    if choice is None:
        return numpy_or_none()
    if choice not in BACKENDS:
        raise ScoringError(
            f"unknown kernel backend {choice!r}; choose from {list(BACKENDS)}"
        )
    if choice == "python":
        return None
    module = numpy_or_none()
    if module is None:
        raise ScoringError("kernel backend 'numpy' requested but numpy is not importable")
    return module


def resolve_backend(preferred: Optional[str] = None):
    """The numpy module to compile against, or None for the fallback.

    ``preferred`` (or the ``REPRO_KERNEL_BACKEND`` environment
    variable) may name a backend explicitly; asking for numpy when it
    is not importable is an error rather than a silent downgrade.
    """
    if preferred is not None:
        return _resolve_choice(preferred)
    if not _DEFAULT_CACHE:
        # Cache only a successful resolution: a bad env value keeps
        # raising on every call instead of poisoning the process.
        _DEFAULT_CACHE.append(_resolve_choice(os.environ.get(BACKEND_ENV)))
    return _DEFAULT_CACHE[0]


def backend_name(preferred: Optional[str] = None) -> str:
    """The name of the backend :func:`resolve_backend` would pick."""
    return "numpy" if resolve_backend(preferred) is not None else "python"
