"""Flat-array loops for the pure-python kernel backend.

Each rule's equation-(4) factor is linear in the document's preference
probability ``p_f``::

    factor = (1 - p_g) + p_g * (p_f * sigma + (1 - p_f) * (1 - sigma))
           = a + b * p_f,   a = (1 - p_g) + p_g * (1 - sigma),
                            b = p_g * (2 * sigma - 1)

so a document's score is a fused multiply-add chain over the compiled
coefficient list — no dataclasses, no per-rule allocation.  The numpy
backend computes the same ``a + b * p_f`` columns vectorised; these
loops are the fallback and are also the reference for the top-k
pruning logic (Section 6's upper bound).
"""

from __future__ import annotations

import heapq
import math
from typing import Iterable, Sequence

__all__ = [
    "TOPK_PRUNE_SLACK",
    "batch_row_scores",
    "batch_topk_survivors",
    "row_scores",
    "topk_survivors",
    "log_linear_rows",
]

#: Relative slack on the top-k prune threshold.  The running prefix
#: product and the precomputed suffix bounds associate multiplications
#: differently than the full score, so a candidate whose exact score
#: *ties* the current k-th best can see its bound round a few ulps
#: below the threshold — and name tie-breaking means tied candidates
#: must never be abandoned.  Accumulated rounding error is ~n·2^-52;
#: 1e-9 is far above that and costs no meaningful pruning power.
TOPK_PRUNE_SLACK = 1e-9


def row_scores(
    data: Sequence[float],
    row_count: int,
    rule_count: int,
    coeffs: Sequence[tuple[int, float, float]],
) -> list[float]:
    """Clamped equation-(4) products for every row of a flat matrix.

    ``data`` is row-major ``row_count x rule_count``; ``coeffs`` holds
    ``(column, a, b)`` per *kept* rule (pruned rules contribute their
    implicit factor 1 by absence).
    """
    values = []
    append = values.append
    for row in range(row_count):
        base = row * rule_count
        score = 1.0
        for column, a, b in coeffs:
            score *= a + b * data[base + column]
        append(min(1.0, max(0.0, score)))
    return values


def topk_survivors(
    data: Sequence[float],
    rule_count: int,
    coeffs: Sequence[tuple[int, float, float]],
    suffix_bounds: Sequence[float],
    rows: Iterable[int],
    k: int,
    seeds: Iterable[float] = (),
) -> list[tuple[int, float]]:
    """Rows that could not be excluded from the top ``k``, fully scored.

    Implements the Section 6 upper bound: before multiplying in rule
    ``j``'s factor, a row whose partial product times
    ``suffix_bounds[j]`` (the product of the remaining rules' maximal
    factors) falls below the current k-th best score — by more than the
    rounding-safe :data:`TOPK_PRUNE_SLACK`, so exact ties survive for
    name tie-breaking — cannot reach the top k and is abandoned.
    ``seeds`` pre-populates the
    threshold heap (e.g. with the shared all-miss score of trivial
    documents).  Returns ``(row, score)`` pairs; every row that belongs
    in the true top k is guaranteed to be present.
    """
    heap: list[float] = []
    for value in seeds:
        heapq.heappush(heap, value)
        if len(heap) > k:
            heapq.heappop(heap)
    survivors: list[tuple[int, float]] = []
    push, pop = heapq.heappush, heapq.heappop
    keep_factor = 1.0 - TOPK_PRUNE_SLACK
    for row in rows:
        base = row * rule_count
        score = 1.0
        full = len(heap) == k
        abandoned = False
        for j, (column, a, b) in enumerate(coeffs):
            if full and score * suffix_bounds[j] < heap[0] * keep_factor:
                abandoned = True
                break
            score *= a + b * data[base + column]
        if abandoned:
            continue
        score = min(1.0, max(0.0, score))
        survivors.append((row, score))
        push(heap, score)
        if len(heap) > k:
            pop(heap)
    return survivors


def batch_row_scores(
    data: Sequence[float],
    row_count: int,
    rule_count: int,
    coeff_sets: Sequence[Sequence[tuple[int, float, float]]],
) -> list[list[float]]:
    """:func:`row_scores` for many coefficient sets over one matrix.

    The batched shape of the fused loop: each matrix row is walked
    *once* and every batch-mate's factor chain is advanced against it,
    so N concurrent requests sharing a compiled ``P(f)`` matrix pay one
    pass of row reads instead of N.  Each mate's multiplication order
    is identical to the sequential :func:`row_scores` (its own kept
    columns, in index order), so per-mate results are bit-identical to
    scoring alone.
    """
    values: list[list[float]] = [[] for _ in coeff_sets]
    appends = [column.append for column in values]
    mates = list(zip(appends, coeff_sets))
    for row in range(row_count):
        base = row * rule_count
        for append, coeffs in mates:
            score = 1.0
            for column, a, b in coeffs:
                score *= a + b * data[base + column]
            append(min(1.0, max(0.0, score)))
    return values


def batch_topk_survivors(
    data: Sequence[float],
    rule_count: int,
    coeff_sets: Sequence[Sequence[tuple[int, float, float]]],
    suffix_bound_sets: Sequence[Sequence[float]],
    rows: Iterable[int],
    ks: Sequence[int],
    seed_sets: Sequence[Iterable[float]] = (),
) -> list[list[tuple[int, float]]]:
    """:func:`topk_survivors` for many requests over one matrix.

    Rows are walked once; each batch-mate keeps its own threshold heap
    and Section-6 early abandon, so pruning power per mate matches the
    sequential pass while the row reads are shared.  Returns one
    ``(row, score)`` survivor list per mate.
    """
    heaps: list[list[float]] = [[] for _ in coeff_sets]
    push, pop = heapq.heappush, heapq.heappop
    for index, seeds in enumerate(seed_sets):
        heap, k = heaps[index], ks[index]
        for value in seeds:
            push(heap, value)
            if len(heap) > k:
                pop(heap)
    survivor_sets: list[list[tuple[int, float]]] = [[] for _ in coeff_sets]
    keep_factor = 1.0 - TOPK_PRUNE_SLACK
    mates = list(zip(coeff_sets, suffix_bound_sets, heaps, ks, survivor_sets))
    for row in rows:
        base = row * rule_count
        for coeffs, suffix_bounds, heap, k, survivors in mates:
            score = 1.0
            full = len(heap) == k
            abandoned = False
            for j, (column, a, b) in enumerate(coeffs):
                if full and score * suffix_bounds[j] < heap[0] * keep_factor:
                    abandoned = True
                    break
                score *= a + b * data[base + column]
            if abandoned:
                continue
            score = min(1.0, max(0.0, score))
            survivors.append((row, score))
            push(heap, score)
            if len(heap) > k:
                pop(heap)
    return survivor_sets


def log_linear_rows(
    query_scores: Sequence[float],
    preference_scores: Sequence[float],
    mixing_weight: float,
    floor: float,
) -> list[float]:
    """The IR log-linear mixture over parallel score rows (fallback path)."""
    lam = mixing_weight
    complement = 1.0 - lam
    log = math.log
    return [
        lam * log(qd if qd > floor else floor) + complement * log(qi if qi > floor else floor)
        for qd, qi in zip(query_scores, preference_scores)
    ]
