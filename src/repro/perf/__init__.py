"""Low-level performance helpers behind the scoring kernel.

:mod:`repro.perf.backend` picks the numeric backend — numpy when it is
importable (and not overridden), a pure-python fallback otherwise — and
:mod:`repro.perf.flatops` holds the flat-array loops that fallback runs
on.  Nothing in here knows about rules, documents or events: the kernel
(:mod:`repro.core.kernel`) compiles the scoring problem down to the
coefficient arrays these helpers consume.
"""

from repro.perf.backend import (
    BACKEND_ENV,
    BACKENDS,
    backend_name,
    numpy_or_none,
    reset_backend,
    resolve_backend,
)
from repro.perf.flatops import (
    batch_row_scores,
    batch_topk_survivors,
    log_linear_rows,
    row_scores,
    topk_survivors,
)

__all__ = [
    "BACKEND_ENV",
    "BACKENDS",
    "backend_name",
    "batch_row_scores",
    "batch_topk_survivors",
    "log_linear_rows",
    "numpy_or_none",
    "reset_backend",
    "resolve_backend",
    "row_scores",
    "topk_survivors",
]
