"""repro — reproduction of "Ranking Query Results using Context-Aware Preferences".

A from-scratch Python implementation of van Bunningen, Fokkinga, Apers
and Feng's ICDE 2007 context-aware preference ranking system, including
every substrate it depends on: a probabilistic event-expression engine,
a Description Logic layer, a probabilistic relational store with a mini
SQL front end, context/sensor simulation, user history with the paper's
sigma semantics, scored preference rules, the context-aware scorer and
ranker, a language-model IR baseline, preference mining, and multi-user
ranking.

Quickstart::

    from repro import (ContextAwareScorer, PreferenceView,
                       build_tvtouch, set_breakfast_weekend_context)

    world = build_tvtouch()
    set_breakfast_weekend_context(world)
    scorer = ContextAwareScorer(abox=world.abox, tbox=world.tbox,
                                user=world.user, repository=world.repository,
                                space=world.space)
    for score in scorer.rank(world.program_ids):
        print(score)   # channel5_news: 0.6006 ...

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-versus-measured record of every reproduced table and figure.
"""

from repro.core import (
    ContextAwareRanker,
    ContextAwareScorer,
    DocumentScore,
    PreferenceView,
    explain_ranking,
    explain_score,
)
from repro.dl import ABox, Concept, Individual, TBox, parse_concept
from repro.events import ALWAYS, NEVER, EventExpr, EventSpace, probability
from repro.history import Candidate, Episode, HistoryLog, estimate_sigma
from repro.ir import Corpus, LanguageModelRanker, combined_ranking
from repro.mining import MiningConfig, mine_rules
from repro.multiuser import GroupMember, GroupRanker
from repro.rules import PreferenceRule, RuleRepository, load_rules, parse_rules
from repro.storage import Database, SqliteBackend, SqlSession
from repro.workloads import (
    build_tvtouch,
    generate_test_database,
    sample_workday_mornings,
    set_breakfast_weekend_context,
)

__version__ = "1.0.0"

__all__ = [
    "ABox",
    "ALWAYS",
    "Candidate",
    "Concept",
    "ContextAwareRanker",
    "ContextAwareScorer",
    "Corpus",
    "Database",
    "DocumentScore",
    "Episode",
    "EventExpr",
    "EventSpace",
    "GroupMember",
    "GroupRanker",
    "HistoryLog",
    "Individual",
    "LanguageModelRanker",
    "MiningConfig",
    "NEVER",
    "PreferenceRule",
    "PreferenceView",
    "RuleRepository",
    "SqlSession",
    "SqliteBackend",
    "TBox",
    "__version__",
    "build_tvtouch",
    "combined_ranking",
    "estimate_sigma",
    "explain_ranking",
    "explain_score",
    "generate_test_database",
    "load_rules",
    "mine_rules",
    "parse_concept",
    "parse_rules",
    "probability",
    "sample_workday_mornings",
    "set_breakfast_weekend_context",
]
