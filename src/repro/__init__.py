"""repro — reproduction of "Ranking Query Results using Context-Aware Preferences".

A from-scratch Python implementation of van Bunningen, Fokkinga, Apers
and Feng's ICDE 2007 context-aware preference ranking system, including
every substrate it depends on: a probabilistic event-expression engine,
a Description Logic layer, a probabilistic relational store with a mini
SQL front end, context/sensor simulation, user history with the paper's
sigma semantics, scored preference rules, the context-aware scorer and
ranker, a language-model IR baseline, preference mining, and multi-user
ranking.

The canonical public API is the :class:`RankingEngine` facade: one
object owning the paper's whole pipeline (context capture → preference
view → ranked query results) over pluggable, protocol-typed backends,
with frozen request/response values and a per-context-signature cache
of the preference view.

Quickstart::

    from repro import (RankRequest, RankingEngine,
                       build_tvtouch, set_breakfast_weekend_context)

    world = build_tvtouch()
    set_breakfast_weekend_context(world)
    engine = RankingEngine.from_world(world)

    # Rank candidates by P(D=d | U=u_sit) under the current context.
    response = engine.rank(RankRequest(documents=world.program_ids))
    for item in response:
        print(item)          # channel5_news: 0.6006 ...

    # Or run the paper's SQL pipeline in one call.
    response = engine.rank(
        "SELECT name, preferencescore FROM Programs "
        "WHERE preferencescore > 0.5 ORDER BY preferencescore DESC")
    print(response.result.render())

Repeated requests under an unchanged context are served from the
engine's preference-view cache (``engine.cache_info()`` shows the
hits); changing the context or the rules invalidates it automatically.
Engines are assembled by :class:`EngineBuilder` — swap the scoring
method, the relevance strategy (naive union, smoothed mixture,
log-linear IR mixture, multi-user group aggregation) or any backend
without touching the call sites.  ``docs/API.md`` documents the facade
and the migration from the deprecated ``ContextAwareScorer`` /
``ContextAwareRanker`` entry points.

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-versus-measured record of every reproduced table and figure.
"""

import warnings as _warnings

# Defined before any submodule import: the service gateway derives its
# Server header from this, and importing it back from a partially
# initialised ``repro`` only works if it is already bound.
__version__ = "1.6.0"

from repro.cache import CacheAdapter, InMemoryCacheAdapter, NoCacheAdapter
from repro.core import (
    DocumentScore,
    PreferenceView,
    explain_ranking,
    explain_score,
)
from repro.dl import ABox, Concept, Individual, LayeredABox, TBox, parse_concept
from repro.engine import (
    AboxContext,
    ContextBackend,
    DatabaseStorage,
    EngineBuilder,
    GatedRelevance,
    GroupRelevance,
    LogLinearRelevance,
    MixedRelevance,
    PreferenceBackend,
    RankedItem,
    RankingEngine,
    RankRequest,
    RankResponse,
    RelevanceBackend,
    RepositoryPreferences,
    SensedContext,
    StorageBackend,
)
from repro.events import ALWAYS, NEVER, EventExpr, EventSpace, probability
from repro.history import Candidate, Episode, HistoryLog, estimate_sigma
from repro.ir import Corpus, LanguageModelRanker, combined_ranking
from repro.mining import MiningConfig, mine_rules
from repro.multiuser import GroupMember, GroupRanker
from repro.reason import CompiledKB, ReasonerSession, compiled_kb
from repro.reporting import ranking_table
from repro.rules import PreferenceRule, RuleRepository, load_rules, parse_rules
from repro.service import (
    CircuitBreaker,
    Deadline,
    DeadlineExceeded,
    FaultInjector,
    RankingService,
    ServiceConfig,
    ServiceRequest,
    ServiceResponse,
)
from repro.storage import Database, SqliteBackend, SqlSession
from repro.tenants import TenantRegistry, UserSession
from repro.workloads import (
    build_tvtouch,
    generate_test_database,
    sample_workday_mornings,
    set_breakfast_weekend_context,
)

#: Deprecated top-level names: still importable, but shimmed through
#: module ``__getattr__`` with a :class:`DeprecationWarning` pointing at
#: the engine facade.  The classes themselves live on (the engine wraps
#: them); only the top-level entry points are deprecated.
_DEPRECATED_SHIMS = {
    "ContextAwareScorer": (
        "repro.core",
        "assemble a repro.RankingEngine (EngineBuilder / RankingEngine.from_world) "
        "instead of constructing scorers directly",
    ),
    "ContextAwareRanker": (
        "repro.core",
        "use repro.RankingEngine with a relevance backend "
        "(gated / mixed / log_linear) instead",
    ),
}


def __getattr__(name: str):
    shim = _DEPRECATED_SHIMS.get(name)
    if shim is not None:
        module_name, hint = shim
        _warnings.warn(
            f"repro.{name} is deprecated; {hint}",
            DeprecationWarning,
            stacklevel=2,
        )
        import importlib

        return getattr(importlib.import_module(module_name), name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


def __dir__() -> list:
    return sorted(set(__all__) | set(globals()))


__all__ = [
    "ABox",
    "ALWAYS",
    "AboxContext",
    "CacheAdapter",
    "Candidate",
    "CompiledKB",
    "Concept",
    "ContextAwareRanker",
    "ContextAwareScorer",
    "ContextBackend",
    "Corpus",
    "Database",
    "DatabaseStorage",
    "DocumentScore",
    "EngineBuilder",
    "Episode",
    "EventExpr",
    "EventSpace",
    "GatedRelevance",
    "GroupMember",
    "GroupRanker",
    "GroupRelevance",
    "HistoryLog",
    "InMemoryCacheAdapter",
    "Individual",
    "LanguageModelRanker",
    "LayeredABox",
    "LogLinearRelevance",
    "MiningConfig",
    "MixedRelevance",
    "NEVER",
    "NoCacheAdapter",
    "PreferenceBackend",
    "PreferenceRule",
    "PreferenceView",
    "RankRequest",
    "RankResponse",
    "RankedItem",
    "RankingEngine",
    "CircuitBreaker",
    "Deadline",
    "DeadlineExceeded",
    "FaultInjector",
    "RankingService",
    "ReasonerSession",
    "RelevanceBackend",
    "RepositoryPreferences",
    "RuleRepository",
    "SensedContext",
    "ServiceConfig",
    "ServiceRequest",
    "ServiceResponse",
    "SqlSession",
    "SqliteBackend",
    "StorageBackend",
    "TBox",
    "TenantRegistry",
    "UserSession",
    "__version__",
    "build_tvtouch",
    "combined_ranking",
    "estimate_sigma",
    "explain_ranking",
    "explain_score",
    "generate_test_database",
    "load_rules",
    "compiled_kb",
    "mine_rules",
    "parse_concept",
    "parse_rules",
    "probability",
    "ranking_table",
    "sample_workday_mornings",
    "set_breakfast_weekend_context",
]
