"""Response-cache keys: stable digests of *what a ranked answer depends on*.

The paper's premise is that a ranked answer is a pure function of the
tenant's knowledge state and the query — between context changes there
is nothing request-specific left to compute.  "Predicting Preference
Flips in Commerce Search" (PAPERS.md) supplies the discipline: context
can flip a preference, so the cache key must carry the **full context
signature**, and a context mutation must make every previous key for
that tenant unreachable.

A response key is therefore::

    key = tenant id | view digest | query digest

* the **view digest** hashes the engine's view signature — context
  rendering (including static-knowledge epoch), TBox/space revisions,
  rule fingerprint, scoring configuration and target — exactly the key
  the engine's own view cache proves sufficient for score identity;
* the **query digest** hashes the canonicalised request shape
  (explicit candidate list, effective ``top_k``, ``explain``).

Invalidation is *by reachability*: any context flip changes the view
signature, so stale entries cannot be addressed at all (and, being
content-addressed, restoring an earlier context legitimately restores
its still-valid entries).  TTL and LRU in the adapter reclaim the
memory.

The :class:`ResponseKeyer` is the per-service **ledger** that makes
lookup possible *before* the tenant's session is resolved: it learns
``tenant → standing view digest`` and ``(tenant, context delta) →
view digest`` mappings from real engine fingerprints — the
``(knowledge epoch, signature)`` pairs captured inside the rank/install
critical sections — and applies them newest-epoch-wins, so thread
scheduling can never publish an older engine state over a newer one.
A lookup the ledger cannot answer is simply a miss; the fill after the
rank teaches it the true digest.  Direct session mutation *outside*
the service API (e.g. ``session.assert_fact`` on a handle you hold) is
invisible to the ledger — pair it with
:meth:`RankingService.invalidate_tenant`.
"""

from __future__ import annotations

import hashlib
import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Hashable, Iterable

from repro.engine.backends import parse_context_spec
from repro.errors import ReproError

__all__ = [
    "CanonicalContext",
    "KeyLookup",
    "ResponseKeyer",
    "canonical_context",
    "family_key",
    "response_key",
    "signature_digest",
]

#: A parsed, order-independent context delta: sorted (concept, prob).
CanonicalContext = tuple

#: Bound on remembered context-delta → digest mappings per tenant.
_MAX_DELTAS = 64


def canonical_context(specs: Iterable[str]) -> CanonicalContext:
    """``CONCEPT[:PROB]`` specs as a canonical, order-independent value.

    ``("Weekend", "Breakfast:1.0")`` and ``("Breakfast", "Weekend")``
    canonicalise identically — installs of either produce the same
    knowledge state, so they must share cache keys.  Raises the
    underlying :class:`~repro.errors.EngineConfigError` on a bad spec.
    """
    return tuple(sorted(parse_context_spec(str(spec)) for spec in specs))


def _digest(value: object) -> str:
    return hashlib.sha256(repr(value).encode("utf-8")).hexdigest()[:24]


def signature_digest(signature: Hashable) -> str:
    """A short stable digest of an engine view signature."""
    return _digest(signature)


def response_key(
    tenant: str,
    view_digest: str,
    documents: tuple[str, ...] | None,
    top_k: int | None,
    explain: bool,
) -> str:
    """The adapter key for one ``(tenant, view, query shape)`` triple."""
    return f"{tenant}|{view_digest}|{_digest((documents, top_k, explain))}"


def family_key(
    tenant: str,
    documents: tuple[str, ...] | None,
    top_k: int | None,
    explain: bool,
) -> str:
    """The view-digest-independent half of a response key.

    Every response key for one ``(tenant, query shape)`` pair shares
    this family whatever context the body was ranked under.  The
    degraded-mode path uses it to find a *digest-stale* body — the
    tenant's most recently filled answer to the same query — when the
    exact key cannot be served (engine down, breaker open, deadline
    blown).  Such a body may reflect an older context; the pipeline
    flags it ``"stale": true`` and bounds its age.
    """
    return f"{tenant}|{_digest((documents, top_k, explain))}"


@dataclass
class KeyLookup:
    """One resolved lookup attempt (everything the fill needs later).

    ``view_digest`` is the ledger's prediction of the engine state the
    request will rank under; when unlearned (None) the ``key`` falls
    back to a sentinel digest no fill can ever produce — a guaranteed
    miss, but one the adapter still *counts*, so the reported hit
    ratio reflects every cacheable request, not just the answerable
    ones.  ``needs_install`` marks a context-delta request whose
    cached body may be served only *after* the delta is installed as
    the tenant's standing context (the client-visible side effect of
    ``/rank`` with ``context=``).
    """

    tenant: str
    era: int
    canon: CanonicalContext | None
    canon_digest: str | None
    view_digest: str | None
    needs_install: bool
    documents: tuple[str, ...] | None
    top_k: int | None
    explain: bool

    @property
    def key(self) -> str:
        digest = self.view_digest if self.view_digest is not None else "unlearned"
        return response_key(
            self.tenant, digest, self.documents, self.top_k, self.explain
        )

    @property
    def family(self) -> str:
        return family_key(self.tenant, self.documents, self.top_k, self.explain)


class _TenantLedger:
    __slots__ = ("era", "standing_epoch", "standing_digest", "deltas")

    def __init__(self):
        self.era = 0
        self.standing_epoch = -1
        self.standing_digest: str | None = None
        self.deltas: dict[str, str] = {}


class ResponseKeyer:
    """The per-service ledger mapping tenants to learned view digests.

    Thread-safe under one small lock (operations are dict reads and
    writes).  ``max_tenants`` LRU-bounds remembered tenants; evicting a
    ledger entry only costs future lookups a relearning miss — the
    digests themselves are content-addressed, so a relearned mapping
    reaching an old cache entry is *correct* (equal signature ⇒ equal
    scores, the engine's own view-cache invariant).
    """

    def __init__(self, max_tenants: int = 16384):
        self._lock = threading.Lock()
        self._tenants: "OrderedDict[str, _TenantLedger]" = OrderedDict()
        self.max_tenants = max_tenants

    # -- the request path --------------------------------------------------
    def lookup(
        self,
        tenant: str,
        context: tuple[str, ...] | None,
        documents: tuple[str, ...] | None,
        top_k: int | None,
        explain: bool,
    ) -> KeyLookup | None:
        """Resolve a request to a (possibly unanswerable) cache key.

        Returns ``None`` when the context delta does not even parse —
        the pipeline's own pre-flight will reject the request; the
        cache stays out of error paths entirely.
        """
        canon: CanonicalContext | None = None
        canon_digest: str | None = None
        if context is not None:
            try:
                canon = canonical_context(context)
            except ReproError:
                return None
            canon_digest = _digest(canon)
        with self._lock:
            state = self._tenants.get(tenant)
            if state is not None:
                self._tenants.move_to_end(tenant)
            era = state.era if state is not None else 0
            standing = state.standing_digest if state is not None else None
            if canon_digest is None:
                view_digest = standing
                needs_install = False
            else:
                view_digest = state.deltas.get(canon_digest) if state is not None else None
                needs_install = view_digest is not None and view_digest != standing
        return KeyLookup(
            tenant=tenant,
            era=era,
            canon=canon,
            canon_digest=canon_digest,
            view_digest=view_digest,
            needs_install=needs_install,
            documents=documents,
            top_k=top_k,
            explain=explain,
        )

    def learn(self, lookup: KeyLookup, fingerprint: tuple) -> str | None:
        """Teach the ledger a real engine fingerprint; returns its digest.

        ``fingerprint`` is ``(knowledge epoch, view signature)`` captured
        inside the engine's critical section.  The standing mapping is
        applied newest-epoch-wins (concurrent rank/install learns for
        one tenant may land in any order); a learn whose lookup predates
        an invalidation (era mismatch) is discarded — returning ``None``
        tells the caller to skip the cache fill too.
        """
        epoch, signature = fingerprint
        view_digest = signature_digest(signature)
        with self._lock:
            state = self._tenants.get(tenant := lookup.tenant)
            if state is None:
                state = _TenantLedger()
                # A recreated ledger entry forgets its era; the doomed
                # in-flight learns era guards against are bounded by
                # request latency, so a fresh entry is safe to trust.
                state.era = lookup.era
                self._tenants[tenant] = state
                while len(self._tenants) > self.max_tenants:
                    self._tenants.popitem(last=False)
            else:
                self._tenants.move_to_end(tenant)
            if state.era != lookup.era:
                return None
            if epoch >= state.standing_epoch:
                state.standing_epoch = epoch
                state.standing_digest = view_digest
            if lookup.canon_digest is not None:
                if len(state.deltas) >= _MAX_DELTAS and lookup.canon_digest not in state.deltas:
                    state.deltas.clear()
                state.deltas[lookup.canon_digest] = view_digest
        return view_digest

    # -- invalidation ------------------------------------------------------
    def forget(self, tenant: str) -> None:
        """Drop everything learned about ``tenant`` (keeps the era fence).

        Called on session eviction and explicit invalidation: the next
        request relearns from a real fingerprint, and any learn still
        in flight from before the forget is fenced off by the era bump.
        """
        with self._lock:
            state = self._tenants.get(tenant)
            if state is None:
                return
            state.era += 1
            state.standing_epoch = -1
            state.standing_digest = None
            state.deltas.clear()

    def clear(self) -> None:
        with self._lock:
            for state in self._tenants.values():
                state.era += 1
                state.standing_epoch = -1
                state.standing_digest = None
                state.deltas.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._tenants)
