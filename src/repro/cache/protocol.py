"""The response-cache adapter protocol.

The serving pipeline treats its response cache as a pluggable backend
behind one small protocol (the shape merino-py gives its suggestion
cache: ``protocol.py`` / ``none.py`` / a real store), so deployments
choose a policy, not an implementation detail:

* :class:`~repro.cache.none.NoCacheAdapter` — the disabled backend;
  every lookup misses, every fill is dropped.  The pipeline also skips
  its cache stage entirely when ``adapter.enabled`` is false, so "no
  cache" costs nothing.
* :class:`~repro.cache.memory.InMemoryCacheAdapter` — a sharded
  LRU + TTL map with per-shard locks; the per-worker default for the
  serving fleet.

An adapter stores **rendered response bodies** (plain JSON-able dicts)
under opaque string keys derived by :mod:`repro.cache.keys` from
``(tenant id, engine view fingerprint, canonicalised query, top_k)``.
Because the fingerprint covers the tenant's whole context (plus rules,
knowledge epochs and scoring configuration), a context change moves
every affected request to a new key — stale entries become unreachable
by construction, and :meth:`CacheAdapter.invalidate_tenant` exists for
the explicit path (administrative purges, direct session mutation
outside the service API).

Stored bodies are shared between the filler and every later hit: they
must be treated as immutable (the pipeline copies the top-level dict
before decorating a hit).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Protocol, runtime_checkable

__all__ = ["CacheAdapter", "ResponseCacheInfo"]


@dataclass(frozen=True)
class ResponseCacheInfo:
    """Counters of one response-cache adapter (JSON-able via ``to_dict``).

    ``evictions`` counts LRU displacements, ``expiries`` entries that
    died of TTL on lookup, ``invalidations`` entries purged explicitly
    (per-tenant or ``clear``).
    """

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    expiries: int = 0
    invalidations: int = 0
    entries: int = 0
    max_entries: int = 0
    shards: int = 1
    ttl: float | None = None

    @property
    def hit_ratio(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def to_dict(self) -> dict:
        """The ``GET /metrics`` rendering of these counters."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "hit_ratio": self.hit_ratio,
            "evictions": self.evictions,
            "expiries": self.expiries,
            "invalidations": self.invalidations,
            "entries": self.entries,
            "max_entries": self.max_entries,
            "shards": self.shards,
            "ttl_seconds": self.ttl,
        }


@runtime_checkable
class CacheAdapter(Protocol):
    """What the serving pipeline requires of a response cache."""

    #: False for the no-op backend: the pipeline skips the cache stage
    #: (no key derivation, no ledger bookkeeping) when disabled.
    enabled: bool

    def get(self, key: str) -> dict | None:
        """The stored body for ``key`` (None on miss/expiry).

        Implementations count a hit or a miss; the returned dict is
        shared — callers must not mutate it.
        """
        ...

    def put(self, key: str, body: dict, *, tenant: str | None = None) -> None:
        """Store a rendered body, tagged with its tenant for purges."""
        ...

    def invalidate_tenant(self, tenant: str) -> int:
        """Purge every entry stored for ``tenant``; returns the count."""
        ...

    def clear(self) -> int:
        """Drop every entry; returns how many were live."""
        ...

    def info(self) -> ResponseCacheInfo:
        """Aggregate hit/miss/eviction/expiry counters."""
        ...
