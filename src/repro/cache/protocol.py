"""The response-cache adapter protocol.

The serving pipeline treats its response cache as a pluggable backend
behind one small protocol (the shape merino-py gives its suggestion
cache: ``protocol.py`` / ``none.py`` / a real store), so deployments
choose a policy, not an implementation detail:

* :class:`~repro.cache.none.NoCacheAdapter` — the disabled backend;
  every lookup misses, every fill is dropped.  The pipeline also skips
  its cache stage entirely when ``adapter.enabled`` is false, so "no
  cache" costs nothing.
* :class:`~repro.cache.memory.InMemoryCacheAdapter` — a sharded
  LRU + TTL map with per-shard locks; the per-worker default for the
  serving fleet.

An adapter stores **rendered response bodies** (plain JSON-able dicts)
under opaque string keys derived by :mod:`repro.cache.keys` from
``(tenant id, engine view fingerprint, canonicalised query, top_k)``.
Because the fingerprint covers the tenant's whole context (plus rules,
knowledge epochs and scoring configuration), a context change moves
every affected request to a new key — stale entries become unreachable
by construction, and :meth:`CacheAdapter.invalidate_tenant` exists for
the explicit path (administrative purges, direct session mutation
outside the service API).

Stored bodies are shared between the filler and every later hit: they
must be treated as immutable (the pipeline copies the top-level dict
before decorating a hit).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Protocol, runtime_checkable

__all__ = ["CacheAdapter", "ResponseCacheInfo", "StaleHit"]


@dataclass(frozen=True)
class StaleHit:
    """One degraded-mode answer from :meth:`CacheAdapter.get_stale`.

    ``age`` is how stale the body is, in seconds: time past TTL expiry
    for an expired entry, time since storage for a digest-stale family
    fallback (0.0 for a fresh exact body).  ``expired`` marks a body
    past its TTL (as opposed to merely digest-stale); ``exact``
    distinguishes the request's own key from a family fallback (same
    tenant and query shape, different — older — context digest).
    """

    body: dict
    age: float
    expired: bool
    exact: bool


@dataclass(frozen=True)
class ResponseCacheInfo:
    """Counters of one response-cache adapter (JSON-able via ``to_dict``).

    ``evictions`` counts LRU displacements, ``expiries`` entries that
    died of TTL on lookup, ``invalidations`` entries purged explicitly
    (per-tenant or ``clear``); ``stale_hits``/``stale_misses`` count
    the degraded-mode :meth:`CacheAdapter.get_stale` probes.
    """

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    expiries: int = 0
    invalidations: int = 0
    entries: int = 0
    max_entries: int = 0
    shards: int = 1
    ttl: float | None = None
    stale_hits: int = 0
    stale_misses: int = 0

    @property
    def hit_ratio(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def to_dict(self) -> dict:
        """The ``GET /metrics`` rendering of these counters."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "hit_ratio": self.hit_ratio,
            "evictions": self.evictions,
            "expiries": self.expiries,
            "invalidations": self.invalidations,
            "entries": self.entries,
            "max_entries": self.max_entries,
            "shards": self.shards,
            "ttl_seconds": self.ttl,
            "stale_hits": self.stale_hits,
            "stale_misses": self.stale_misses,
        }


@runtime_checkable
class CacheAdapter(Protocol):
    """What the serving pipeline requires of a response cache."""

    #: False for the no-op backend: the pipeline skips the cache stage
    #: (no key derivation, no ledger bookkeeping) when disabled.
    enabled: bool

    def get(self, key: str) -> dict | None:
        """The stored body for ``key`` (None on miss/expiry).

        Implementations count a hit or a miss; the returned dict is
        shared — callers must not mutate it.
        """
        ...

    def put(
        self,
        key: str,
        body: dict,
        *,
        tenant: str | None = None,
        family: str | None = None,
    ) -> None:
        """Store a rendered body, tagged with its tenant for purges.

        ``family`` (see :func:`repro.cache.keys.family_key`) groups
        every key for one tenant + query shape so :meth:`get_stale`
        can fall back to the most recent family member.
        """
        ...

    def get_stale(
        self, key: str, *, family: str | None = None, max_age: float = 0.0
    ) -> StaleHit | None:
        """A degraded-mode body for ``key``: expired entries within
        ``max_age`` seconds of storage are acceptable, and when the
        exact key misses, the most recently stored body of ``family``
        (same tenant + query shape, different context digest) may
        answer instead.  Never counts toward ``hits``/``misses`` —
        degraded serves must not inflate the healthy hit ratio.
        """
        ...

    def invalidate_tenant(self, tenant: str) -> int:
        """Purge every entry stored for ``tenant``; returns the count."""
        ...

    def clear(self) -> int:
        """Drop every entry; returns how many were live."""
        ...

    def info(self) -> ResponseCacheInfo:
        """Aggregate hit/miss/eviction/expiry counters."""
        ...
