"""The in-memory response cache: sharded LRU + TTL under per-shard locks.

The serving fleet's default backend.  Entries are rendered response
bodies keyed by the digests :mod:`repro.cache.keys` derives; each
worker process owns one instance, so no cross-process coherence is
needed — invalidation is per-worker and keys are content-addressed
(see the package docstring).

Design points:

* **Sharding.**  Keys hash onto ``shards`` independent segments, each
  an ``OrderedDict`` LRU under its own lock, so concurrent gateway
  threads hitting different keys never contend on one global lock
  (the same shape as the tenant registry's session table).  Capacity
  is distributed across shards the way the registry distributes
  ``max_sessions``, so the whole-cache bound is exact.
* **TTL.**  Entries carry an absolute monotonic deadline; an expired
  entry is removed (and counted) by the lookup that finds it, and a
  sweep is never needed — LRU pressure reclaims cold expired entries.
  ``ttl=None`` (or ``0``) disables expiry: correctness never depends
  on TTL here (keys already die with the context signature), it only
  bounds staleness against *external* knowledge mutations.
* **Per-tenant purge.**  Each shard maintains a tenant → keys index,
  so :meth:`invalidate_tenant` is O(tenant's entries), not a scan.
"""

from __future__ import annotations

import threading
import time
import zlib
from collections import OrderedDict
from typing import Callable

from repro.cache.protocol import ResponseCacheInfo
from repro.errors import EngineConfigError

__all__ = ["InMemoryCacheAdapter"]


class _Entry:
    __slots__ = ("body", "tenant", "expires_at")

    def __init__(self, body: dict, tenant: str | None, expires_at: float | None):
        self.body = body
        self.tenant = tenant
        self.expires_at = expires_at


class _CacheShard:
    """One locked LRU segment with a tenant index."""

    __slots__ = (
        "lock",
        "entries",
        "by_tenant",
        "max_entries",
        "hits",
        "misses",
        "evictions",
        "expiries",
        "invalidations",
    )

    def __init__(self, max_entries: int):
        self.lock = threading.Lock()
        self.entries: "OrderedDict[str, _Entry]" = OrderedDict()
        self.by_tenant: dict[str, set[str]] = {}
        self.max_entries = max_entries
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.expiries = 0
        self.invalidations = 0

    def _drop(self, key: str) -> None:
        entry = self.entries.pop(key, None)
        if entry is None:
            return
        if entry.tenant is not None:
            keys = self.by_tenant.get(entry.tenant)
            if keys is not None:
                keys.discard(key)
                if not keys:
                    del self.by_tenant[entry.tenant]


class InMemoryCacheAdapter:
    """A sharded LRU + TTL response cache (one per worker process).

    Parameters
    ----------
    max_entries:
        Bound on stored bodies across all shards (exact).
    ttl:
        Seconds an entry may live; ``None`` or ``0`` disables expiry.
    shards:
        Independently locked LRU segments (clamped to ``max_entries``).
    clock:
        Monotonic time source (injectable so tests age entries without
        sleeping).
    """

    enabled = True

    def __init__(
        self,
        max_entries: int = 4096,
        ttl: float | None = 300.0,
        shards: int = 8,
        clock: Callable[[], float] = time.monotonic,
    ):
        if not isinstance(max_entries, int) or max_entries < 1:
            raise EngineConfigError(
                f"cache max_entries must be a positive integer, got {max_entries!r}"
            )
        if ttl is not None and ttl < 0:
            raise EngineConfigError(f"cache ttl must be non-negative, got {ttl!r}")
        if not isinstance(shards, int) or shards < 1:
            raise EngineConfigError(
                f"cache shards must be a positive integer, got {shards!r}"
            )
        self.max_entries = max_entries
        self.ttl = ttl if ttl else None
        self.shards = min(shards, max_entries)
        self._clock = clock
        base, extra = divmod(max_entries, self.shards)
        self._shards = tuple(
            _CacheShard(base + (1 if index < extra else 0))
            for index in range(self.shards)
        )

    def _shard_for(self, key: str) -> _CacheShard:
        return self._shards[zlib.crc32(key.encode("utf-8")) % self.shards]

    # -- the per-request path ---------------------------------------------
    def get(self, key: str) -> dict | None:
        shard = self._shard_for(key)
        with shard.lock:
            entry = shard.entries.get(key)
            if entry is None:
                shard.misses += 1
                return None
            if entry.expires_at is not None and self._clock() >= entry.expires_at:
                shard._drop(key)
                shard.expiries += 1
                shard.misses += 1
                return None
            shard.entries.move_to_end(key)
            shard.hits += 1
            return entry.body

    def put(self, key: str, body: dict, *, tenant: str | None = None) -> None:
        expires_at = self._clock() + self.ttl if self.ttl is not None else None
        shard = self._shard_for(key)
        with shard.lock:
            if key in shard.entries:
                shard._drop(key)
            shard.entries[key] = _Entry(body, tenant, expires_at)
            if tenant is not None:
                shard.by_tenant.setdefault(tenant, set()).add(key)
            while len(shard.entries) > shard.max_entries:
                victim = next(iter(shard.entries))
                shard._drop(victim)
                shard.evictions += 1

    # -- management --------------------------------------------------------
    def invalidate_tenant(self, tenant: str) -> int:
        purged = 0
        for shard in self._shards:
            with shard.lock:
                keys = shard.by_tenant.get(tenant)
                if not keys:
                    continue
                for key in list(keys):
                    shard._drop(key)
                    shard.invalidations += 1
                    purged += 1
        return purged

    def clear(self) -> int:
        dropped = 0
        for shard in self._shards:
            with shard.lock:
                dropped += len(shard.entries)
                shard.invalidations += len(shard.entries)
                shard.entries.clear()
                shard.by_tenant.clear()
        return dropped

    def info(self) -> ResponseCacheInfo:
        hits = misses = evictions = expiries = invalidations = entries = 0
        for shard in self._shards:
            with shard.lock:
                hits += shard.hits
                misses += shard.misses
                evictions += shard.evictions
                expiries += shard.expiries
                invalidations += shard.invalidations
                entries += len(shard.entries)
        return ResponseCacheInfo(
            hits=hits,
            misses=misses,
            evictions=evictions,
            expiries=expiries,
            invalidations=invalidations,
            entries=entries,
            max_entries=self.max_entries,
            shards=self.shards,
            ttl=self.ttl,
        )

    def __len__(self) -> int:
        count = 0
        for shard in self._shards:
            with shard.lock:
                count += len(shard.entries)
        return count

    def __repr__(self) -> str:
        info = self.info()
        return (
            f"InMemoryCacheAdapter(entries={info.entries}/{info.max_entries}, "
            f"shards={info.shards}, ttl={info.ttl}, "
            f"hits={info.hits}, misses={info.misses})"
        )
