"""The in-memory response cache: sharded LRU + TTL under per-shard locks.

The serving fleet's default backend.  Entries are rendered response
bodies keyed by the digests :mod:`repro.cache.keys` derives; each
worker process owns one instance, so no cross-process coherence is
needed — invalidation is per-worker and keys are content-addressed
(see the package docstring).

Design points:

* **Sharding.**  Keys hash onto ``shards`` independent segments, each
  an ``OrderedDict`` LRU under its own lock, so concurrent gateway
  threads hitting different keys never contend on one global lock
  (the same shape as the tenant registry's session table).  Capacity
  is distributed across shards the way the registry distributes
  ``max_sessions``, so the whole-cache bound is exact.
* **TTL with stale retention.**  Entries carry an absolute monotonic
  deadline; an expired entry stops answering :meth:`get` (counted as
  one expiry, the first time a lookup notices) but is *retained* for
  ``stale_grace`` seconds past expiry so the degraded-mode
  :meth:`get_stale` path can still serve it — a sweep is never
  needed, LRU pressure and the grace window reclaim cold entries.
  ``ttl=None`` (or ``0``) disables expiry: correctness never depends
  on TTL here (keys already die with the context signature), it only
  bounds staleness against *external* knowledge mutations.
* **Per-tenant purge.**  Each shard maintains a tenant → keys index,
  so :meth:`invalidate_tenant` is O(tenant's entries), not a scan.
* **Family fallback.**  ``put`` records the most recent key per
  response *family* (tenant + query shape, see
  :func:`repro.cache.keys.family_key`); :meth:`get_stale` falls back
  to it when the exact key has nothing — the digest-stale serve the
  resilience layer uses while the breaker is open.
"""

from __future__ import annotations

import threading
import time
import zlib
from collections import OrderedDict
from typing import Callable

from repro.cache.protocol import ResponseCacheInfo, StaleHit
from repro.errors import EngineConfigError

__all__ = ["InMemoryCacheAdapter"]


class _Entry:
    __slots__ = ("body", "tenant", "expires_at", "stored_at", "family", "expiry_counted")

    def __init__(
        self,
        body: dict,
        tenant: str | None,
        expires_at: float | None,
        stored_at: float,
        family: str | None,
    ):
        self.body = body
        self.tenant = tenant
        self.expires_at = expires_at
        self.stored_at = stored_at
        self.family = family
        self.expiry_counted = False


class _CacheShard:
    """One locked LRU segment with a tenant index."""

    __slots__ = (
        "lock",
        "entries",
        "by_tenant",
        "max_entries",
        "hits",
        "misses",
        "evictions",
        "expiries",
        "invalidations",
    )

    def __init__(self, max_entries: int):
        self.lock = threading.Lock()
        self.entries: "OrderedDict[str, _Entry]" = OrderedDict()
        self.by_tenant: dict[str, set[str]] = {}
        self.max_entries = max_entries
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.expiries = 0
        self.invalidations = 0

    def _drop(self, key: str) -> None:
        entry = self.entries.pop(key, None)
        if entry is None:
            return
        if entry.tenant is not None:
            keys = self.by_tenant.get(entry.tenant)
            if keys is not None:
                keys.discard(key)
                if not keys:
                    del self.by_tenant[entry.tenant]


class InMemoryCacheAdapter:
    """A sharded LRU + TTL response cache (one per worker process).

    Parameters
    ----------
    max_entries:
        Bound on stored bodies across all shards (exact).
    ttl:
        Seconds an entry may live; ``None`` or ``0`` disables expiry.
    shards:
        Independently locked LRU segments (clamped to ``max_entries``).
    clock:
        Monotonic time source (injectable so tests age entries without
        sleeping).
    stale_grace:
        Seconds an *expired* entry is retained for :meth:`get_stale`
        before lookups hard-drop it (``0`` restores drop-on-expiry).
    """

    enabled = True

    def __init__(
        self,
        max_entries: int = 4096,
        ttl: float | None = 300.0,
        shards: int = 8,
        clock: Callable[[], float] = time.monotonic,
        stale_grace: float = 300.0,
    ):
        if not isinstance(max_entries, int) or max_entries < 1:
            raise EngineConfigError(
                f"cache max_entries must be a positive integer, got {max_entries!r}"
            )
        if ttl is not None and ttl < 0:
            raise EngineConfigError(f"cache ttl must be non-negative, got {ttl!r}")
        if not isinstance(shards, int) or shards < 1:
            raise EngineConfigError(
                f"cache shards must be a positive integer, got {shards!r}"
            )
        if stale_grace < 0:
            raise EngineConfigError(
                f"cache stale_grace must be non-negative, got {stale_grace!r}"
            )
        self.max_entries = max_entries
        self.ttl = ttl if ttl else None
        self.shards = min(shards, max_entries)
        self.stale_grace = stale_grace
        self._clock = clock
        base, extra = divmod(max_entries, self.shards)
        self._shards = tuple(
            _CacheShard(base + (1 if index < extra else 0))
            for index in range(self.shards)
        )
        # Most recent key per family; the degraded-mode fallback index.
        self._stats_lock = threading.Lock()
        self._families: "OrderedDict[str, str]" = OrderedDict()
        self._stale_hits = 0
        self._stale_misses = 0

    def _shard_for(self, key: str) -> _CacheShard:
        return self._shards[zlib.crc32(key.encode("utf-8")) % self.shards]

    # -- the per-request path ---------------------------------------------
    def get(self, key: str) -> dict | None:
        shard = self._shard_for(key)
        now = self._clock()
        with shard.lock:
            entry = shard.entries.get(key)
            if entry is None:
                shard.misses += 1
                return None
            if entry.expires_at is not None and now >= entry.expires_at:
                # A miss, but the body is kept for get_stale until the
                # grace runs out; the expiry is counted exactly once.
                if not entry.expiry_counted:
                    entry.expiry_counted = True
                    shard.expiries += 1
                if now >= entry.expires_at + self.stale_grace:
                    shard._drop(key)
                shard.misses += 1
                return None
            shard.entries.move_to_end(key)
            shard.hits += 1
            return entry.body

    def put(
        self,
        key: str,
        body: dict,
        *,
        tenant: str | None = None,
        family: str | None = None,
    ) -> None:
        now = self._clock()
        expires_at = now + self.ttl if self.ttl is not None else None
        shard = self._shard_for(key)
        with shard.lock:
            if key in shard.entries:
                shard._drop(key)
            shard.entries[key] = _Entry(body, tenant, expires_at, now, family)
            if tenant is not None:
                shard.by_tenant.setdefault(tenant, set()).add(key)
            while len(shard.entries) > shard.max_entries:
                victim = next(iter(shard.entries))
                shard._drop(victim)
                shard.evictions += 1
        if family is not None:
            with self._stats_lock:
                self._families[family] = key
                self._families.move_to_end(family)
                while len(self._families) > self.max_entries:
                    self._families.popitem(last=False)

    # -- degraded-mode serving ---------------------------------------------
    def _stale_probe(
        self, key: str, max_age: float, *, exact: bool, family: str | None = None
    ) -> StaleHit | None:
        shard = self._shard_for(key)
        now = self._clock()
        with shard.lock:
            entry = shard.entries.get(key)
            if entry is None:
                return None
            if family is not None and entry.family != family:
                return None  # stale family pointer; never serve across families
            expired = entry.expires_at is not None and now >= entry.expires_at
            if expired:
                if not entry.expiry_counted:
                    entry.expiry_counted = True
                    shard.expiries += 1
                if now >= entry.expires_at + self.stale_grace:
                    shard._drop(key)
                    return None
                age = now - entry.expires_at
            else:
                # A live body: fresh if it is the exact key, digest-stale
                # (age = time since storage) on a family fallback.
                age = 0.0 if exact else now - entry.stored_at
            if age > max_age:
                return None
            return StaleHit(body=entry.body, age=age, expired=expired, exact=exact)

    def get_stale(
        self, key: str, *, family: str | None = None, max_age: float = 0.0
    ) -> StaleHit | None:
        hit = self._stale_probe(key, max_age, exact=True)
        if hit is None and family is not None:
            with self._stats_lock:
                fallback = self._families.get(family)
            if fallback is not None and fallback != key:
                hit = self._stale_probe(fallback, max_age, exact=False, family=family)
        with self._stats_lock:
            if hit is None:
                self._stale_misses += 1
            else:
                self._stale_hits += 1
        return hit

    # -- management --------------------------------------------------------
    def invalidate_tenant(self, tenant: str) -> int:
        purged = 0
        for shard in self._shards:
            with shard.lock:
                keys = shard.by_tenant.get(tenant)
                if not keys:
                    continue
                for key in list(keys):
                    shard._drop(key)
                    shard.invalidations += 1
                    purged += 1
        return purged

    def clear(self) -> int:
        dropped = 0
        for shard in self._shards:
            with shard.lock:
                dropped += len(shard.entries)
                shard.invalidations += len(shard.entries)
                shard.entries.clear()
                shard.by_tenant.clear()
        with self._stats_lock:
            self._families.clear()
        return dropped

    def info(self) -> ResponseCacheInfo:
        hits = misses = evictions = expiries = invalidations = entries = 0
        now = self._clock()
        for shard in self._shards:
            with shard.lock:
                hits += shard.hits
                misses += shard.misses
                evictions += shard.evictions
                expiries += shard.expiries
                invalidations += shard.invalidations
                # Live entries only: expired-but-retained bodies are
                # degraded-mode inventory, not cache occupancy.
                entries += sum(
                    1
                    for entry in shard.entries.values()
                    if entry.expires_at is None or now < entry.expires_at
                )
        with self._stats_lock:
            stale_hits, stale_misses = self._stale_hits, self._stale_misses
        return ResponseCacheInfo(
            hits=hits,
            misses=misses,
            evictions=evictions,
            expiries=expiries,
            invalidations=invalidations,
            entries=entries,
            max_entries=self.max_entries,
            shards=self.shards,
            ttl=self.ttl,
            stale_hits=stale_hits,
            stale_misses=stale_misses,
        )

    def __len__(self) -> int:
        count = 0
        for shard in self._shards:
            with shard.lock:
                count += len(shard.entries)
        return count

    def __repr__(self) -> str:
        info = self.info()
        return (
            f"InMemoryCacheAdapter(entries={info.entries}/{info.max_entries}, "
            f"shards={info.shards}, ttl={info.ttl}, "
            f"hits={info.hits}, misses={info.misses})"
        )
