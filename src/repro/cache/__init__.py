"""The pluggable response-cache subsystem for the serving layer.

Layout (the merino-py ``cache/`` shape):

* :mod:`repro.cache.protocol` — the :class:`CacheAdapter` protocol and
  its :class:`ResponseCacheInfo` counters;
* :mod:`repro.cache.none` — the disabled backend;
* :mod:`repro.cache.memory` — the sharded in-memory LRU + TTL backend;
* :mod:`repro.cache.keys` — key derivation from engine view
  fingerprints, and the :class:`ResponseKeyer` ledger the pipeline
  uses to answer "which key would this request rank under?" before
  the tenant's session is even resolved.

This is the *response* cache (whole rendered bodies, service layer);
the engine-level view/score memoisation lives in
:mod:`repro.engine.cache` and is unrelated machinery.
"""

from repro.cache.keys import (
    KeyLookup,
    ResponseKeyer,
    canonical_context,
    family_key,
    response_key,
    signature_digest,
)
from repro.cache.memory import InMemoryCacheAdapter
from repro.cache.none import NoCacheAdapter
from repro.cache.protocol import CacheAdapter, ResponseCacheInfo, StaleHit

__all__ = [
    "CacheAdapter",
    "InMemoryCacheAdapter",
    "KeyLookup",
    "NoCacheAdapter",
    "ResponseCacheInfo",
    "ResponseKeyer",
    "StaleHit",
    "canonical_context",
    "family_key",
    "response_key",
    "signature_digest",
]
