"""The disabled response-cache backend.

A :class:`NoCacheAdapter` satisfies the :class:`~repro.cache.protocol.
CacheAdapter` protocol while storing nothing: every ``get`` misses,
every ``put`` is dropped.  It exists so call sites can hold *an*
adapter unconditionally — and so ``--cache none`` is a configuration,
not a code path.  The pipeline additionally checks ``enabled`` and
skips key derivation entirely, so the disabled backend has zero
per-request cost.
"""

from __future__ import annotations

from repro.cache.protocol import ResponseCacheInfo, StaleHit

__all__ = ["NoCacheAdapter"]


class NoCacheAdapter:
    """The null response cache: never stores, never hits."""

    enabled = False

    def get(self, key: str) -> dict | None:
        return None

    def put(
        self,
        key: str,
        body: dict,
        *,
        tenant: str | None = None,
        family: str | None = None,
    ) -> None:
        return None

    def get_stale(
        self, key: str, *, family: str | None = None, max_age: float = 0.0
    ) -> StaleHit | None:
        return None

    def invalidate_tenant(self, tenant: str) -> int:
        return 0

    def clear(self) -> int:
        return 0

    def info(self) -> ResponseCacheInfo:
        return ResponseCacheInfo(max_entries=0, shards=0)

    def __repr__(self) -> str:
        return "NoCacheAdapter()"
