"""Setup shim for environments without PEP 517 editable-build support.

The canonical project metadata lives in ``pyproject.toml``; this file
only enables legacy editable installs (``pip install -e . --no-use-pep517``)
on machines where PEP 517 editable builds are unavailable offline.
Because those environments ship a setuptools too old to read the
``[project]`` table, the minimum install metadata is repeated here —
keep the version in sync with ``pyproject.toml``.
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.4.0",
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    # PEP 561: ship the py.typed marker so downstream type-checkers
    # pick up the inline annotations.
    package_data={"repro": ["py.typed"]},
    include_package_data=True,
    zip_safe=False,
    python_requires=">=3.10",
    entry_points={"console_scripts": ["repro = repro.cli:main"]},
    extras_require={"numpy": ["numpy"]},
)
