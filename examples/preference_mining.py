#!/usr/bin/env python3
"""Mining preferences from history — the Section 6 proposal, end to end.

1. Plant ground-truth rules (a user who watches traffic bulletins on
   80 % of workday mornings, weather on 60 %, movies on 70 % of
   weekend evenings).
2. Sample a viewing history with the generative sigma model.
3. Mine scored preference rules back "using exactly these semantics".
4. Compare mined sigmas against the planted ones and show how the
   estimate sharpens with history length.
5. Close the loop: load the mined rules into a :class:`RankingEngine`
   and rank the catalogue on a workday morning.

Run:  python examples/preference_mining.py
"""

from repro import ABox, EventSpace, RankingEngine, RuleRepository, TBox
from repro.history.episodes import Candidate
from repro.mining import MiningConfig, evaluate_mining, mine_rules
from repro.reporting import TextTable
from repro.rules import PreferenceRule
from repro.workloads import ContextPattern, PlantedRule, sample_history

TRUE_RULES = [
    PlantedRule("WorkdayMorning", "TrafficBulletin", 0.80),
    PlantedRule("WorkdayMorning", "WeatherBulletin", 0.60),
    PlantedRule("WeekendEvening", "Movie", 0.70),
]

CATALOGUE = [
    Candidate.of("traffic_today", "TrafficBulletin"),
    Candidate.of("weather_today", "WeatherBulletin"),
    Candidate.of("blockbuster", "Movie"),
    Candidate.of("documentary", "Documentary"),
]

PATTERNS = [
    ContextPattern(frozenset({"WorkdayMorning"}), weight=5.0),
    ContextPattern(frozenset({"WeekendEvening"}), weight=2.0),
]


def catalogue_engine(mined) -> RankingEngine:
    """An engine over the catalogue, ruled by what mining recovered."""
    space = EventSpace("mined")
    abox = ABox()
    tbox = TBox()
    user = abox.register_individual("viewer")
    for candidate in CATALOGUE:
        abox.assert_concept("Programme", candidate.doc_id)
        for feature in candidate.features:
            abox.assert_concept(feature, candidate.doc_id)
    repository = RuleRepository([mined_rule.rule for mined_rule in mined])
    return (
        RankingEngine.builder()
        .knowledge(abox, tbox, user, space)
        .preferences(repository)
        .target("Programme")
        .build()
    )


def main() -> None:
    print("Planted rules:")
    for rule in TRUE_RULES:
        print(f"  when {rule.context_feature:<15} prefer {rule.preference_feature:<16} sigma={rule.sigma}")

    table = TextTable(["episodes", "mined rules", "recall", "sigma MAE"])
    for episodes in (20, 100, 500, 2500):
        log = sample_history(TRUE_RULES, CATALOGUE, PATTERNS, episodes, seed=17)
        mined = mine_rules(log, MiningConfig(min_support=5, min_lift=0.05))
        truth_as_rules = [
            PreferenceRule.parse(f"t{i}", r.context_feature, r.preference_feature, r.sigma)
            for i, r in enumerate(TRUE_RULES)
        ]
        report = evaluate_mining(truth_as_rules, mined)
        table.add_row([episodes, report.mined, f"{report.recall:.2f}", f"{report.sigma_mae:.4f}"])

    print("\nRecovery vs history length:")
    print(table.render())

    log = sample_history(TRUE_RULES, CATALOGUE, PATTERNS, 2500, seed=17)
    mined = mine_rules(log, MiningConfig(min_support=5, min_lift=0.05))
    print("\nRules mined from 2500 episodes:")
    for mined_rule in mined:
        print(f"  {mined_rule.rule}   [support {mined_rule.support}]")

    # The mined rules drive the same engine the hand-written ones do.
    engine = catalogue_engine(mined)
    engine.install_context("WorkdayMorning")
    print("\nWorkday-morning ranking under the mined rules:")
    print(engine.rank().render())


if __name__ == "__main__":
    main()
