#!/usr/bin/env python3
"""A sensed Saturday morning: sensors -> uncertain context -> ranking.

The quickstart installs the context by hand; this scenario derives it
the way the paper envisions — from sensors.  A location sensor places
Peter in a room with 85 % accuracy; the TBox defines

    InKitchen  ≡  locatedIn VALUE kitchen
    Breakfast  ≡  InKitchen ⊓ Morning

so rule R2's Breakfast context inherits the sensor's uncertainty, and
the engine follows Peter through the morning: each sensor sweep changes
the context signature, so the preference-view cache invalidates itself
and scores shift — with no change to the rules or the queries.

Run:  python examples/tvtouch_morning.py
"""

from repro import RankingEngine, SensedContext
from repro.context import (
    CalendarSensor,
    ContextManager,
    GroundTruth,
    LocationSensor,
    SimClock,
    SituatedUser,
    define_context,
    define_location_concept,
)
from repro.workloads import build_tvtouch

ROOMS = ("kitchen", "livingroom", "bedroom")


def main() -> None:
    world = build_tvtouch()

    # High-level contexts are TBox definitions over sensed facts.
    define_location_concept(world.tbox, "InKitchen", "kitchen")
    define_context(world.tbox, "Breakfast", "InKitchen AND Morning")
    # 'Weekend' and 'Morning' come straight from the calendar sensor.

    clock = SimClock.at(2007, 4, 14, 7, 30)  # a Saturday
    manager = ContextManager(
        user=SituatedUser(world.user),
        clock=clock,
        abox=world.abox,
        tbox=world.tbox,
        space=world.space,
        database=world.database,
    )
    manager.add_sensor(CalendarSensor(world.user))
    manager.add_sensor(LocationSensor(world.user, rooms=ROOMS, accuracy=0.85))

    # The engine's context backend is the sensor pipeline itself.
    context = SensedContext.of(manager)
    engine = RankingEngine.builder().world(world).context(context).build()

    itinerary = [
        ("07:30, waking up", GroundTruth(location="bedroom"), 0),
        ("08:15, making coffee", GroundTruth(location="kitchen"), 45),
        ("09:40, on the couch", GroundTruth(location="livingroom"), 85),
    ]
    for label, truth, advance_minutes in itinerary:
        if advance_minutes:
            clock.advance(minutes=advance_minutes)
        context.observe(truth)
        breakfast = manager.context_probability(world.repository.get("r2").context)
        print(f"== {label} ({clock}) ==")
        print(f"  P(Breakfast) = {breakfast:.3f}")
        response = engine.rank()
        for line in response.render().splitlines():
            print(f"    {line}")
        print()

    info = engine.cache_info()
    print(
        "The same rules, the same query — only the context moved\n"
        f"(each sweep was a fresh signature: {info.misses} cache misses, "
        f"{info.hits} hits)."
    )


if __name__ == "__main__":
    main()
