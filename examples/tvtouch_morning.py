#!/usr/bin/env python3
"""A sensed Saturday morning: sensors -> uncertain context -> ranking.

The quickstart installs the context by hand; this scenario derives it
the way the paper envisions — from sensors.  A location sensor places
Peter in a room with 85 % accuracy; the TBox defines

    InKitchen  ≡  locatedIn VALUE kitchen
    Breakfast  ≡  InKitchen ⊓ Morning

so rule R2's Breakfast context inherits the sensor's uncertainty, and
the preference view follows Peter through the morning: scores shift as
he moves from bedroom to kitchen to living room, with no change to the
rules or the queries.

Run:  python examples/tvtouch_morning.py
"""

from repro import ContextAwareScorer, PreferenceView
from repro.context import (
    CalendarSensor,
    ContextManager,
    GroundTruth,
    LocationSensor,
    SimClock,
    SituatedUser,
    define_context,
    define_location_concept,
)
from repro.workloads import build_tvtouch

ROOMS = ("kitchen", "livingroom", "bedroom")


def main() -> None:
    world = build_tvtouch()

    # High-level contexts are TBox definitions over sensed facts.
    define_location_concept(world.tbox, "InKitchen", "kitchen")
    define_context(world.tbox, "Breakfast", "InKitchen AND Morning")
    # 'Weekend' and 'Morning' come straight from the calendar sensor.

    clock = SimClock.at(2007, 4, 14, 7, 30)  # a Saturday
    manager = ContextManager(
        user=SituatedUser(world.user),
        clock=clock,
        abox=world.abox,
        tbox=world.tbox,
        space=world.space,
        database=world.database,
    )
    manager.add_sensor(CalendarSensor(world.user))
    manager.add_sensor(LocationSensor(world.user, rooms=ROOMS, accuracy=0.85))

    scorer = ContextAwareScorer(
        abox=world.abox,
        tbox=world.tbox,
        user=world.user,
        repository=world.repository,
        space=world.space,
    )
    view = PreferenceView(scorer, world.target, world.database)

    itinerary = [
        ("07:30, waking up", GroundTruth(location="bedroom"), 0),
        ("08:15, making coffee", GroundTruth(location="kitchen"), 45),
        ("09:40, on the couch", GroundTruth(location="livingroom"), 85),
    ]
    for label, truth, advance_minutes in itinerary:
        if advance_minutes:
            clock.advance(minutes=advance_minutes)
        snapshot = manager.refresh(truth)
        breakfast = manager.context_probability(world.repository.get("r2").context)
        print(f"== {label} ({clock}) ==")
        print(f"  sensed {len(snapshot)} measurements; P(Breakfast) = {breakfast:.3f}")
        view.refresh()
        for score in view.ranking():
            print(f"    {score.document:<16} {score.value:.4f}")
        print()

    print("The same rules, the same query — only the context moved.")


if __name__ == "__main__":
    main()
