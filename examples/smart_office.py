#!/usr/bin/env python3
"""A context-aware reading list — the model beyond television.

The paper's machinery is domain-agnostic: documents are whatever has
features, context is whatever sensors can witness.  Here a researcher's
workstation ranks *reading material* (papers, dashboards, newsletters):

* in **deep work** she prefers papers on at least two of her topics
  (a qualified number restriction, ``ATLEAST 2 hasTopic...``);
* in **meetings** she prefers the project dashboard;
* during **coffee breaks** anything light wins.

The example also shows role hierarchies: ``hasMainTopic ⊑ hasTopic``,
so a paper's main topic counts wherever topics are asked for.  The
whole schedule runs through one :class:`RankingEngine` built directly
from a hand-made knowledge base — no TVTouch world required.

Run:  python examples/smart_office.py
"""

from repro import EventSpace, RankRequest, RankingEngine
from repro.dl import ABox, Individual, TBox
from repro.rules import parse_rules

DOCUMENTS = [
    ("paper_dl", "A survey of description logics"),
    ("paper_prob", "Probabilistic databases in practice"),
    ("dashboard", "Project burn-down dashboard"),
    ("newsletter", "Weekly campus newsletter"),
]

RULES = """
# Reading preferences, mined from six months of desktop logs.
RULE deep1: WHEN DeepWork PREFER Reading AND ATLEAST 2 hasTopic.OwnTopic WITH 0.85
RULE meet1: WHEN InMeeting PREFER Reading AND Dashboard WITH 0.9
RULE break1: WHEN CoffeeBreak PREFER Reading AND Light WITH 0.75
"""


def build_world():
    space = EventSpace("office")
    abox = ABox()
    tbox = TBox()
    user = Individual("eva")
    abox.register_individual(user)

    # Role hierarchy: the main topic is, in particular, a topic.
    tbox.add_role_subsumption("hasMainTopic", "hasTopic")

    # Eva's research topics.
    for topic in ("dl", "prob", "ranking"):
        abox.assert_concept("OwnTopic", f"topic_{topic}")
    abox.assert_concept("Topic", "topic_campus")

    for doc_id, _title in DOCUMENTS:
        abox.assert_concept("Reading", doc_id)
    abox.assert_concept("Dashboard", "dashboard")
    abox.assert_concept("Light", "newsletter")
    abox.assert_concept("Light", "dashboard")

    # Topic tagging (the classifier is only mostly sure).
    abox.assert_role("hasMainTopic", "paper_dl", "topic_dl")
    abox.assert_role("hasTopic", "paper_dl", "topic_ranking", space.atom("t:dl:rank", 0.7))
    abox.assert_role("hasMainTopic", "paper_prob", "topic_prob")
    abox.assert_role("hasTopic", "paper_prob", "topic_dl", space.atom("t:prob:dl", 0.4))
    abox.assert_role("hasTopic", "newsletter", "topic_campus")

    return space, abox, tbox, user


def main() -> None:
    space, abox, tbox, user = build_world()
    engine = (
        RankingEngine.builder()
        .knowledge(abox, tbox, user, space)
        .preferences(parse_rules(RULES))
        .target("Reading")
        .build()
    )
    titles = dict(DOCUMENTS)

    schedule = [
        ("09:30 deep work", "DeepWork", 1.0),
        ("11:00 stand-up", "InMeeting", 1.0),
        ("15:00 probably a break", "CoffeeBreak", 0.6),
    ]
    for label, context, certainty in schedule:
        spec = context if certainty >= 1.0 else f"{context}:{certainty:g}"
        engine.install_context(spec, tick=label)
        print(f"== {label} (P({context}) = {certainty:g}) ==")
        print(engine.rank().render(names=titles))
        print()

    # Why did the DL survey win the deep-work slot?
    engine.install_context("DeepWork")
    winner = engine.rank(RankRequest(top_k=1)).top()
    assert winner is not None
    print("Why the deep-work winner:")
    print(engine.explain(winner.document))
    print(
        "\n(The survey's main topic counts through the role hierarchy, and the\n"
        " 0.7-certain 'ranking' tag makes 'at least two own topics' likely.)"
    )


if __name__ == "__main__":
    main()
