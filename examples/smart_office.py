#!/usr/bin/env python3
"""A context-aware reading list — the model beyond television.

The paper's machinery is domain-agnostic: documents are whatever has
features, context is whatever sensors can witness.  Here a research
group's workstation ranks *reading material* (papers, dashboards,
newsletters) over **one shared office ontology** serving several
researchers at once — a :class:`TenantRegistry` freezes the world and
hands each researcher a copy-on-write overlay session:

* **Eva** in *deep work* prefers papers on at least two of her topics
  (a qualified number restriction, ``ATLEAST 2 hasTopic...``); in
  *meetings* the project dashboard; during *coffee breaks* anything
  light;
* **Li** only ever wants the dashboard when a meeting is on.

Their contexts never leak into each other — Eva can be mid-deep-work
while Li sits in the stand-up — and the static knowledge (including the
role hierarchy ``hasMainTopic ⊑ hasTopic``) is reasoned once in the
shared base tier, not once per researcher.

Run:  python examples/smart_office.py
"""

from types import SimpleNamespace

from repro import EventSpace, RankRequest, TenantRegistry
from repro.dl import ABox, TBox
from repro.rules import parse_rules

DOCUMENTS = [
    ("paper_dl", "A survey of description logics"),
    ("paper_prob", "Probabilistic databases in practice"),
    ("dashboard", "Project burn-down dashboard"),
    ("newsletter", "Weekly campus newsletter"),
]

EVA_RULES = """
# Eva's reading preferences, mined from six months of desktop logs.
RULE deep1: WHEN DeepWork PREFER Reading AND ATLEAST 2 hasTopic.OwnTopic WITH 0.85
RULE meet1: WHEN InMeeting PREFER Reading AND Dashboard WITH 0.9
RULE break1: WHEN CoffeeBreak PREFER Reading AND Light WITH 0.75
"""

LI_RULES = """
RULE meet1: WHEN InMeeting PREFER Reading AND Dashboard WITH 0.95
"""


def build_office_world():
    """The shared office ontology: documents, topics, role hierarchy."""
    space = EventSpace("office")
    abox = ABox()
    tbox = TBox()

    # Role hierarchy: the main topic is, in particular, a topic.
    tbox.add_role_subsumption("hasMainTopic", "hasTopic")

    # The group's research topics.
    for topic in ("dl", "prob", "ranking"):
        abox.assert_concept("OwnTopic", f"topic_{topic}")
    abox.assert_concept("Topic", "topic_campus")

    for doc_id, _title in DOCUMENTS:
        abox.assert_concept("Reading", doc_id)
    abox.assert_concept("Dashboard", "dashboard")
    abox.assert_concept("Light", "newsletter")
    abox.assert_concept("Light", "dashboard")

    # Topic tagging (the classifier is only mostly sure).
    abox.assert_role("hasMainTopic", "paper_dl", "topic_dl")
    abox.assert_role("hasTopic", "paper_dl", "topic_ranking", space.atom("t:dl:rank", 0.7))
    abox.assert_role("hasMainTopic", "paper_prob", "topic_prob")
    abox.assert_role("hasTopic", "paper_prob", "topic_dl", space.atom("t:prob:dl", 0.4))
    abox.assert_role("hasTopic", "newsletter", "topic_campus")

    return SimpleNamespace(abox=abox, tbox=tbox, space=space, target="Reading")


def main() -> None:
    registry = TenantRegistry(build_office_world())
    eva = registry.session("eva", rules=parse_rules(EVA_RULES))
    li = registry.session("li", rules=parse_rules(LI_RULES))
    titles = dict(DOCUMENTS)

    schedule = [
        ("09:30 deep work", "DeepWork", 1.0),
        ("11:00 stand-up", "InMeeting", 1.0),
        ("15:00 probably a break", "CoffeeBreak", 0.6),
    ]
    for label, context, certainty in schedule:
        spec = context if certainty >= 1.0 else f"{context}:{certainty:g}"
        eva.install_context(spec, tick=label)
        print(f"== {label} (P({context}) = {certainty:g}) ==")
        print(eva.rank().render(names=titles))
        print()

    # Li has been in the stand-up the whole time: his overlay context is
    # independent of whatever Eva's schedule says.
    li.install_context("InMeeting")
    best = li.rank(RankRequest(top_k=1)).top()
    assert best is not None
    print(f"Li (in the stand-up) gets: {titles[best.document]}\n")

    # Why did the DL survey win Eva's deep-work slot?
    eva.install_context("DeepWork")
    winner = eva.rank(RankRequest(top_k=1)).top()
    assert winner is not None
    print("Why Eva's deep-work winner:")
    print(eva.explain(winner.document))
    print(
        "\n(The survey's main topic counts through the role hierarchy, and the\n"
        " 0.7-certain 'ranking' tag makes 'at least two own topics' likely.\n"
        " Both researchers reasoned over one frozen world: "
        f"{registry.info().active} overlay sessions, zero copies.)"
    )


if __name__ == "__main__":
    main()
