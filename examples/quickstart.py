#!/usr/bin/env python3
"""Quickstart: the paper's worked example in ~40 lines.

Builds the TVTouch world of Table 1, installs the Section 4.2 context
(breakfast during the weekend, certain), scores the four programs, and
runs the introduction's SQL query verbatim — reproducing the paper's
numbers: Channel 5 news 0.6006, BBC news 0.18, Oprah 0.071, MPFS 0.02.

Run:  python examples/quickstart.py
"""

from repro import ContextAwareRanker, ContextAwareScorer, PreferenceView
from repro.core import explain_ranking
from repro.workloads import build_tvtouch, set_breakfast_weekend_context


def main() -> None:
    # 1. The world: programs, feature probabilities, Peter's two rules.
    world = build_tvtouch()
    print("Peter's scored preference rules:")
    for rule in world.repository:
        print(f"  {rule}")

    # 2. The context: breakfast during the weekend (certain, as in §4.2).
    set_breakfast_weekend_context(world)

    # 3. Score and rank the programs.
    scorer = ContextAwareScorer(
        abox=world.abox,
        tbox=world.tbox,
        user=world.user,
        repository=world.repository,
        space=world.space,
    )
    ranked = scorer.rank(world.program_ids)
    print("\nContext-aware ranking (P(D=d | U=u_sit)):")
    print(explain_ranking(ranked, world.repository))

    # 4. The paper's introduction query, verbatim.
    view = PreferenceView(scorer, world.target, world.database)
    ranker = ContextAwareRanker(view, world.database, "Programs", id_column="id")
    result = ranker.execute(
        "SELECT name, preferencescore\n"
        "FROM Programs\n"
        "WHERE preferencescore > 0.5\n"
        "ORDER BY preferencescore DESC"
    )
    print("\nSELECT name, preferencescore FROM Programs")
    print("WHERE preferencescore > 0.5 ORDER BY preferencescore DESC;\n")
    print(result.render())


if __name__ == "__main__":
    main()
