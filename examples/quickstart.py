#!/usr/bin/env python3
"""Quickstart: the paper's worked example through the engine facade.

Builds the TVTouch world of Table 1, installs the Section 4.2 context
(breakfast during the weekend, certain), and asks one
:class:`RankingEngine` for both deliverables — the context-aware
ranking and the introduction's SQL query — reproducing the paper's
numbers: Channel 5 news 0.6006, BBC news 0.18, Oprah 0.071, MPFS 0.02.

Run:  python examples/quickstart.py
"""

from repro import RankRequest, RankingEngine
from repro.workloads import build_tvtouch, set_breakfast_weekend_context


def main() -> None:
    # 1. The world: programs, feature probabilities, Peter's two rules.
    world = build_tvtouch()
    print("Peter's scored preference rules:")
    for rule in world.repository:
        print(f"  {rule}")

    # 2. The context: breakfast during the weekend (certain, as in §4.2).
    set_breakfast_weekend_context(world)

    # 3. One engine owns the whole pipeline (scorer, view, SQL, cache).
    engine = RankingEngine.from_world(world)

    # 4. Score and rank the programs, with per-rule motivations.
    response = engine.rank(RankRequest(documents=world.program_ids, explain=True))
    print("\nContext-aware ranking (P(D=d | U=u_sit)):")
    print(response.explanation)

    # 5. The paper's introduction query, verbatim — same engine, one call.
    query = engine.rank(
        "SELECT name, preferencescore\n"
        "FROM Programs\n"
        "WHERE preferencescore > 0.5\n"
        "ORDER BY preferencescore DESC"
    )
    print("\nSELECT name, preferencescore FROM Programs")
    print("WHERE preferencescore > 0.5 ORDER BY preferencescore DESC;\n")
    print(query.result.render())

    # The second call reused the memoized preference view:
    info = engine.cache_info()
    print(f"\n(preference view cache: {info.hits} hit(s), {info.misses} miss(es))")


if __name__ == "__main__":
    main()
