#!/usr/bin/env python3
"""The Section 5 bottleneck, live: naive views double, factorised stays flat.

Generates a scaled-down Section 5 database (so the walk-through runs in
seconds), installs rule series of increasing size, and times three
implementations of the same scores:

* the paper's naive view evaluation (pure-Python algebra);
* the same naive views inside sqlite3;
* the factorised scorer behind the :class:`RankingEngine` facade
  (the Section 6 fix) — plus the engine's answer to an *unchanged*
  context: a cache hit that costs next to nothing.

Benchmark benchmarks/bench_e3_section5_scaling.py runs the full-size
version with assertions; bench_e9_engine_overhead.py measures the
facade's overhead over the bare scorer.  This script is the narrated
tour.

Run:  python examples/scaling_walkthrough.py
"""

from repro import RankRequest, RankingEngine
from repro.core import naive_scores_python, naive_scores_sqlite
from repro.core.problem import bind_problem
from repro.reporting import TextTable, fit_growth, timed
from repro.storage import SqliteBackend
from repro.workloads import (
    Section5Counts,
    generate_rule_series,
    generate_test_database,
    install_context_series,
)


def main() -> None:
    counts = Section5Counts(persons=100, programs=60, genres=12, subjects=6, activities=4, rooms=5)
    world = generate_test_database(seed=7, counts=counts)
    print(f"test database: {len(world.abox)} tuples "
          f"({counts.persons} persons, {counts.programs} programs)")
    install_context_series(world, k=8, seed=11)

    table = TextTable(
        ["rules", "naive python (s)", "naive sqlite (s)", "engine cold (s)", "engine cached (s)"]
    )
    naive_times = []
    ks = list(range(1, 8))
    for k in ks:
        repository = generate_rule_series(world, k, seed=13)
        problem = bind_problem(world.abox, world.tbox, world.user, repository, [], world.space)
        bindings = list(problem.bindings)

        _scores, python_seconds = timed(
            lambda: naive_scores_python(world.database, world.tbox, world.target, bindings, world.space)
        )

        with SqliteBackend(world.space) as backend:
            backend.load_abox(world.abox)
            _scores2, sqlite_seconds = timed(
                lambda: naive_scores_sqlite(backend, world.tbox, world.target, bindings)
            )

        engine = RankingEngine.from_world(world, rules=repository)
        request = RankRequest(documents=world.programs)
        _response, cold_seconds = timed(lambda: engine.rank(request))
        _response2, cached_seconds = timed(lambda: engine.rank(request))

        naive_times.append(python_seconds)
        table.add_row([k, python_seconds, sqlite_seconds, cold_seconds, cached_seconds])

    print()
    print(table.render())

    fit = fit_growth(ks, naive_times)
    print(f"\nnaive growth: x{fit.ratio:.2f} per extra rule (the paper's doubling)")
    wall = 30 * 60
    k = ks[-1]
    predicted = naive_times[-1]
    while predicted < wall:
        k += 1
        predicted = fit.predict(k)
    print(f"extrapolated: the paper's 30-minute wall lands at ~{k} rules on this machine")
    print("the factorised engine is linear in the rule count — no wall;")
    print("and while the context holds still, the cached view answers for free.")


if __name__ == "__main__":
    main()
