#!/usr/bin/env python3
"""Watching TV together: the Section 6 multi-user extension.

Peter (human-interest at the weekend) and Mary (news at breakfast)
share a couch on a Saturday morning.  The catalogue is *one* shared,
frozen world; each viewer is a tenant of a :class:`TenantRegistry` —
a copy-on-write overlay carrying only their own context and scored
preference rules, while the static knowledge (and the reasoner's base
tier) is shared by reference.  A :class:`GroupRanker` built straight
from the tenant sessions aggregates their per-program probabilities
under four strategies, and the group itself plugs into an engine as a
:class:`GroupRelevance` backend — so group ranking answers the same
one-call API as personal ranking.

Run:  python examples/group_watching.py
"""

from repro import GroupRanker, GroupRelevance, RankRequest, RankingEngine, TenantRegistry
from repro.reporting import TextTable
from repro.rules import RuleRepository, parse_rule
from repro.workloads import build_tvtouch


def main() -> None:
    world = build_tvtouch()
    # One registry = one shared static world (frozen on construction);
    # every viewer is a cheap overlay session over it.
    registry = TenantRegistry(world)

    peter = registry.session(
        "peter",
        rules=RuleRepository([parse_rule(
            "RULE p1: WHEN Weekend PREFER TvProgram AND EXISTS hasGenre.{HUMAN-INTEREST} WITH 0.9"
        )]),
    )
    mary = registry.session(
        "mary",
        rules=RuleRepository([parse_rule(
            "RULE m1: WHEN Breakfast PREFER TvProgram AND EXISTS hasSubject.NewsSubject WITH 0.9"
        )]),
    )
    # Same couch, same Saturday morning: each overlay gets the context
    # (the shared base stays untouched — try registry.abox.assert_concept
    # and watch it refuse).
    for viewer in (peter, mary):
        viewer.install_context("Weekend", "Breakfast")

    print("Per-member scores (Saturday breakfast):")
    solo = GroupRanker.from_sessions({"peter": peter, "mary": mary})
    assert solo.shared_base() is registry.abox  # one world behind both
    table = TextTable(["program", "peter", "mary"])
    for score in solo.score(world.program_ids):
        table.add_row(
            [score.document, f"{score.member_score('peter'):.3f}", f"{score.member_score('mary'):.3f}"]
        )
    print(table.render())

    print("\nGroup winner by aggregation strategy:")
    strategy_table = TextTable(["strategy", "winner", "group score"])
    for strategy in GroupRanker.available_strategies():
        group = GroupRanker.from_sessions(
            {"peter": peter, "mary": mary}, strategy=strategy
        )
        engine = (
            RankingEngine.builder()
            .world(peter)  # any tenant session is a valid world
            .relevance(GroupRelevance(group))
            .build()
        )
        best = engine.rank(RankRequest(documents=world.program_ids)).top()
        assert best is not None
        strategy_table.add_row([strategy, best.document, f"{best.score:.4f}"])
    print(strategy_table.render())

    print(
        "\nChannel 5 news carries both a human-interest genre and a news\n"
        "subject, so the consensus strategies (average, product, least\n"
        "misery) converge on it; only most-pleasure hands the remote to\n"
        "Mary's single favourite."
    )


if __name__ == "__main__":
    main()
