#!/usr/bin/env python3
"""Watching TV together: the Section 6 multi-user extension.

Peter (human-interest at the weekend) and Mary (news at breakfast)
share a couch on a Saturday morning.  Each keeps their own scored
preference rules; the group ranker aggregates their per-program
probabilities under four strategies and shows how the winner changes.

Run:  python examples/group_watching.py
"""

from repro import ContextAwareScorer, GroupMember, GroupRanker
from repro.reporting import TextTable
from repro.rules import RuleRepository, parse_rule
from repro.workloads import build_tvtouch, set_breakfast_weekend_context


def member(name: str, world, rule_lines: list[str]) -> GroupMember:
    repository = RuleRepository([parse_rule(line) for line in rule_lines])
    scorer = ContextAwareScorer(
        abox=world.abox,
        tbox=world.tbox,
        user=world.user,  # shared context: they are in the same room
        repository=repository,
        space=world.space,
    )
    return GroupMember(name, scorer)


def main() -> None:
    world = build_tvtouch()
    set_breakfast_weekend_context(world)

    peter = member(
        "peter",
        world,
        ["RULE p1: WHEN Weekend PREFER TvProgram AND EXISTS hasGenre.{HUMAN-INTEREST} WITH 0.9"],
    )
    mary = member(
        "mary",
        world,
        ["RULE m1: WHEN Breakfast PREFER TvProgram AND EXISTS hasSubject.NewsSubject WITH 0.9"],
    )

    print("Per-member scores (Saturday breakfast):")
    solo = GroupRanker([peter, mary])
    table = TextTable(["program", "peter", "mary"])
    for score in solo.score(world.program_ids):
        table.add_row(
            [score.document, f"{score.member_score('peter'):.3f}", f"{score.member_score('mary'):.3f}"]
        )
    print(table.render())

    print("\nGroup winner by aggregation strategy:")
    strategy_table = TextTable(["strategy", "winner", "group score"])
    for strategy in GroupRanker.available_strategies():
        ranker = GroupRanker([peter, mary], strategy=strategy)
        best = ranker.rank(world.program_ids)[0]
        strategy_table.add_row([strategy, best.document, f"{best.value:.4f}"])
    print(strategy_table.render())

    print(
        "\nChannel 5 news carries both a human-interest genre and a news\n"
        "subject, so the consensus strategies (average, product, least\n"
        "misery) converge on it; only most-pleasure hands the remote to\n"
        "Mary's single favourite."
    )


if __name__ == "__main__":
    main()
