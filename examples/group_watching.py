#!/usr/bin/env python3
"""Watching TV together: the Section 6 multi-user extension.

Peter (human-interest at the weekend) and Mary (news at breakfast)
share a couch on a Saturday morning.  Each keeps their own scored
preference rules as their own :class:`RankingEngine` over the shared
world; a :class:`GroupRanker` aggregates their per-program
probabilities under four strategies, and the group itself plugs into an
engine as a :class:`GroupRelevance` backend — so group ranking answers
the same one-call API as personal ranking.

Run:  python examples/group_watching.py
"""

from repro import GroupRanker, GroupRelevance, RankRequest, RankingEngine
from repro.reporting import TextTable
from repro.rules import RuleRepository, parse_rule
from repro.workloads import build_tvtouch, set_breakfast_weekend_context


def member_engine(world, rule_lines: list[str]) -> RankingEngine:
    repository = RuleRepository([parse_rule(line) for line in rule_lines])
    # Shared context: they are in the same room (same ABox, same user).
    return RankingEngine.from_world(world, rules=repository)


def main() -> None:
    world = build_tvtouch()
    set_breakfast_weekend_context(world)

    peter = member_engine(
        world,
        ["RULE p1: WHEN Weekend PREFER TvProgram AND EXISTS hasGenre.{HUMAN-INTEREST} WITH 0.9"],
    )
    mary = member_engine(
        world,
        ["RULE m1: WHEN Breakfast PREFER TvProgram AND EXISTS hasSubject.NewsSubject WITH 0.9"],
    )

    print("Per-member scores (Saturday breakfast):")
    solo = GroupRanker([peter.as_member("peter"), mary.as_member("mary")])
    table = TextTable(["program", "peter", "mary"])
    for score in solo.score(world.program_ids):
        table.add_row(
            [score.document, f"{score.member_score('peter'):.3f}", f"{score.member_score('mary'):.3f}"]
        )
    print(table.render())

    print("\nGroup winner by aggregation strategy:")
    strategy_table = TextTable(["strategy", "winner", "group score"])
    for strategy in GroupRanker.available_strategies():
        group = GroupRanker(
            [peter.as_member("peter"), mary.as_member("mary")], strategy=strategy
        )
        engine = RankingEngine.builder().world(world).relevance(GroupRelevance(group)).build()
        best = engine.rank(RankRequest(documents=world.program_ids)).top()
        assert best is not None
        strategy_table.add_row([strategy, best.document, f"{best.score:.4f}"])
    print(strategy_table.render())

    print(
        "\nChannel 5 news carries both a human-interest genre and a news\n"
        "subject, so the consensus strategies (average, product, least\n"
        "misery) converge on it; only most-pleasure hands the remote to\n"
        "Mary's single favourite."
    )


if __name__ == "__main__":
    main()
