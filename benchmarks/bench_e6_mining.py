"""E6 — Section 6 "Mining/learning preferences".

"A legitimate question to ask is, how well the actual user preferences
would be predicted by mining the history of the user using exactly
these semantics."

Plant rules, sample histories of increasing length with the generative
sigma model, mine them back, and measure sigma recovery error and rule
recall.  The estimator is unbiased, so the error must fall towards 0.
"""

import pytest

from repro.history.episodes import Candidate
from repro.mining import MiningConfig, evaluate_mining, mine_rules
from repro.reporting import TextTable
from repro.rules import PreferenceRule
from repro.workloads import ContextPattern, PlantedRule, sample_history

TRUE_RULES = [
    PlantedRule("WorkdayMorning", "TrafficBulletin", 0.80),
    PlantedRule("WorkdayMorning", "WeatherBulletin", 0.60),
    PlantedRule("WeekendEvening", "Movie", 0.70),
    PlantedRule("WeekendEvening", "Documentary", 0.30),
]

CATALOGUE = [
    Candidate.of("traffic_today", "TrafficBulletin"),
    Candidate.of("weather_today", "WeatherBulletin"),
    Candidate.of("blockbuster", "Movie"),
    Candidate.of("nature_film", "Documentary"),
    Candidate.of("quiz_show", "QuizShow"),
]

PATTERNS = [
    ContextPattern(frozenset({"WorkdayMorning"}), weight=5.0),
    ContextPattern(frozenset({"WeekendEvening"}), weight=2.0),
]

EPISODE_COUNTS = [25, 100, 400, 1600, 6400]


def _truth_rules():
    return [
        PreferenceRule.parse(f"t{i}", rule.context_feature, rule.preference_feature, rule.sigma)
        for i, rule in enumerate(TRUE_RULES)
    ]


def test_e6_sigma_recovery_curve(benchmark, save_result, save_json):
    def sweep():
        rows = []
        for episodes in EPISODE_COUNTS:
            log = sample_history(TRUE_RULES, CATALOGUE, PATTERNS, episodes, seed=17)
            mined = mine_rules(log, MiningConfig(min_support=5, min_lift=0.0))
            report = evaluate_mining(_truth_rules(), mined)
            rows.append((episodes, report))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)

    table = TextTable(["episodes", "mined", "recall", "precision", "sigma MAE"])
    for episodes, report in rows:
        table.add_row(
            [episodes, report.mined, f"{report.recall:.2f}", f"{report.precision:.2f}", f"{report.sigma_mae:.4f}"]
        )
    save_result("e6_mining", table.render())
    save_json(
        "e6_mining",
        {
            "experiment": "e6_mining",
            "rows": [
                {
                    "episodes": episodes,
                    "mined": report.mined,
                    "recall": report.recall,
                    "precision": report.precision,
                    "sigma_mae": report.sigma_mae,
                }
                for episodes, report in rows
            ],
        },
    )

    final_report = rows[-1][1]
    assert final_report.recall == pytest.approx(1.0), "all planted rules recovered"
    assert final_report.sigma_mae < 0.03, "sigma converges to the planted values"
    first_defined = next(report.sigma_mae for _e, report in rows if report.matched)
    assert final_report.sigma_mae <= first_defined, "error shrinks with history length"


def test_e6_mining_runtime(benchmark):
    log = sample_history(TRUE_RULES, CATALOGUE, PATTERNS, 2000, seed=17)
    mined = benchmark(lambda: mine_rules(log, MiningConfig(min_support=5, min_lift=0.0)))
    assert mined
