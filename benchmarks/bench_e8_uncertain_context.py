"""E8 — Section 3.3: scoring under *uncertain* context.

The worked example assumes a certain context; the model's full form
sums over context feature vectors weighted by their probabilities.
This bench sweeps the probability that Peter is having breakfast from
0 to 1 and tracks the four programs' scores:

* all three scorers (enumeration / factorised / exact) agree at every
  level — the Section 3.3 expectation is computed consistently;
* the ranking *flips*: with no breakfast evidence Oprah (weekend human
  interest) beats BBC news; as breakfast becomes certain the news
  programs take over — context uncertainty degrades gracefully instead
  of switching behaviour abruptly.
"""

import pytest

from repro.core import ContextAwareScorer
from repro.reporting import TextTable
from repro.workloads import build_tvtouch, set_breakfast_weekend_context

LEVELS = [0.0, 0.2, 0.4, 0.6, 0.8, 1.0]


def _scores_at(world, probability_level, method):
    set_breakfast_weekend_context(
        world, breakfast_probability=probability_level, tick=f"p{probability_level}"
    )
    scorer = ContextAwareScorer(
        abox=world.abox, tbox=world.tbox, user=world.user,
        repository=world.repository, space=world.space, method=method,
    )
    return scorer.score_map(world.program_ids)


def test_e8_uncertain_breakfast_sweep(benchmark, save_result, save_json):
    world = build_tvtouch()

    def sweep():
        return {
            level: {
                method: _scores_at(world, level, method)
                for method in ("factorised", "enumeration", "exact")
            }
            for level in LEVELS
        }

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)

    # Cross-method agreement at every uncertainty level.
    for level, by_method in results.items():
        for program, value in by_method["factorised"].items():
            assert by_method["enumeration"][program] == pytest.approx(value, abs=1e-9)
            assert by_method["exact"][program] == pytest.approx(value, abs=1e-9)

    table = TextTable(["P(Breakfast)"] + world.program_ids)
    for level in LEVELS:
        scores = results[level]["factorised"]
        table.add_row([level] + [scores[program] for program in world.program_ids])
    save_result("e8_uncertain_context", table.render())
    save_json(
        "e8_uncertain_context",
        {
            "experiment": "e8_uncertain_context",
            "levels": {
                str(level): results[level]["factorised"] for level in LEVELS
            },
        },
    )

    # Ranking flip: weekend-only vs full breakfast-and-weekend context.
    no_breakfast = results[0.0]["factorised"]
    full_breakfast = results[1.0]["factorised"]
    assert no_breakfast["oprah"] > no_breakfast["bbc_news"]
    assert full_breakfast["bbc_news"] > full_breakfast["oprah"]
    # The certain end reproduces Table 1 exactly.
    assert full_breakfast["channel5_news"] == pytest.approx(0.6006, abs=1e-9)

    # Scores move monotonically in the context probability (each rule's
    # factor is linear in P(g)).
    for program in world.program_ids:
        series = [results[level]["factorised"][program] for level in LEVELS]
        deltas = [b - a for a, b in zip(series, series[1:])]
        assert all(d <= 1e-12 for d in deltas) or all(d >= -1e-12 for d in deltas)


def test_e8_exact_scorer_runtime(benchmark):
    world = build_tvtouch()
    set_breakfast_weekend_context(world, breakfast_probability=0.7, weekend_probability=0.8)
    scorer = ContextAwareScorer(
        abox=world.abox, tbox=world.tbox, user=world.user,
        repository=world.repository, space=world.space, method="exact",
    )
    scores = benchmark(lambda: scorer.score_map(world.program_ids))
    assert all(0.0 <= value <= 1.0 for value in scores.values())
