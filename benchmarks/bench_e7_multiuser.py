"""E7 — Section 6 "Modeling multiple users".

The conjectured group extension, measured: Peter (weekend human
interest) and Mary (breakfast news) share a Saturday breakfast; the
aggregation strategies must converge on the compromise program
(Channel 5 news carries both a human-interest genre and a news
subject), except most-pleasure which follows the single happiest
member.
"""

import pytest

from repro.core import ContextAwareScorer
from repro.multiuser import GroupMember, GroupRanker
from repro.reporting import TextTable
from repro.rules import RuleRepository, parse_rule


def _member(name, world, line):
    repository = RuleRepository([parse_rule(line)])
    return GroupMember(
        name,
        ContextAwareScorer(
            abox=world.abox, tbox=world.tbox, user=world.user,
            repository=repository, space=world.space,
        ),
    )


@pytest.fixture(scope="module")
def group(tvtouch_world):
    peter = _member(
        "peter",
        tvtouch_world,
        "RULE p1: WHEN Weekend PREFER TvProgram AND EXISTS hasGenre.{HUMAN-INTEREST} WITH 0.9",
    )
    mary = _member(
        "mary",
        tvtouch_world,
        "RULE m1: WHEN Breakfast PREFER TvProgram AND EXISTS hasSubject.NewsSubject WITH 0.9",
    )
    return [peter, mary]


def test_e7_group_strategies(benchmark, group, tvtouch_world, save_result, save_json):
    def run():
        results = {}
        for strategy in GroupRanker.available_strategies():
            ranker = GroupRanker(group, strategy=strategy)
            results[strategy] = ranker.rank(tvtouch_world.program_ids)
        return results

    results = benchmark.pedantic(run, rounds=1, iterations=1)

    for strategy in ("average", "product", "least_misery"):
        assert results[strategy][0].document == "channel5_news", strategy
    assert results["most_pleasure"][0].document == "bbc_news"

    table = TextTable(["strategy", "winner", "group score"])
    for strategy, ranking in sorted(results.items()):
        table.add_row([strategy, ranking[0].document, ranking[0].value])
    save_result("e7_multiuser", table.render())
    save_json(
        "e7_multiuser",
        {
            "experiment": "e7_multiuser",
            "winners": {
                strategy: {"document": ranking[0].document, "score": ranking[0].value}
                for strategy, ranking in sorted(results.items())
            },
        },
    )


def test_e7_group_scoring_runtime(benchmark, group, tvtouch_world):
    ranker = GroupRanker(group, strategy="average")
    scores = benchmark(lambda: ranker.rank(tvtouch_world.program_ids))
    assert len(scores) == 4
