"""E7 — Section 6 "Modeling multiple users".

The conjectured group extension, measured: Peter (weekend human
interest) and Mary (breakfast news) share a Saturday breakfast; the
aggregation strategies must converge on the compromise program
(Channel 5 news carries both a human-interest genre and a news
subject), except most-pleasure which follows the single happiest
member.

Besides the winners, each strategy's ranking time is recorded (cold
reasoner and warm), so the shared compiled-KB win — members and
repeated strategies reasoning over one memo
(:func:`repro.reason.compiled_kb`) — stays visible in the perf
trajectory.
"""

import time

import pytest

from repro.core import ContextAwareScorer
from repro.multiuser import GroupMember, GroupRanker
from repro.reporting import TextTable
from repro.rules import RuleRepository, parse_rule

TIMING_RUNS = 3


def _member(name, world, line):
    repository = RuleRepository([parse_rule(line)])
    return GroupMember(
        name,
        ContextAwareScorer(
            abox=world.abox, tbox=world.tbox, user=world.user,
            repository=repository, space=world.space,
        ),
    )


def best_of(function, runs: int = TIMING_RUNS) -> float:
    times = []
    for _ in range(runs):
        start = time.perf_counter()
        function()
        times.append(time.perf_counter() - start)
    return min(times)


@pytest.fixture(scope="module")
def group(tvtouch_world):
    peter = _member(
        "peter",
        tvtouch_world,
        "RULE p1: WHEN Weekend PREFER TvProgram AND EXISTS hasGenre.{HUMAN-INTEREST} WITH 0.9",
    )
    mary = _member(
        "mary",
        tvtouch_world,
        "RULE m1: WHEN Breakfast PREFER TvProgram AND EXISTS hasSubject.NewsSubject WITH 0.9",
    )
    return [peter, mary]


def test_e7_group_strategies(benchmark, group, tvtouch_world, save_result, save_json):
    # Both members share the registry KB over the tvtouch world: the
    # first strategy's ranking binds cold, the rest hit the memo.
    shared = GroupRanker(group, strategy="average").shared_kb()
    assert shared is not None

    def run():
        results = {}
        for strategy in GroupRanker.available_strategies():
            ranker = GroupRanker(group, strategy=strategy)
            results[strategy] = ranker.rank(tvtouch_world.program_ids)
        return results

    results = benchmark.pedantic(run, rounds=1, iterations=1)

    for strategy in ("average", "product", "least_misery"):
        assert results[strategy][0].document == "channel5_news", strategy
    assert results["most_pleasure"][0].document == "bbc_news"

    timings = {}
    for strategy in GroupRanker.available_strategies():
        ranker = GroupRanker(group, strategy=strategy)
        timings[strategy] = best_of(lambda: ranker.rank(tvtouch_world.program_ids))

    table = TextTable(["strategy", "winner", "group score", "best (ms)"])
    for strategy, ranking in sorted(results.items()):
        table.add_row(
            [strategy, ranking[0].document, ranking[0].value, timings[strategy] * 1e3]
        )
    save_result("e7_multiuser", table.render())
    save_json(
        "e7_multiuser",
        {
            "experiment": "e7_multiuser",
            "timing_runs": TIMING_RUNS,
            "winners": {
                strategy: {
                    "document": ranking[0].document,
                    "score": ranking[0].value,
                    "best_ms": timings[strategy] * 1e3,
                }
                for strategy, ranking in sorted(results.items())
            },
        },
    )


def test_e7_group_scoring_runtime(benchmark, group, tvtouch_world):
    ranker = GroupRanker(group, strategy="average")
    scores = benchmark(lambda: ranker.rank(tvtouch_world.program_ids))
    assert len(scores) == 4
