"""E4 — ablation of the Section 6 performance levers.

The paper names the escape from the exponential blow-up: "prune the
amount of applicable rules and candidate documents in early stages".
This bench quantifies each lever on the Section 5 database:

* factorised vs enumerated expectation (the algorithmic fix);
* lossless rule pruning (dropping impossible-context rules);
* document pruning (sharing the all-miss score);
* the exact probability engines behind the events (Shannon vs BDD).
"""

import pytest

from repro.core import ContextAwareScorer
from repro.events import probability_by_bdd, probability_by_shannon
from repro.dl import membership_event
from repro.reporting import TextTable, timed
from repro.rules import PreferenceRule, RuleRepository
from repro.workloads import generate_rule_series


def _with_unmatched_rules(repository: RuleRepository, extra: int) -> RuleRepository:
    """Add rules whose context never holds (prunable losslessly)."""
    combined = RuleRepository(list(repository))
    for index in range(extra):
        combined.add(
            PreferenceRule.parse(f"dead{index}", f"NeverContext_{index}", "TvProgram", 0.7)
        )
    return combined


def test_e4_factorised_vs_enumeration(benchmark, section5_world, save_result, save_json):
    """The core fix: O(n) factorisation vs the paper's 4^n enumeration."""
    world = section5_world
    repository = generate_rule_series(world, 10, seed=13)

    def run(method):
        scorer = ContextAwareScorer(
            abox=world.abox, tbox=world.tbox, user=world.user,
            repository=repository, space=world.space, method=method,
        )
        return scorer.score_map(world.programs[:50])

    enumerated, enumeration_seconds = timed(lambda: run("enumeration"))
    factorised = benchmark.pedantic(lambda: run("factorised"), rounds=1, iterations=1)
    _scores, factorised_seconds = timed(lambda: run("factorised"))

    for doc, value in factorised.items():
        assert enumerated[doc] == pytest.approx(value, abs=1e-9)
    assert enumeration_seconds > 2 * factorised_seconds, (
        "enumeration must be much slower at 10 rules"
    )
    table = TextTable(["method", "seconds (50 docs, 10 rules)"])
    table.add_row(["enumeration (paper's math)", enumeration_seconds])
    table.add_row(["factorised (Section 6 fix)", factorised_seconds])
    save_result("e4_factorised_vs_enumeration", table.render())
    save_json(
        "e4_factorised_vs_enumeration",
        {
            "experiment": "e4_factorised_vs_enumeration",
            "variants": [
                {"variant": "enumeration", "best_s": enumeration_seconds},
                {"variant": "factorised", "best_s": factorised_seconds},
            ],
            "speedup": enumeration_seconds / factorised_seconds,
        },
    )


def test_e4_rule_pruning(benchmark, section5_world, save_result, save_json):
    """Dead rules cost nothing once pruned, and pruning is lossless."""
    world = section5_world
    live = generate_rule_series(world, 4, seed=13)
    padded = _with_unmatched_rules(live, extra=12)

    def run(repository, threshold=0.0):
        scorer = ContextAwareScorer(
            abox=world.abox, tbox=world.tbox, user=world.user,
            repository=repository, space=world.space, rule_threshold=threshold,
        )
        return scorer.score_map(world.programs)

    baseline = benchmark.pedantic(lambda: run(live), rounds=1, iterations=1)
    padded_scores, padded_seconds = timed(lambda: run(padded))
    _baseline2, live_seconds = timed(lambda: run(live))

    for doc, value in baseline.items():
        assert padded_scores[doc] == pytest.approx(value, abs=1e-9), (
            "pruning impossible-context rules must not change scores"
        )
    table = TextTable(["repository", "rules", "seconds"])
    table.add_row(["live rules only", len(live), live_seconds])
    table.add_row(["with 12 dead rules (pruned)", len(padded), padded_seconds])
    save_result("e4_rule_pruning", table.render())
    save_json(
        "e4_rule_pruning",
        {
            "experiment": "e4_rule_pruning",
            "variants": [
                {"variant": "live rules only", "rules": len(live), "best_s": live_seconds},
                {"variant": "with 12 dead rules (pruned)", "rules": len(padded), "best_s": padded_seconds},
            ],
        },
    )


def test_e4_document_pruning(benchmark, section5_world, save_result, save_json):
    """Sharing the all-miss score across non-matching candidates."""
    world = section5_world
    repository = generate_rule_series(world, 3, seed=13)

    def run(prune: bool):
        scorer = ContextAwareScorer(
            abox=world.abox, tbox=world.tbox, user=world.user,
            repository=repository, space=world.space, prune_documents=prune,
        )
        scores = scorer.score_map(world.programs)
        return scores, scorer.last_prune_report

    (pruned_scores, report) = benchmark.pedantic(lambda: run(True), rounds=1, iterations=1)
    (full_scores, _), unpruned_seconds = timed(lambda: run(False))
    (_, _), pruned_seconds = timed(lambda: run(True))

    for doc, value in full_scores.items():
        assert pruned_scores[doc] == pytest.approx(value, abs=1e-9)
    table = TextTable(["document pruning", "seconds", "docs scored individually"])
    table.add_row(["off", unpruned_seconds, len(world.programs)])
    table.add_row(["on", pruned_seconds, report.scored_documents])
    save_result("e4_document_pruning", table.render())
    save_json(
        "e4_document_pruning",
        {
            "experiment": "e4_document_pruning",
            "variants": [
                {"variant": "off", "best_s": unpruned_seconds},
                {"variant": "on", "best_s": pruned_seconds},
            ],
            "scored_documents": report.scored_documents,
            "trivial_documents": report.trivial_documents,
        },
    )
    assert report.trivial_documents > 0, "some programs match no rule's genre"


def test_e4_event_engines(benchmark, section5_world, save_result, save_json):
    """Shannon vs BDD on the membership events the views produce.

    Program metadata is certain in this workload, so the uncertain
    events come from dynamic context: "has a friend who is (probably)
    doing activity X" composes each friend's uncertain doing-event
    through the view machinery (OR of ANDs).
    """
    from repro.dl.concepts import one_of, some

    world = section5_world
    events = []
    for activity in world.activities:
        concept = some("friendsWith", some("doing", one_of(activity)))
        for person in world.persons[:120]:
            event = membership_event(world.abox, world.tbox, person, concept)
            if not event.is_impossible and not event.is_certain:
                events.append(event)
    assert events

    def run(engine):
        return [engine(event, world.space) for event in events]

    shannon_values = benchmark.pedantic(lambda: run(probability_by_shannon), rounds=1, iterations=1)
    _values, shannon_seconds = timed(lambda: run(probability_by_shannon))
    bdd_values, bdd_seconds = timed(lambda: run(probability_by_bdd))
    for left, right in zip(shannon_values, bdd_values):
        assert left == pytest.approx(right, abs=1e-9)
    table = TextTable(["engine", f"seconds ({len(events)} events)"])
    table.add_row(["shannon", shannon_seconds])
    table.add_row(["bdd", bdd_seconds])
    save_result("e4_event_engines", table.render())
    save_json(
        "e4_event_engines",
        {
            "experiment": "e4_event_engines",
            "events": len(events),
            "variants": [
                {"variant": "shannon", "best_s": shannon_seconds},
                {"variant": "bdd", "best_s": bdd_seconds},
            ],
        },
    )
