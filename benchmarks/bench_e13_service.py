"""E13 — the serving runtime: throughput and tail latency under traffic.

The ROADMAP's north star is an always-on service under heavy traffic;
this experiment measures the whole serving stack end to end on the
tvtouch fleet (the E12 multi-tenant world behind a
:class:`~repro.service.RankingService`):

* **in-process**: the staged pipeline (parse → admit → resolve →
  context → rank → render) driven closed-loop by
  :func:`repro.workloads.run_traffic` — Zipf tenant popularity, 50 %
  context churn, 8 concurrent workers;
* **over HTTP**: the same deterministic schedule through the
  ``ThreadingHTTPServer`` gateway on a loopback socket, so the delta
  between the two rows is exactly the HTTP + JSON overhead;
* **score identity**: for every context menu, the JSON body served
  over HTTP must match the in-process engine to ≤ 1e-9.

Claims asserted (full mode): ≥ 1 000 requests/s in-process at
concurrency 8, zero request errors on both paths, and HTTP/in-process
score identity.
"""

import os
import threading

import pytest

from repro.engine import shared_basis_pool
from repro.reason import clear_registry
from repro.reporting import TextTable
from repro.service import RankingService, ServiceConfig, ServiceRequest, make_server
from repro.tenants import TenantRegistry
from repro.workloads import (
    CONTEXT_MENUS,
    RetryPolicy,
    TrafficConfig,
    build_schedule,
    build_tvtouch,
    http_client,
    run_traffic,
)

#: CI smoke mode: tiny workload, no perf assertions (see conftest).
SMOKE = os.environ.get("REPRO_BENCH_SMOKE", "") not in ("", "0")

TENANTS = 16 if SMOKE else 200
REQUESTS = 200 if SMOKE else 4000
HTTP_REQUESTS = 100 if SMOKE else 1500
CONCURRENCY = 8
SHARDS = 8
MIN_IN_PROCESS_RPS = 1000.0


@pytest.fixture(scope="module")
def fleet():
    clear_registry()
    shared_basis_pool().clear()
    registry = TenantRegistry(
        build_tvtouch(), shards=SHARDS, max_sessions=max(TENANTS, 64)
    )
    service = RankingService(
        registry, ServiceConfig(max_concurrency=CONCURRENCY, queue_timeout=5.0)
    )
    yield service
    clear_registry()
    shared_basis_pool().clear()


def traffic_config(requests: int) -> TrafficConfig:
    return TrafficConfig(
        tenants=TENANTS,
        requests=requests,
        concurrency=CONCURRENCY,
        zipf_exponent=1.1,
        context_churn=0.5,
        top_k=None,  # full ranking, so scores are comparable across paths
        seed=42,
    )


def in_process_issue(service):
    def issue(request):
        reply = service.rank(
            ServiceRequest(
                tenant=request.tenant, context=request.context, top_k=request.top_k
            )
        )
        if not reply.ok:
            raise RuntimeError(f"service answered {reply.status}: {reply.body}")
        return reply.body

    return issue


def http_issue(base_url: str):
    """A keep-alive HTTP client over :func:`repro.workloads.http_client`
    (one persistent connection per worker thread, single retry for a
    stale keep-alive), kept dict-returning for the identity checks and
    for e14's import of this helper."""
    client = http_client(
        base_url,
        policy=RetryPolicy(timeout=30.0, retries=1, backoff=0.001, backoff_max=0.001, jitter=0.0),
    )

    def issue(request):
        outcome = client(request)
        if not outcome.ok:
            raise RuntimeError(
                f"gateway answered {outcome.status}: {outcome.error!r}"
            )
        return outcome.body

    return issue


def test_e13_service_throughput(fleet, save_result, save_json):
    service = fleet

    in_process = run_traffic(
        in_process_issue(service), traffic_config(REQUESTS), build_schedule(traffic_config(REQUESTS))
    )
    assert in_process.errors == 0

    server = make_server(service, port=0)
    gateway_thread = threading.Thread(target=server.serve_forever, daemon=True)
    gateway_thread.start()
    try:
        http_config = traffic_config(HTTP_REQUESTS)
        over_http = run_traffic(
            http_issue(server.url), http_config, build_schedule(http_config)
        )

        # Score identity: every context menu, HTTP vs in-process, 1e-9.
        worst_delta = 0.0
        for index, menu in enumerate(CONTEXT_MENUS):
            tenant = f"identity_{index}"
            local = service.rank(ServiceRequest(tenant=tenant, context=menu))
            assert local.ok
            remote = http_issue(server.url)(
                type("R", (), {"tenant": tenant, "context": menu, "top_k": None})()
            )
            local_scores = {item["document"]: item["score"] for item in local.body["items"]}
            remote_scores = {item["document"]: item["score"] for item in remote["items"]}
            assert set(local_scores) == set(remote_scores)
            worst_delta = max(
                worst_delta,
                max(
                    abs(local_scores[doc] - remote_scores[doc])
                    for doc in local_scores
                ),
            )
        assert worst_delta <= 1e-9
    finally:
        server.shutdown()
        server.server_close()
    assert over_http.errors == 0

    rows = {
        "in_process": in_process.to_dict(),
        "http": over_http.to_dict(),
    }
    table = TextTable(
        ["path", "requests", "throughput (req/s)", "p50 (ms)", "p95 (ms)", "p99 (ms)"]
    )
    for path, row in rows.items():
        table.add_row(
            [
                path,
                row["requests"],
                f"{row['throughput_rps']:.0f}",
                f"{row['latency_p50_ms']:.2f}",
                f"{row['latency_p95_ms']:.2f}",
                f"{row['latency_p99_ms']:.2f}",
            ]
        )
    save_result("e13_service", table.render())
    save_json(
        "e13_service",
        {
            "experiment": "e13_service",
            "tenants": TENANTS,
            "concurrency": CONCURRENCY,
            "shards": SHARDS,
            "context_churn": 0.5,
            "zipf_exponent": 1.1,
            "max_http_score_delta": worst_delta,
            "paths": rows,
            "stage_metrics": service.metrics.snapshot()["stages"],
        },
    )

    if not SMOKE:
        assert in_process.throughput_rps >= MIN_IN_PROCESS_RPS, (
            f"in-process throughput {in_process.throughput_rps:.0f} req/s at "
            f"concurrency {CONCURRENCY} is below the {MIN_IN_PROCESS_RPS:.0f} req/s bound"
        )


def test_e13_admission_control_sheds_load(save_json):
    """Overload answers fast 503s instead of queueing without bound."""
    clear_registry()
    registry = TenantRegistry(build_tvtouch(), shards=2, max_sessions=32)
    service = RankingService(
        registry, ServiceConfig(max_concurrency=1, queue_timeout=0.0)
    )
    # Hold the only admission slot, then hit the service from outside.
    assert service._admission.acquire(timeout=1.0)
    try:
        reply = service.rank({"tenant": ["alice"]})
    finally:
        service._admission.release()
    assert reply.status == 503
    assert "overloaded" in reply.body["error"]
    outcomes = service.metrics.outcomes()
    assert outcomes.get("rejected") == 1
    save_json(
        "e13_admission",
        {"experiment": "e13_admission", "rejected_status": reply.status},
    )
    clear_registry()
