"""E9 — the engine facade's overhead over direct scorer calls.

Claim: routing ranking through :class:`RankingEngine` (signature
computation, cache lookup, request/response construction) costs less
than 5 % over calling the scorer directly for the same artifact — a
ranked view over every member of the target concept — and the cached
warm path is at least an order of magnitude faster than rescoring.

"Cold" means the state a context change actually produces: the view
cache misses *and* the compiled reasoner (:mod:`repro.reason`) is on a
fresh epoch — any ABox mutation moves both.  Both the facade and the
direct baseline therefore invalidate the shared KB per run; leaving
the reasoner warm under a cold view cache would compare a state that
cannot arise against one that can.

Measured on a Section 5 test database (scale 0.4, six rules), best of
seven runs per variant to shed scheduler noise.
"""

import os
import time

import pytest

from repro.core import ContextAwareScorer, PreferenceView
from repro.engine import RankingEngine, RankRequest
from repro.reporting import TextTable
from repro.workloads import (
    Section5Counts,
    generate_rule_series,
    generate_test_database,
    install_context_series,
)

#: CI smoke mode: tiny workload, no perf assertions (see conftest).
SMOKE = os.environ.get("REPRO_BENCH_SMOKE", "") not in ("", "0")

RUNS = 2 if SMOKE else 7
SCALE = 0.1 if SMOKE else 0.4
RULES = 3 if SMOKE else 6
MAX_COLD_OVERHEAD = 0.05
MIN_WARM_SPEEDUP = 10.0


def best_of(function, runs: int = RUNS) -> float:
    times = []
    for _ in range(runs):
        start = time.perf_counter()
        function()
        times.append(time.perf_counter() - start)
    return min(times)


@pytest.fixture(scope="module")
def setup():
    counts = Section5Counts().scaled(SCALE)
    world = generate_test_database(seed=7, counts=counts)
    install_context_series(world, k=7, seed=11)
    repository = generate_rule_series(world, RULES, seed=13)
    scorer = ContextAwareScorer(
        abox=world.abox, tbox=world.tbox, user=world.user,
        repository=repository, space=world.space,
    )
    engine = RankingEngine.from_world(world, rules=repository)
    return world, scorer, engine


def test_e9_engine_overhead(setup, save_result, save_json):
    world, scorer, engine = setup

    # The same artifact three ways: the direct view refresh the facade
    # wraps (scored members, materialised into the database — the world
    # carries one, so the engine materialises too), the facade with
    # cold caches, the facade with a warm cache.
    view = PreferenceView(scorer, world.target, world.database)

    def direct():
        scorer.kb.invalidate()
        view.refresh()

    direct_seconds = best_of(direct)

    def cold_rank():
        engine.invalidate_cache()
        engine.kb.invalidate()
        engine.rank()

    cold_seconds = best_of(cold_rank)
    warm_seconds = best_of(lambda: engine.rank())

    # Context: scoring an explicit candidate list skips the view's
    # member retrieval, so it is reported but not the overhead baseline.
    request = RankRequest(documents=world.programs)

    def direct_documents():
        scorer.kb.invalidate()
        scorer.score_map(world.programs)

    score_map_seconds = best_of(direct_documents)

    def cold_documents():
        engine.invalidate_cache()
        engine.kb.invalidate()
        engine.rank(request)

    cold_documents_seconds = best_of(cold_documents)

    overhead = cold_seconds / direct_seconds - 1.0
    speedup = direct_seconds / warm_seconds

    table = TextTable(["variant", "best (ms)", "vs direct"])
    table.add_row(["direct scorer (concept members)", direct_seconds * 1e3, "1.00x"])
    table.add_row(["engine, cold cache", cold_seconds * 1e3, f"{overhead:+.2%}"])
    table.add_row(["engine, warm cache", warm_seconds * 1e3, f"x{speedup:.0f} faster"])
    table.add_row(["direct scorer (document list)", score_map_seconds * 1e3, "-"])
    table.add_row(["engine, cold (document list)", cold_documents_seconds * 1e3, "-"])
    save_result("e9_engine_overhead", table.render())
    save_json(
        "e9_engine_overhead",
        {
            "experiment": "e9_engine_overhead",
            "variants": [
                {"variant": "direct scorer (concept members)", "best_ms": direct_seconds * 1e3},
                {"variant": "engine, cold cache", "best_ms": cold_seconds * 1e3},
                {"variant": "engine, warm cache", "best_ms": warm_seconds * 1e3},
                {"variant": "direct scorer (document list)", "best_ms": score_map_seconds * 1e3},
                {"variant": "engine, cold (document list)", "best_ms": cold_documents_seconds * 1e3},
            ],
            "cold_overhead": overhead,
            "warm_speedup": speedup,
        },
    )

    if SMOKE:
        return
    assert overhead < MAX_COLD_OVERHEAD, (
        f"facade overhead {overhead:.2%} exceeds {MAX_COLD_OVERHEAD:.0%} "
        f"(direct {direct_seconds * 1e3:.2f}ms vs cold {cold_seconds * 1e3:.2f}ms)"
    )
    assert speedup > MIN_WARM_SPEEDUP, (
        f"warm cache speedup x{speedup:.1f} below x{MIN_WARM_SPEEDUP:.0f}"
    )


def test_e9_cache_accounting(setup):
    _world, _scorer, engine = setup
    engine.invalidate_cache()
    engine.rank()
    before = engine.cache_info()
    engine.rank()
    after = engine.cache_info()
    assert after.hits == before.hits + 1
    assert after.misses == before.misses
