"""E15 — resilience under storm: kills, injected faults, deadlines.

The PR 7 robustness layer claims the service stays *available* while
things go wrong, not merely that it fails cleanly.  This experiment
storms a 4-worker fleet on the E13 traffic shape while two fault
sources run concurrently:

* **worker churn** — an external killer SIGKILLs one worker at a
  time on a rotating schedule (each slot dies at most once per
  crash-loop window, so the supervisor keeps respawning rather than
  fencing the slot);
* **engine faults** — every worker carries a
  :class:`~repro.service.FaultInjector` with a 5 % rank-error rate,
  so one request in twenty blows up inside the engine.

The client is the retrying :func:`repro.workloads.http_client`
(socket timeouts + jittered backoff), and the claim asserted in full
mode is **availability ≥ 99 %** — stale degraded answers count as
answered (they are flagged and reported separately).

Two further phases pin the deadline and crash-loop behaviour:

* a wedged engine (injected 2 s rank delay vs a 0.2 s request
  timeout) must answer 504 within **2× the request timeout**, and
  once the slow work drains the admission slots must all return;
* a worker slot dying ≥ 3 times inside the crash-loop window must be
  fenced — respawns stop, ``health()`` degrades — while the
  surviving workers keep serving.
"""

import os
import signal
import threading
import time

import pytest

from repro.engine import shared_basis_pool
from repro.reason import clear_registry
from repro.reporting import TextTable
from repro.service import (
    FaultInjector,
    FleetSupervisor,
    RankingService,
    ServiceConfig,
    ServiceRequest,
    supports_fleet,
)
from repro.cache import InMemoryCacheAdapter
from repro.tenants import TenantRegistry
from repro.workloads import (
    RetryPolicy,
    TrafficConfig,
    build_schedule,
    build_tvtouch,
    http_client,
    run_traffic,
)

#: CI smoke mode: tiny workload, no availability assertion (see conftest).
SMOKE = os.environ.get("REPRO_BENCH_SMOKE", "") not in ("", "0")

STORM_REQUESTS = 120 if SMOKE else 2000
STORM_WORKERS = 4
# The event-loop gateway clears the smoke-sized storm in well under
# 0.5s, so the smoke killer must tick fast enough to land ≥ 1 kill —
# but capped at 2 kills total so rapid ticks can never put 3 deaths
# on one slot inside the crash-loop window and fence it.
KILL_PERIOD = 0.05 if SMOKE else 1.0
MAX_KILLS = 2 if SMOKE else None
RANK_ERROR_RATE = 0.05
CONCURRENCY = 8
MIN_AVAILABILITY = 0.99
REQUEST_TIMEOUT = 0.2
WEDGE_DELAY = 2.0


def storm_config(requests: int) -> TrafficConfig:
    return TrafficConfig(
        tenants=64 if SMOKE else 200,
        requests=requests,
        concurrency=CONCURRENCY,
        zipf_exponent=1.1,
        context_churn=0.5,
        top_k=3,
        seed=42,
    )


def faulty_factory(worker_info):
    """Per-worker service with a seeded 5 % rank-error injector and a
    response cache (so serve-stale has bodies to degrade onto).

    Micro-batching is enabled so the storm also proves the scheduler
    holds the availability bound: queued mates must get their answer
    (or their 504) through worker kills, breaker trips and injected
    rank faults."""
    registry = TenantRegistry(build_tvtouch(), shards=8, max_sessions=256)
    return RankingService(
        registry,
        ServiceConfig(
            max_concurrency=CONCURRENCY,
            queue_timeout=5.0,
            batch_max_size=8,
            batch_max_wait_us=1000.0,
        ),
        cache=InMemoryCacheAdapter(ttl=None),
        fault_injector=FaultInjector(
            rank_error_rate=RANK_ERROR_RATE, seed=1000 + worker_info["index"]
        ),
        worker_info=dict(worker_info),
    )


def rotating_killer(fleet, stop: threading.Event, kills: list[int]):
    """SIGKILL one worker per period, rotating across slots so no
    single slot dies often enough to trip the crash-loop fence."""
    turn = 0
    while not stop.wait(KILL_PERIOD):
        if MAX_KILLS is not None and len(kills) >= MAX_KILLS:
            return
        pids = fleet.worker_pids()
        if not pids:
            continue
        victim = pids[turn % len(pids)]
        turn += 1
        try:
            os.kill(victim, signal.SIGKILL)
        except ProcessLookupError:  # already dead / respawning
            continue
        kills.append(victim)


@pytest.mark.skipif(not supports_fleet(), reason="needs fork + SO_REUSEPORT")
def test_e15_storm_availability(save_result, save_json):
    clear_registry()
    shared_basis_pool().clear()
    config = storm_config(STORM_REQUESTS)
    schedule = build_schedule(config)
    stop = threading.Event()
    kills: list[int] = []
    with FleetSupervisor(faulty_factory, workers=STORM_WORKERS, port=0) as fleet:
        killer = threading.Thread(
            target=rotating_killer, args=(fleet, stop, kills), daemon=True
        )
        killer.start()
        try:
            issue = http_client(
                fleet.url,
                policy=RetryPolicy(timeout=5.0, retries=3, backoff=0.05),
                seed=7,
            )
            report = run_traffic(issue, config, schedule)
        finally:
            stop.set()
            killer.join(timeout=5)
        # Give in-flight respawns a beat, then capture supervisor state.
        time.sleep(0.3)
        health = fleet.health()
    assert not health["failed"], (
        f"rotating kills must not fence a slot, got {health['failed']}"
    )

    row = report.to_dict()
    table = TextTable(
        ["phase", "requests", "avail", "errors", "retries", "stale", "kills"]
    )
    table.add_row(
        [
            "storm",
            row["requests"],
            f"{report.availability:.4f}",
            row["errors"],
            row["retries"],
            row["stale"],
            len(kills),
        ]
    )
    save_result("e15_resilience", table.render())
    save_json(
        "e15_resilience",
        {
            "experiment": "e15_resilience",
            "workers": STORM_WORKERS,
            "kill_period_seconds": KILL_PERIOD,
            "workers_killed": len(kills),
            "rank_error_rate": RANK_ERROR_RATE,
            "batching_enabled": True,
            "availability": report.availability,
            "min_availability_bound": MIN_AVAILABILITY,
            "respawns": health["respawns"],
            "storm": row,
        },
    )

    assert len(kills) >= 1, "the storm never actually killed a worker"
    if not SMOKE:
        assert report.availability >= MIN_AVAILABILITY, (
            f"availability {report.availability:.4f} under worker kills + "
            f"{RANK_ERROR_RATE:.0%} rank faults is below the "
            f"{MIN_AVAILABILITY:.0%} bound "
            f"(errors={report.errors}/{report.requests})"
        )
    clear_registry()
    shared_basis_pool().clear()


def test_e15_deadline_bound(save_json):
    """A wedged engine answers 504 within 2x the request timeout, and
    the admission slots all come back once the slow work drains."""
    clear_registry()
    shared_basis_pool().clear()
    registry = TenantRegistry(build_tvtouch(), shards=4, max_sessions=64)
    service = RankingService(
        registry,
        ServiceConfig(
            max_concurrency=4,
            queue_timeout=1.0,
            request_timeout=REQUEST_TIMEOUT,
            breaker_enabled=False,  # isolate the deadline path
        ),
        fault_injector=FaultInjector(rank_delay=WEDGE_DELAY),
    )
    started = time.perf_counter()
    reply = service.rank(ServiceRequest(tenant="wedged", context=("Weekend",)))
    elapsed = time.perf_counter() - started
    assert reply.status == 504
    assert service.metrics.outcomes().get("timeout") == 1
    if not SMOKE:
        assert elapsed <= 2 * REQUEST_TIMEOUT, (
            f"deadline-exceeded answer took {elapsed:.3f}s against a "
            f"{REQUEST_TIMEOUT}s request timeout"
        )
    # The wedged pool thread still holds the slot until the injected
    # delay elapses; it must then return every slot to the semaphore.
    deadline = time.monotonic() + WEDGE_DELAY + 5.0
    while time.monotonic() < deadline and service.available_slots() != 4:
        time.sleep(0.02)
    assert service.available_slots() == 4
    service.close()
    save_json(
        "e15_deadline",
        {
            "experiment": "e15_deadline",
            "request_timeout": REQUEST_TIMEOUT,
            "injected_delay": WEDGE_DELAY,
            "answer_seconds": elapsed,
            "status": reply.status,
        },
    )
    clear_registry()


@pytest.mark.skipif(not supports_fleet(), reason="needs fork + SO_REUSEPORT")
def test_e15_crash_loop_fence(save_json):
    """A slot dying >= 3 times in the window is fenced: respawns stop,
    health degrades, and the surviving workers keep answering."""
    clear_registry()
    shared_basis_pool().clear()

    def factory(worker_info):
        registry = TenantRegistry(build_tvtouch(), shards=2, max_sessions=32)
        injector = (
            FaultInjector(worker_ttl=0.25)
            if worker_info["index"] == 0
            else FaultInjector()
        )
        return RankingService(
            registry,
            ServiceConfig(max_concurrency=2, queue_timeout=2.0),
            fault_injector=injector,
            worker_info=dict(worker_info),
        )

    with FleetSupervisor(
        factory,
        workers=2,
        port=0,
        respawn_backoff=0.05,
        crash_loop_threshold=3,
        crash_loop_window=10.0,
    ) as fleet:
        deadline = time.monotonic() + 30.0
        while time.monotonic() < deadline and not fleet.health()["failed"]:
            time.sleep(0.1)
        health = fleet.health()
        assert health["failed"], "the crash-looping slot was never fenced"
        assert health["failed"][0]["index"] == 0
        assert health["failed"][0]["deaths_in_window"] >= 3
        assert health["status"] == "degraded"
        respawns_at_fence = health["respawns"]
        # The fence holds: no further respawns for the dead slot.
        time.sleep(0.5)
        health = fleet.health()
        assert health["respawns"] == respawns_at_fence
        assert not health["pending_respawns"]
        # The surviving worker still answers.
        issue = http_client(fleet.url, policy=RetryPolicy(timeout=5.0, retries=3))
        outcome = issue(
            type("R", (), {"tenant": "alice", "context": ("Weekend",), "top_k": 3})()
        )
        assert outcome.ok, outcome
        save_json(
            "e15_crash_loop",
            {
                "experiment": "e15_crash_loop",
                "fenced_slot": health["failed"][0],
                "respawns": health["respawns"],
                "status": health["status"],
            },
        )
    clear_registry()
    shared_basis_pool().clear()
