"""E12 — the multi-tenant knowledge layer: sessions per second and bytes
per session.

The ROADMAP's "millions of users" north star dies at whatever fits in
RAM if every user carries a private copy of the world.  This experiment
measures the tenant stack (:mod:`repro.tenants` over
:class:`~repro.dl.abox.LayeredABox` overlays and the shared reasoner
base tier) against the naive alternative — ``copy.deepcopy`` of the
base world per user — on a Section 5 test database:

* **session creation throughput** at 100 / 1 000 / 5 000 tenants
  (overlay + user individual + rules + engine per session), versus the
  time to deep-copy the base ABox alone;
* **per-session marginal memory** (tracemalloc) versus the bytes of one
  private deep-copied world;
* **score identity**: an overlay-backed tenant must reproduce a
  private-world engine bit-for-bit (≤ 1e-9) on the E9 engine workload
  and on the E7 group workload.

Claims asserted (full mode): overlay sessions are ≥ 5x faster to mint
than deep-copying the base, marginal memory per session is ≤ 10 % of a
private world, and scores agree to 1e-9.
"""

import copy
import gc
import os
import time
import tracemalloc

import pytest

from repro.engine import RankingEngine
from repro.multiuser import GroupMember, GroupRanker
from repro.reason import clear_registry
from repro.reporting import TextTable
from repro.rules import RuleRepository, parse_rule
from repro.core import ContextAwareScorer
from repro.tenants import TenantRegistry
from repro.workloads import (
    Section5Counts,
    build_tvtouch,
    generate_rule_series,
    generate_test_database,
    install_context_series,
    set_breakfast_weekend_context,
)

#: CI smoke mode: tiny workload, no perf assertions (see conftest).
SMOKE = os.environ.get("REPRO_BENCH_SMOKE", "") not in ("", "0")

SCALE = 0.05 if SMOKE else 0.25
RULES = 3 if SMOKE else 6
TENANT_COUNTS = (10,) if SMOKE else (100, 1000, 5000)
DEEPCOPY_SAMPLES = 2 if SMOKE else 5
MIN_CREATION_SPEEDUP = 5.0
MAX_MEMORY_RATIO = 0.10


def fresh_world():
    world = generate_test_database(seed=7, counts=Section5Counts().scaled(SCALE))
    install_context_series(world, k=5, seed=11)
    return world


@pytest.fixture(scope="module")
def base_world():
    clear_registry()
    return fresh_world()


def measure_minting(world, repository, count):
    """(seconds, marginal bytes/session) for ``count`` overlay sessions."""
    registry = TenantRegistry(
        world, rules=repository, max_sessions=count, freeze=False
    )
    gc.collect()
    tracemalloc.start()
    before, _peak = tracemalloc.get_traced_memory()
    start = time.perf_counter()
    sessions = [registry.session(f"tenant_{index:05d}") for index in range(count)]
    seconds = time.perf_counter() - start
    after, _peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()
    assert len(sessions) == count
    return seconds, max(0, after - before) / count


def measure_private_world(world):
    """(seconds, bytes) for one deep-copied private base ABox."""
    gc.collect()
    tracemalloc.start()
    before, _peak = tracemalloc.get_traced_memory()
    start = time.perf_counter()
    clones = [copy.deepcopy(world.abox) for _ in range(DEEPCOPY_SAMPLES)]
    seconds = (time.perf_counter() - start) / DEEPCOPY_SAMPLES
    after, _peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()
    per_clone_bytes = max(0, after - before) / len(clones)
    return seconds, per_clone_bytes


def test_e12_tenant_sessions(base_world, save_result, save_json):
    repository = generate_rule_series(base_world, RULES, seed=13)
    private_seconds, private_bytes = measure_private_world(base_world)

    rows = []
    for count in TENANT_COUNTS:
        seconds, marginal_bytes = measure_minting(base_world, repository, count)
        rows.append(
            {
                "tenants": count,
                "sessions_per_second": count / seconds if seconds else float("inf"),
                "marginal_bytes_per_session": marginal_bytes,
                "memory_ratio": marginal_bytes / private_bytes if private_bytes else 0.0,
                "creation_speedup_vs_deepcopy": (
                    private_seconds / (seconds / count) if seconds else float("inf")
                ),
            }
        )

    table = TextTable(
        ["tenants", "sessions/s", "bytes/session", "vs private world", "mint speedup"]
    )
    for row in rows:
        table.add_row(
            [
                row["tenants"],
                f"{row['sessions_per_second']:.0f}",
                f"{row['marginal_bytes_per_session']:.0f}",
                f"{row['memory_ratio']:.1%}",
                f"x{row['creation_speedup_vs_deepcopy']:.1f}",
            ]
        )
    save_result("e12_tenants", table.render())
    save_json(
        "e12_tenants",
        {
            "experiment": "e12_tenants",
            "scale": SCALE,
            "rules": RULES,
            "base_assertions": len(base_world.abox),
            "private_world_bytes": private_bytes,
            "private_world_deepcopy_seconds": private_seconds,
            "deepcopy_samples": DEEPCOPY_SAMPLES,
            "tenants": rows,
        },
    )

    if not SMOKE:
        at_1k = next(row for row in rows if row["tenants"] == 1000)
        assert at_1k["memory_ratio"] <= MAX_MEMORY_RATIO, (
            f"marginal session memory {at_1k['memory_ratio']:.1%} of a private world "
            f"exceeds the {MAX_MEMORY_RATIO:.0%} bound"
        )
        assert at_1k["creation_speedup_vs_deepcopy"] >= MIN_CREATION_SPEEDUP, (
            f"minting a session is only x{at_1k['creation_speedup_vs_deepcopy']:.1f} "
            f"faster than deep-copying the base (need x{MIN_CREATION_SPEEDUP:.0f})"
        )


def test_e12_overlay_scores_match_private_engine_e9(save_json):
    """The E9 workload, both ways: private full world vs tenant overlay."""
    clear_registry()
    private_world = fresh_world()
    repository = generate_rule_series(private_world, RULES, seed=13)
    private = RankingEngine.from_world(private_world, rules=repository)
    private_scores = private.preference_scores()

    # Same generated world (deterministic seed), context *not* installed
    # in the base: the tenant carries it in their overlay instead.
    base = generate_test_database(seed=7, counts=Section5Counts().scaled(SCALE))
    tenant_rules = generate_rule_series(base, RULES, seed=13)
    registry = TenantRegistry(base, rules=tenant_rules)
    session = registry.session("tenant", user=base.user.name)
    probabilities = install_context_series(
        _OverlayWorldAdapter(base, session), k=5, seed=11
    )
    assert probabilities  # same context series as the private world
    overlay_scores = session.preference_scores()

    assert set(overlay_scores) == set(private_scores)
    worst = max(
        abs(overlay_scores[document] - private_scores[document])
        for document in private_scores
    )
    save_json(
        "e12_identity_e9",
        {
            "experiment": "e12_identity_e9",
            "documents": len(private_scores),
            "max_abs_score_delta": worst,
        },
    )
    assert worst <= 1e-9


class _OverlayWorldAdapter:
    """Routes install_context_series writes into a tenant overlay."""

    def __init__(self, world, session):
        self.abox = session.overlay
        self.space = world.space
        self.user = session.user
        self.database = world.database


def test_e12_overlay_group_matches_flat_group_e7(save_json):
    """The E7 group workload: flat shared-world members vs tenant overlays."""
    clear_registry()
    rule_p = "RULE p1: WHEN Weekend PREFER TvProgram AND EXISTS hasGenre.{HUMAN-INTEREST} WITH 0.9"
    rule_m = "RULE m1: WHEN Breakfast PREFER TvProgram AND EXISTS hasSubject.NewsSubject WITH 0.9"

    flat_world = build_tvtouch()
    set_breakfast_weekend_context(flat_world)
    flat_members = [
        GroupMember(
            name,
            ContextAwareScorer(
                abox=flat_world.abox,
                tbox=flat_world.tbox,
                user=flat_world.user,
                repository=RuleRepository([parse_rule(line)]),
                space=flat_world.space,
            ),
        )
        for name, line in (("peter", rule_p), ("mary", rule_m))
    ]

    registry = TenantRegistry(build_tvtouch())
    peter = registry.session("peter", rules=RuleRepository([parse_rule(rule_p)]))
    mary = registry.session("mary", rules=RuleRepository([parse_rule(rule_m)]))
    for session in (peter, mary):
        session.install_context("Weekend", "Breakfast")

    worst = 0.0
    winners = {}
    for strategy in GroupRanker.available_strategies():
        flat = GroupRanker(flat_members, strategy=strategy).rank(flat_world.program_ids)
        overlay = GroupRanker.from_sessions(
            {"peter": peter, "mary": mary}, strategy=strategy
        ).rank(flat_world.program_ids)
        assert [score.document for score in flat] == [score.document for score in overlay]
        worst = max(
            worst,
            max(
                abs(flat_score.value - overlay_score.value)
                for flat_score, overlay_score in zip(flat, overlay)
            ),
        )
        winners[strategy] = flat[0].document
    save_json(
        "e12_identity_e7",
        {
            "experiment": "e12_identity_e7",
            "winners": winners,
            "max_abs_score_delta": worst,
        },
    )
    assert worst <= 1e-9
