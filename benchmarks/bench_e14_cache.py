"""E14 — the response cache and the pre-fork serving fleet under traffic.

Between context changes a tenant's ranked answer is a pure function of
its knowledge state and the query, so the serving layer can answer
repeats without touching the engine at all.  This experiment measures
that claim on the E13 traffic shape (Zipf tenant popularity, 50 %
context churn — i.e. half the requests repeat a recently ranked
state):

* **in-process, cached vs uncached** — the same deterministic
  schedule through a :class:`RankingService` with and without an
  :class:`InMemoryCacheAdapter`: hit ratio, throughput, and the
  cache-hit p50 (the ``total.cached`` stage), asserted < 1 ms;
* **identity** — for every context menu, the cached service's second
  answer must match an uncached service to ≤ 1e-9 per document;
* **over HTTP** — single process without cache (the E13 / PR 5
  baseline), single process with cache, and a ``--workers 4`` fleet
  with per-worker caches, all driven by the keep-alive client.

The fleet comparison is core-bound: worker processes only add
throughput when the kernel has cores to schedule them on.  On ≥ 4
cores the fleet must clear 3× the single-process uncached baseline;
on smaller boxes (CI here is single-core, where extra workers are
pure context-switch overhead and the closed-loop client shares the
core) the measured ratio is recorded but not asserted.
"""

import os
import threading

import pytest

from bench_e13_service import http_issue, in_process_issue, traffic_config
from repro.cache import InMemoryCacheAdapter, NoCacheAdapter
from repro.engine import shared_basis_pool
from repro.reason import clear_registry
from repro.reporting import TextTable
from repro.service import (
    FleetSupervisor,
    RankingService,
    ServiceConfig,
    ServiceRequest,
    make_server,
    supports_fleet,
)
from repro.tenants import TenantRegistry
from repro.workloads import (
    CONTEXT_MENUS,
    build_schedule,
    build_tvtouch,
    run_traffic,
)

#: CI smoke mode: tiny workload, no perf assertions (see conftest).
SMOKE = os.environ.get("REPRO_BENCH_SMOKE", "") not in ("", "0")

REQUESTS = 200 if SMOKE else 4000
HTTP_REQUESTS = 100 if SMOKE else 2000
FLEET_WORKERS = 4
MAX_CACHED_P50_MS = 1.0
MIN_FLEET_SPEEDUP = 3.0
#: The fleet assertion needs real cores to schedule workers on.
CORES = os.cpu_count() or 1


def fresh_service(cache):
    clear_registry()
    shared_basis_pool().clear()
    registry = TenantRegistry(build_tvtouch(), shards=8, max_sessions=256)
    return RankingService(
        registry,
        ServiceConfig(max_concurrency=8, queue_timeout=5.0),
        cache=cache,
    )


def drive_in_process(cache):
    service = fresh_service(cache)
    config = traffic_config(REQUESTS)
    report = run_traffic(in_process_issue(service), config, build_schedule(config))
    assert report.errors == 0
    return service, report


def drive_http(service):
    server = make_server(service, port=0)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    try:
        config = traffic_config(HTTP_REQUESTS)
        report = run_traffic(http_issue(server.url), config, build_schedule(config))
    finally:
        server.shutdown()
        server.server_close()
    assert report.errors == 0
    return report


def test_e14_cache_identity():
    """A hit is indistinguishable from the rank it replaced (≤ 1e-9)."""
    cached_svc = fresh_service(InMemoryCacheAdapter(ttl=None))
    uncached_svc = fresh_service(NoCacheAdapter())
    worst = 0.0
    for index, menu in enumerate(CONTEXT_MENUS + ((),)):
        tenant = f"identity_{index}"
        request = ServiceRequest(tenant=tenant, context=menu)
        cached_svc.rank(request)  # fill
        hit = cached_svc.rank(request)
        assert hit.ok and hit.body.get("cached") is True
        reference = uncached_svc.rank(request)
        assert reference.ok
        hit_scores = {item["document"]: item["score"] for item in hit.body["items"]}
        ref_scores = {
            item["document"]: item["score"] for item in reference.body["items"]
        }
        assert set(hit_scores) == set(ref_scores) and hit_scores
        worst = max(
            worst, max(abs(hit_scores[doc] - ref_scores[doc]) for doc in ref_scores)
        )
    assert worst <= 1e-9


def test_e14_cache_traffic(save_result, save_json):
    uncached_svc, uncached = drive_in_process(NoCacheAdapter())
    cached_svc, cached = drive_in_process(InMemoryCacheAdapter(ttl=None))
    info = cached_svc.cache.info()
    assert info.hits > 0
    hit_p50_ms = cached_svc.metrics.snapshot()["stages"]["total.cached"]["p50_ms"]

    http_rows = {}
    fleet_note = None
    if supports_fleet():
        http_rows["http_single_nocache"] = drive_http(
            fresh_service(NoCacheAdapter())
        ).to_dict()
        http_rows["http_single_cache"] = drive_http(
            fresh_service(InMemoryCacheAdapter(ttl=None))
        ).to_dict()

        def factory(worker_info):
            registry = TenantRegistry(build_tvtouch(), shards=8, max_sessions=256)
            return RankingService(
                registry,
                ServiceConfig(max_concurrency=8, queue_timeout=5.0),
                cache=InMemoryCacheAdapter(ttl=None),
                worker_info=dict(worker_info),
            )

        clear_registry()
        shared_basis_pool().clear()
        with FleetSupervisor(factory, workers=FLEET_WORKERS, port=0) as fleet:
            config = traffic_config(HTTP_REQUESTS)
            fleet_report = run_traffic(
                http_issue(fleet.url), config, build_schedule(config)
            )
        assert fleet_report.errors == 0
        http_rows[f"http_fleet_{FLEET_WORKERS}_cache"] = fleet_report.to_dict()
        baseline = http_rows["http_single_nocache"]["throughput_rps"]
        fleet_speedup = fleet_report.throughput_rps / baseline
        if CORES < FLEET_WORKERS:
            fleet_note = (
                f"{CORES}-core host: {FLEET_WORKERS} workers have no cores to "
                f"run on in parallel (and the closed-loop client shares the "
                f"core), so the fleet ratio measures scheduling overhead, not "
                f"scaling; the >= {MIN_FLEET_SPEEDUP:.0f}x bound is asserted "
                f"on >= {FLEET_WORKERS}-core hosts only"
            )
    else:  # pragma: no cover - non-POSIX
        fleet_speedup = None

    rows = {
        "in_process_nocache": uncached.to_dict(),
        "in_process_cache": cached.to_dict(),
        **http_rows,
    }
    table = TextTable(
        ["path", "requests", "throughput (req/s)", "p50 (ms)", "p95 (ms)"]
    )
    for path, row in rows.items():
        table.add_row(
            [
                path,
                row["requests"],
                f"{row['throughput_rps']:.0f}",
                f"{row['latency_p50_ms']:.2f}",
                f"{row['latency_p95_ms']:.2f}",
            ]
        )
    lines = [
        table.render(),
        f"hit ratio {info.hit_ratio:.3f} ({info.hits} hits / {info.misses} misses), "
        f"cache-hit p50 {hit_p50_ms:.3f} ms, "
        f"in-process cache speedup x{cached.throughput_rps / uncached.throughput_rps:.2f}",
    ]
    if fleet_speedup is not None:
        lines.append(
            f"fleet x{FLEET_WORKERS} vs single uncached: x{fleet_speedup:.2f} "
            f"on {CORES} core(s)"
        )
    if fleet_note:
        lines.append(f"note: {fleet_note}")
    save_result("e14_cache", "\n".join(lines))
    save_json(
        "e14_cache",
        {
            "experiment": "e14_cache",
            "cores": CORES,
            "workload": {
                "requests": REQUESTS,
                "http_requests": HTTP_REQUESTS,
                "zipf_exponent": 1.1,
                "context_churn": 0.5,
            },
            "cache": info.to_dict(),
            "cache_hit_p50_ms": hit_p50_ms,
            "in_process_cache_speedup": cached.throughput_rps
            / uncached.throughput_rps,
            "fleet_workers": FLEET_WORKERS,
            "fleet_speedup_vs_single_nocache": fleet_speedup,
            "fleet_note": fleet_note,
            "paths": rows,
            "cached_stage_metrics": {
                name: summary
                for name, summary in cached_svc.metrics.snapshot()["stages"].items()
                if name.startswith("total") or name.startswith("cache")
            },
        },
    )

    if not SMOKE:
        assert info.hit_ratio >= 0.5, (
            f"hit ratio {info.hit_ratio:.3f} on a 50%-churn Zipf workload "
            f"should clear 0.5"
        )
        assert hit_p50_ms < MAX_CACHED_P50_MS, (
            f"cache-hit p50 {hit_p50_ms:.3f} ms breaches the "
            f"{MAX_CACHED_P50_MS} ms bound"
        )
        assert cached.throughput_rps > uncached.throughput_rps, (
            f"cached in-process throughput {cached.throughput_rps:.0f} req/s "
            f"did not beat uncached {uncached.throughput_rps:.0f} req/s"
        )
        if fleet_speedup is not None and CORES >= FLEET_WORKERS:
            assert fleet_speedup >= MIN_FLEET_SPEEDUP, (
                f"fleet of {FLEET_WORKERS} at x{fleet_speedup:.2f} vs the "
                f"single-process uncached baseline is below the "
                f"{MIN_FLEET_SPEEDUP:.0f}x bound on a {CORES}-core host"
            )
    clear_registry()
    shared_basis_pool().clear()


def test_e14_eviction_hook_under_churning_fleet(save_json):
    """A tiny session LRU forces constant evictions; the cache must
    never serve a body across a session re-mint (wrong standing
    context) and the counters must stay coherent."""
    clear_registry()
    registry = TenantRegistry(build_tvtouch(), shards=2, max_sessions=4)
    cache = InMemoryCacheAdapter(ttl=None)
    service = RankingService(
        registry, ServiceConfig(max_concurrency=8, queue_timeout=5.0), cache=cache
    )
    menus = CONTEXT_MENUS
    for round_index in range(3):
        for tenant_index in range(12):  # 3x the session capacity
            tenant = f"churn_{tenant_index}"
            menu = menus[tenant_index % len(menus)]
            delta = service.rank(ServiceRequest(tenant=tenant, context=menu))
            assert delta.ok
            standing = service.rank(ServiceRequest(tenant=tenant))
            assert standing.ok
            # Standing answer must equal the delta answer (same state),
            # cached or not — an eviction between the two just costs a
            # recompute, never a wrong body.
            assert [item["score"] for item in standing.body["items"]] == [
                item["score"] for item in delta.body["items"]
            ]
    info = cache.info()
    assert registry.info().evictions > 0
    assert info.invalidations > 0  # the eviction hook purged tenants
    save_json(
        "e14_eviction_churn",
        {
            "experiment": "e14_eviction_churn",
            "session_evictions": registry.info().evictions,
            "cache": info.to_dict(),
        },
    )
    clear_registry()
