"""Shared fixtures and result persistence for the benchmark harness.

Every benchmark writes the table(s) it regenerates to
``benchmarks/results/<experiment>.txt`` — the same rows EXPERIMENTS.md
quotes — in addition to asserting the claims.
"""

from __future__ import annotations

from pathlib import Path

import pytest

RESULTS_DIR = Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def save_result():
    """Persist a named result table under benchmarks/results/."""

    def _save(name: str, text: str) -> Path:
        RESULTS_DIR.mkdir(exist_ok=True)
        path = RESULTS_DIR / f"{name}.txt"
        path.write_text(text + "\n", encoding="utf-8")
        return path

    return _save


@pytest.fixture(scope="session")
def tvtouch_world():
    """The Table 1 world with the Section 4.2 context installed."""
    from repro.workloads import build_tvtouch, set_breakfast_weekend_context

    world = build_tvtouch()
    set_breakfast_weekend_context(world)
    return world


@pytest.fixture(scope="session")
def section5_world():
    """The full-size Section 5 test database (~11,000 tuples)."""
    from repro.workloads import generate_test_database, install_context_series

    world = generate_test_database(seed=7)
    install_context_series(world, k=12, seed=11)
    return world
