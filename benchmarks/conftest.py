"""Shared fixtures and result persistence for the benchmark harness.

Every benchmark writes the table(s) it regenerates to
``benchmarks/results/<experiment>.txt`` — the same rows EXPERIMENTS.md
quotes — in addition to asserting the claims.  Alongside each table, a
machine-readable ``benchmarks/results/<experiment>.json`` record
(variant timings, speedups) makes the perf trajectory diffable across
PRs.

``REPRO_BENCH_SMOKE=1`` shrinks the workloads and skips the
performance assertions — the CI smoke job uses it to keep the scripts
importable and runnable without paying full benchmark time.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

import pytest

RESULTS_DIR = Path(__file__).parent / "results"

#: Set by the CI smoke job: tiny sizes, no perf assertions.
SMOKE = os.environ.get("REPRO_BENCH_SMOKE", "") not in ("", "0")


@pytest.fixture(scope="session")
def save_result():
    """Persist a named result table under benchmarks/results/.

    Smoke runs skip the write so tiny-size tables never clobber the
    committed full-size artifacts.
    """

    def _save(name: str, text: str) -> Path | None:
        if SMOKE:
            return None
        RESULTS_DIR.mkdir(exist_ok=True)
        path = RESULTS_DIR / f"{name}.txt"
        path.write_text(text + "\n", encoding="utf-8")
        return path

    return _save


def _git_revision() -> str | None:
    """The repo's HEAD commit, or None outside a usable git checkout."""
    try:
        import subprocess

        proc = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=Path(__file__).parent,
            capture_output=True,
            text=True,
            timeout=5,
        )
    except (OSError, subprocess.SubprocessError):
        return None
    revision = proc.stdout.strip()
    return revision if proc.returncode == 0 and revision else None


@pytest.fixture(scope="session")
def save_json():
    """Persist a named machine-readable record under benchmarks/results/.

    Smoke runs skip the write: tiny-size numbers would otherwise
    clobber the committed full-size records.  Every record is stamped
    with the machine's ``cpu_count`` and the ``git_revision`` it was
    measured at, so committed numbers stay comparable across boxes.
    """

    def _save(name: str, record: dict) -> Path | None:
        if SMOKE:
            return None
        record = dict(record)
        record.setdefault("cpu_count", os.cpu_count())
        record.setdefault("git_revision", _git_revision())
        RESULTS_DIR.mkdir(exist_ok=True)
        path = RESULTS_DIR / f"{name}.json"
        path.write_text(
            json.dumps(record, indent=2, sort_keys=True) + "\n", encoding="utf-8"
        )
        return path

    return _save


@pytest.fixture(scope="session")
def tvtouch_world():
    """The Table 1 world with the Section 4.2 context installed."""
    from repro.workloads import build_tvtouch, set_breakfast_weekend_context

    world = build_tvtouch()
    set_breakfast_weekend_context(world)
    return world


@pytest.fixture(scope="session")
def section5_world():
    """The full-size Section 5 test database (~11,000 tuples)."""
    from repro.workloads import generate_test_database, install_context_series

    world = generate_test_database(seed=7)
    install_context_series(world, k=12, seed=11)
    return world
