"""E5 — Section 6 "Evaluation of ranking": a simulated user study.

The paper defers evaluation to user studies; the reproduction replaces
humans with simulated users whose ground-truth rules are known.  Per
trial a context activates, the user's simulated choice follows the
generative sigma model, and each ranker is scored by how highly it
placed what the user actually picked (NDCG@5, MRR).

Rankers compared:

* **context-aware** — the paper's model with the user's true rules;
* **context-free LM** — query likelihood with a generic query (no
  context, the Section 2 baseline);
* **mixed (lambda sweep)** — the Section 6 weighting of the
  query-dependent and query-independent parts, with the query naming a
  genre the user likes.
"""

import random

import pytest

from repro.core import ContextAwareScorer
from repro.dl import Individual, RoleName
from repro.dl.concepts import atomic, one_of, some
from repro.history.episodes import Candidate
from repro.ir import Corpus, LanguageModelRanker, combined_ranking, ndcg_at_k, reciprocal_rank
from repro.reporting import TextTable
from repro.workloads import Section5Counts, generate_population, generate_test_database, simulate_choice

CONTEXTS = ["CtxMorning", "CtxEvening", "CtxWeekend"]
LAMBDAS = [0.0, 0.25, 0.5, 0.75, 1.0]
TRIALS_PER_USER = 12
USERS = 8


def _preference_key(genre: str) -> str:
    return str(atomic("TvProgram") & some("hasGenre", one_of(genre)))


def _program_genres(world, program: str) -> list[str]:
    return [
        assertion.target.name
        for assertion in world.abox.role_successors(RoleName("hasGenre"), Individual(program))
    ]


def _build_study():
    world = generate_test_database(
        seed=21,
        counts=Section5Counts(persons=5, programs=40, genres=8, subjects=4, activities=2, rooms=2),
    )
    users = generate_population(CONTEXTS, world.genres, size=USERS, rules_per_user=3, seed=33)
    slate = [
        Candidate(program, frozenset(_preference_key(g) for g in _program_genres(world, program)))
        for program in world.programs
    ]
    corpus = Corpus()
    for program in world.programs:
        genres = " ".join(_program_genres(world, program))
        corpus.add_text(program, f"tv program {genres}")
    return world, users, slate, corpus


def _run_study():
    world, users, slate, corpus = _build_study()
    lm = LanguageModelRanker(corpus)
    rng = random.Random(91)

    quality = {"context": [], "lm": [], "mrr_context": [], "mrr_lm": []}
    mixed_quality = {lam: [] for lam in LAMBDAS}

    for user in users:
        scorer = ContextAwareScorer(
            abox=world.abox, tbox=world.tbox, user=world.user,
            repository=user.repository, space=world.space,
        )
        for _trial in range(TRIALS_PER_USER):
            rule = rng.choice(user.rules)
            active_context = rule.context_key
            world.abox.clear_dynamic()
            world.abox.assert_concept(active_context, world.user, dynamic=True)

            chosen = simulate_choice(user, {active_context}, slate, rng)
            if not chosen:
                continue
            gains = {doc: 1.0 for doc in chosen}

            context_scores = scorer.score_map(world.programs)
            context_ranking = sorted(context_scores, key=lambda d: (-context_scores[d], d))
            quality["context"].append(ndcg_at_k(context_ranking, gains, 5))
            quality["mrr_context"].append(reciprocal_rank(context_ranking, chosen))

            lm_scores = lm.score_all("tv program")
            lm_ranking = sorted(lm_scores, key=lambda d: (-lm_scores[d], d))
            quality["lm"].append(ndcg_at_k(lm_ranking, gains, 5))
            quality["mrr_lm"].append(reciprocal_rank(lm_ranking, chosen))

            # Mixed: the user queried a genre they actually like.
            genre_query = sorted(rule.preference.individuals())[0].name
            query_scores = lm.score_all(genre_query)
            for lam in LAMBDAS:
                mixed = combined_ranking(query_scores, context_scores, mixing_weight=lam)
                mixed_ranking = [score.doc_id for score in mixed]
                mixed_quality[lam].append(ndcg_at_k(mixed_ranking, gains, 5))
    return quality, mixed_quality


def _mean(values):
    return sum(values) / len(values) if values else 0.0


def test_e5_simulated_user_study(benchmark, save_result, save_json):
    quality, mixed_quality = benchmark.pedantic(_run_study, rounds=1, iterations=1)

    context_ndcg = _mean(quality["context"])
    lm_ndcg = _mean(quality["lm"])
    assert len(quality["context"]) >= 40, "enough effective trials"
    assert context_ndcg > lm_ndcg + 0.15, (
        "context-aware ranking must clearly beat the context-free baseline"
    )
    assert _mean(quality["mrr_context"]) > _mean(quality["mrr_lm"])

    table = TextTable(["ranker", "mean NDCG@5", "mean MRR"])
    table.add_row(["context-aware (true rules)", context_ndcg, _mean(quality["mrr_context"])])
    table.add_row(["context-free LM (generic query)", lm_ndcg, _mean(quality["mrr_lm"])])

    sweep = TextTable(["lambda (query weight)", "mean NDCG@5"])
    for lam in LAMBDAS:
        sweep.add_row([lam, _mean(mixed_quality[lam])])

    save_result(
        "e5_ranking_quality",
        f"{USERS} simulated users x {TRIALS_PER_USER} trials\n"
        + table.render()
        + "\n\nSection 6 weighting sweep (genre query):\n"
        + sweep.render(),
    )

    save_json(
        "e5_ranking_quality",
        {
            "experiment": "e5_ranking_quality",
            "users": USERS,
            "trials_per_user": TRIALS_PER_USER,
            "context_ndcg5": context_ndcg,
            "lm_ndcg5": lm_ndcg,
            "context_mrr": _mean(quality["mrr_context"]),
            "lm_mrr": _mean(quality["mrr_lm"]),
            "lambda_sweep_ndcg5": {str(lam): _mean(mixed_quality[lam]) for lam in LAMBDAS},
        },
    )

    # The context component must help even when a query is present:
    # pure-IR (lambda=1) must not dominate the mixed rankings.
    best_lambda = max(LAMBDAS, key=lambda lam: _mean(mixed_quality[lam]))
    assert best_lambda < 1.0, "some context weighting must beat pure IR"
