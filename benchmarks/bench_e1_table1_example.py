"""E1 — Table 1 / Section 4.2 worked example.

Paper claim: in a certain breakfast-during-the-weekend context the four
programs score Channel 5 news 0.6006, BBC news 0.18, Oprah 0.071,
Monty Python's Flying Circus 0.02.

This bench regenerates the table with every scoring method and times
them against each other on the worked example.
"""

import pytest

from repro.core import ContextAwareScorer
from repro.reporting import TextTable
from repro.workloads import EXPECTED_TABLE1_SCORES, PROGRAMS


def _scorer(world, method: str) -> ContextAwareScorer:
    return ContextAwareScorer(
        abox=world.abox,
        tbox=world.tbox,
        user=world.user,
        repository=world.repository,
        space=world.space,
        method=method,
    )


@pytest.mark.parametrize("method", ["factorised", "enumeration", "exact"])
def test_e1_table1_scores(benchmark, tvtouch_world, method, save_result, save_json):
    scorer = _scorer(tvtouch_world, method)
    scores = benchmark(lambda: scorer.score_map(tvtouch_world.program_ids))

    for program, expected in EXPECTED_TABLE1_SCORES.items():
        assert scores[program] == pytest.approx(expected, abs=1e-9)

    table = TextTable(["program", "P(ideal | breakfast & weekend)", "paper"])
    names = dict(PROGRAMS)
    for program, value in sorted(scores.items(), key=lambda kv: -kv[1]):
        table.add_row([names[program], f"{value:.4f}", f"{EXPECTED_TABLE1_SCORES[program]:.4f}"])
    save_result(f"e1_table1_{method}", table.render())
    save_json(
        f"e1_table1_{method}",
        {
            "experiment": "e1_table1",
            "variant": method,
            "scores": scores,
            "paper_scores": dict(EXPECTED_TABLE1_SCORES),
        },
    )


def test_e1_ranking_order(benchmark, tvtouch_world):
    scorer = _scorer(tvtouch_world, "factorised")
    ranked = benchmark(lambda: scorer.rank(tvtouch_world.program_ids))
    assert [score.document for score in ranked] == [
        "channel5_news",
        "bbc_news",
        "oprah",
        "mpfs",
    ]
