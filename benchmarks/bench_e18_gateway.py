"""E18 — the HTTP gateway itself: thread-per-connection vs event loop.

E13 showed a 3–4x gap between in-process pipeline throughput and the
same schedule over the ``ThreadingHTTPServer`` gateway.  This
experiment isolates the wire: the identical deterministic Zipf
schedule (E13's tenants/churn/seed) is driven through **both**
gateways — the stdlib thread-per-connection ``RankingHTTPServer`` and
the event-loop ``AioRankingServer`` — at client concurrency 8, 32 and
128, against a fresh fleet per cell so no cache or session warmth
leaks between rows.  No response cache is configured: every request
pays the full pipeline, so the delta between rows at equal concurrency
is purely the gateway (accept, parse, thread churn vs loop, write).

Claims asserted (full mode): zero request errors in every cell; the
event-loop gateway is never slower than the threading gateway, is
**≥ 1.5x** once client concurrency exceeds the pipeline width and
**≥ 2x** at the top of the sweep (measured: ~70x — the threading
gateway collapses under 128 keep-alive connections while the loop
holds its concurrency-8 throughput); its p95/p99 at the top of the
sweep are no worse; and scores served through the event-loop gateway
match the in-process engine to ≤ 1e-9 on every context menu.

(At concurrency 8 on a single core both gateways are pipeline-bound —
the wire is a minority of per-request CPU — so the asserted floor
there is parity, not 2x; see PERFORMANCE.md "when threads still win".)
"""

import os
import threading

import pytest

from repro.engine import shared_basis_pool
from repro.reason import clear_registry
from repro.reporting import TextTable
from repro.service import (
    RankingService,
    ServiceConfig,
    ServiceRequest,
    make_aio_server,
    make_server,
)
from repro.tenants import TenantRegistry
from repro.workloads import (
    CONTEXT_MENUS,
    RetryPolicy,
    TrafficConfig,
    build_schedule,
    build_tvtouch,
    http_client,
    run_traffic,
)

#: CI smoke mode: tiny workload, no perf assertions (see conftest).
SMOKE = os.environ.get("REPRO_BENCH_SMOKE", "") not in ("", "0")

TENANTS = 16 if SMOKE else 200
REQUESTS = 100 if SMOKE else 1500
CONCURRENCIES = (8, 32) if SMOKE else (8, 32, 128)
SHARDS = 8
PIPELINE_WIDTH = 8  # rank-stage admission width, both gateways
MIN_SPEEDUP_PARITY = 0.9  # pipeline-bound cells: aio never slower
MIN_SPEEDUP_OVERSUBSCRIBED = 1.5  # concurrency > pipeline width
MIN_SPEEDUP_TOP = 2.0  # top of the sweep (measured: ~70x)

GATEWAYS = {"threads": make_server, "aio": make_aio_server}


@pytest.fixture(scope="module", autouse=True)
def clean_world():
    clear_registry()
    shared_basis_pool().clear()
    yield
    clear_registry()
    shared_basis_pool().clear()


def fresh_service() -> RankingService:
    registry = TenantRegistry(
        build_tvtouch(), shards=SHARDS, max_sessions=max(TENANTS, 64)
    )
    # Generous budgets: at client concurrency 128 over pipeline width 8
    # a request may queue for a while — this experiment measures the
    # wire, not the admission valve (E13 covers shedding).
    return RankingService(
        registry,
        ServiceConfig(
            max_concurrency=PIPELINE_WIDTH,
            queue_timeout=10.0,
            request_timeout=30.0,
            max_request_timeout=30.0,
        ),
    )


def traffic_config(concurrency: int) -> TrafficConfig:
    return TrafficConfig(
        tenants=TENANTS,
        requests=REQUESTS,
        concurrency=concurrency,
        zipf_exponent=1.1,
        context_churn=0.5,
        top_k=None,  # full ranking, so scores are comparable across paths
        seed=42,
    )


def http_issue(base_url: str):
    client = http_client(
        base_url,
        policy=RetryPolicy(
            timeout=60.0, retries=1, backoff=0.001, backoff_max=0.001, jitter=0.0
        ),
    )

    def issue(request):
        outcome = client(request)
        if not outcome.ok:
            raise RuntimeError(
                f"gateway answered {outcome.status}: {outcome.error!r}"
            )
        return outcome.body

    return issue


def run_cell(kind: str, concurrency: int) -> dict:
    """One (gateway, concurrency) cell on a fresh fleet."""
    service = fresh_service()
    server = GATEWAYS[kind](service, port=0)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    try:
        config = traffic_config(concurrency)
        result = run_traffic(http_issue(server.url), config, build_schedule(config))
        gateway_section = service.metrics_snapshot()["gateway"]
    finally:
        server.shutdown()
        server.server_close()
        thread.join(timeout=10)
    assert not thread.is_alive(), f"{kind} gateway thread wedged"
    assert result.errors == 0, f"{kind}@{concurrency}: {result.errors} errors"
    cell = result.to_dict()
    cell["gateway"] = kind
    cell["concurrency"] = concurrency
    if gateway_section.get("attached"):
        cell["wire"] = {
            "requests": gateway_section["requests"],
            "bad_requests": gateway_section["bad_requests"],
            "read_timeouts": gateway_section["read_timeouts"],
            "loop_lag_p95_ms": gateway_section["loop_lag"]["p95_ms"],
        }
    return cell


def test_e18_gateway_throughput(save_result, save_json):
    cells = [
        run_cell(kind, concurrency)
        for concurrency in CONCURRENCIES
        for kind in GATEWAYS
    ]
    by_key = {(cell["gateway"], cell["concurrency"]): cell for cell in cells}

    speedups = {}
    for concurrency in CONCURRENCIES:
        threads_rps = by_key[("threads", concurrency)]["throughput_rps"]
        aio_rps = by_key[("aio", concurrency)]["throughput_rps"]
        speedups[concurrency] = aio_rps / threads_rps

    table = TextTable(
        [
            "concurrency",
            "gateway",
            "requests",
            "throughput (req/s)",
            "p50 (ms)",
            "p95 (ms)",
            "p99 (ms)",
        ]
    )
    for cell in cells:
        table.add_row(
            [
                cell["concurrency"],
                cell["gateway"],
                cell["requests"],
                f"{cell['throughput_rps']:.0f}",
                f"{cell['latency_p50_ms']:.2f}",
                f"{cell['latency_p95_ms']:.2f}",
                f"{cell['latency_p99_ms']:.2f}",
            ]
        )
    lines = [table.render(), ""]
    for concurrency, speedup in speedups.items():
        lines.append(f"aio speedup @ concurrency {concurrency}: {speedup:.2f}x")
    save_result("e18_gateway", "\n".join(lines))
    save_json(
        "e18_gateway",
        {
            "experiment": "e18_gateway",
            "tenants": TENANTS,
            "requests_per_cell": REQUESTS,
            "pipeline_width": PIPELINE_WIDTH,
            "shards": SHARDS,
            "zipf_exponent": 1.1,
            "context_churn": 0.5,
            "cells": cells,
            "speedups": {str(k): v for k, v in speedups.items()},
        },
    )

    if not SMOKE:
        top = max(CONCURRENCIES)
        for concurrency, speedup in speedups.items():
            if concurrency == top:
                floor = MIN_SPEEDUP_TOP
            elif concurrency > PIPELINE_WIDTH:
                floor = MIN_SPEEDUP_OVERSUBSCRIBED
            else:
                floor = MIN_SPEEDUP_PARITY
            assert speedup >= floor, (
                f"event-loop gateway is only {speedup:.2f}x the threading "
                f"gateway at concurrency {concurrency}; need ≥ {floor}x"
            )
        # Tail latency where the threading gateway is oversubscribed:
        # the loop's orderly queue beats thread-churn chaos outright.
        threads_top = by_key[("threads", top)]
        aio_top = by_key[("aio", top)]
        assert aio_top["latency_p95_ms"] <= threads_top["latency_p95_ms"], (
            f"aio p95 {aio_top['latency_p95_ms']:.2f} ms worse than threading "
            f"{threads_top['latency_p95_ms']:.2f} ms at concurrency {top}"
        )
        assert aio_top["latency_p99_ms"] <= threads_top["latency_p99_ms"]
        # The loop must *sustain* its low-concurrency throughput at the
        # top of the sweep (the threading gateway collapses instead).
        aio_floor = by_key[("aio", min(CONCURRENCIES))]["throughput_rps"]
        assert aio_top["throughput_rps"] >= 0.7 * aio_floor, (
            f"aio throughput sagged from {aio_floor:.0f} to "
            f"{aio_top['throughput_rps']:.0f} req/s across the sweep"
        )


def test_e18_aio_score_identity(save_json):
    """Every context menu through the event-loop gateway matches the
    in-process pipeline to ≤ 1e-9 — the fast wire changes nothing."""
    service = fresh_service()
    server = make_aio_server(service, port=0)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    issue = http_issue(server.url)
    worst_delta = 0.0
    try:
        for index, menu in enumerate(CONTEXT_MENUS):
            tenant = f"identity_{index}"
            local = service.rank(ServiceRequest(tenant=tenant, context=menu))
            assert local.ok
            remote = issue(
                type("R", (), {"tenant": tenant, "context": menu, "top_k": None})()
            )
            local_scores = {
                item["document"]: item["score"] for item in local.body["items"]
            }
            remote_scores = {
                item["document"]: item["score"] for item in remote["items"]
            }
            assert set(local_scores) == set(remote_scores)
            worst_delta = max(
                worst_delta,
                max(
                    abs(local_scores[doc] - remote_scores[doc])
                    for doc in local_scores
                ),
            )
    finally:
        server.shutdown()
        server.server_close()
        thread.join(timeout=10)
    assert worst_delta <= 1e-9
    save_json(
        "e18_identity",
        {"experiment": "e18_identity", "max_aio_score_delta": worst_delta},
    )
