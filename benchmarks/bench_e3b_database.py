"""E3b — the Section 5 test database census.

Paper claim: "a test database of context and documents containing
around 11000 tuples; around 1000 persons, 300 TV programs, 12 genres,
6 subjects, 4 activities, 5 rooms and their relations."
"""

import pytest

from repro.reporting import TextTable
from repro.workloads import generate_test_database


def test_e3b_census(benchmark, save_result, save_json):
    world = benchmark.pedantic(lambda: generate_test_database(seed=7), rounds=1, iterations=1)
    census = world.census()

    assert census["concept Person"] == 1000
    assert census["concept TvProgram"] == 300
    assert census["concept Genre"] == 12
    assert census["concept Subject"] == 6
    assert census["concept Activity"] == 4
    assert census["concept Room"] == 5
    assert 10000 <= census["TOTAL"] <= 12500, "paper: around 11000 tuples"

    table = TextTable(["table", "tuples"])
    for key in sorted(census):
        if key != "TOTAL":
            table.add_row([key, census[key]])
    table.add_row(["TOTAL", census["TOTAL"]])
    save_result("e3b_database_census", table.render() + "\npaper: around 11000 tuples")
    save_json(
        "e3b_database_census",
        {"experiment": "e3b_database_census", "census": census},
    )


def test_e3b_generation_deterministic(benchmark):
    first = generate_test_database(seed=7)
    second = benchmark.pedantic(lambda: generate_test_database(seed=7), rounds=1, iterations=1)
    assert first.census() == second.census()
