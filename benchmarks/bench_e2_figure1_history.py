"""E2 — Figure 1: the workday-morning feature distribution.

Paper claim: on workday mornings the user chose programs containing the
traffic bulletin in 80 % of the cases and the weather bulletin in 60 %;
the probability that a program containing neither is the ideal program
is (1-0.8)(1-0.6) = 0.08.

This bench samples a synthetic history with the generative sigma model,
re-estimates both sigmas from the log (the descriptive semantics), and
recomputes the 0.08 from the estimates.
"""

import pytest

from repro.history import estimate_sigma
from repro.reporting import TextTable
from repro.workloads import sample_workday_mornings

EPISODES = 5000


def test_e2_figure1_sigmas(benchmark, save_result, save_json):
    log = sample_workday_mornings(episodes=EPISODES, seed=42)

    def estimate():
        traffic = estimate_sigma(log, "WorkdayMorning", "TrafficBulletin")
        weather = estimate_sigma(log, "WorkdayMorning", "WeatherBulletin")
        return traffic, weather

    traffic, weather = benchmark(estimate)

    assert traffic.value == pytest.approx(0.8, abs=0.02)
    assert weather.value == pytest.approx(0.6, abs=0.02)
    neither = (1.0 - traffic.value) * (1.0 - weather.value)
    assert neither == pytest.approx(0.08, abs=0.02)

    table = TextTable(["quantity", "estimated", "paper (Figure 1)"])
    table.add_row(["sigma(morning, traffic bulletin)", f"{traffic.value:.3f}", "0.800"])
    table.add_row(["sigma(morning, weather bulletin)", f"{weather.value:.3f}", "0.600"])
    table.add_row(["P(neither-featured program ideal)", f"{neither:.4f}", "0.0800"])
    save_result("e2_figure1", f"{EPISODES} sampled workday mornings\n" + table.render())
    save_json(
        "e2_figure1",
        {
            "experiment": "e2_figure1",
            "episodes": EPISODES,
            "sigma_traffic": traffic.value,
            "sigma_weather": weather.value,
            "p_neither_featured_ideal": neither,
        },
    )


def test_e2_group_choices_present(benchmark):
    """Both bulletins in one morning — the paper's group-choice case."""
    log = benchmark.pedantic(
        lambda: sample_workday_mornings(episodes=1000, seed=7), rounds=1, iterations=1
    )
    both = sum(1 for episode in log if len(episode.chosen) == 2)
    # Independent draws: expect ~ 0.8 * 0.6 = 48% of episodes.
    assert both / len(log) == pytest.approx(0.48, abs=0.05)
