"""E17 — cross-request micro-batching under a context-shift herd.

The paper's motivating scenario makes context a *shared* signal: when
the situation changes (breakfast ends, the weekend starts), it changes
for many users at once, so a serving fleet sees thundering herds of
concurrent requests carrying the *same, novel* context.  This
experiment measures what the :class:`~repro.service.BatchScheduler`
buys on exactly that traffic, end to end through the service pipeline:

* **workload**: the E13 closed-loop harness (Zipf tenant popularity at
  exponent 1.1, 8 concurrent workers, Section 5 world scaled to 2 000
  programs with the 12-scenario rule series) — but instead of a fixed
  menu, each consecutive block of ``HERD_SPAN`` requests shares one
  fresh probabilistic context, never repeated across blocks.  Every
  request therefore misses the per-tenant view caches, while its
  in-flight neighbours carry coefficient-identical contexts the
  batcher can coalesce across tenants;
* **batched vs unbatched**: the identical schedule through two
  freshly-minted fleets, one with ``batch_max_size=8`` and one with
  batching disabled — the delta is exactly the scheduler;
* **identity**: a held-out herd round issued concurrently to the
  batched fleet and sequentially to the unbatched one must agree on
  every document score to ≤ 1e-9.

Claims asserted (full mode): batched in-process throughput ≥ 1.5× the
unbatched run at concurrency 8, a positive coalesce ratio, zero
errors on both paths, score identity, and a queue-wait p95 bounded by
the batching window plus one observed flush.
"""

import os
import threading

import pytest

from repro.engine import shared_basis_pool
from repro.reason import clear_registry
from repro.reporting import TextTable
from repro.service import RankingService, ServiceConfig, ServiceRequest
from repro.tenants import TenantRegistry
from repro.workloads import (
    Section5Counts,
    TrafficConfig,
    TrafficRequest,
    generate_test_database,
    run_traffic,
    zipf_weights,
)
from repro.workloads.rules_series import generate_rule_series

#: CI smoke mode: tiny workload, no perf assertions (see conftest).
SMOKE = os.environ.get("REPRO_BENCH_SMOKE", "") not in ("", "0")

TENANTS = 16 if SMOKE else 200
REQUESTS = 96 if SMOKE else 2400
CONCURRENCY = 8
#: Consecutive schedule slots sharing one herd context.  Matched to the
#: worker count: the closed-loop strides keep the in-flight set within
#: about one block, so a block is one coalescible burst.
HERD_SPAN = 8
PERSONS = 16 if SMOKE else 50
PROGRAMS = 160 if SMOKE else 2000
RULE_COUNT = 12
BATCH_MAX_SIZE = 8
#: Wide enough to cover the closed-loop arrival spread of one herd
#: round on a single core, so batches actually fill; a full batch
#: flushes immediately, so the window only delays stragglers.
BATCH_MAX_WAIT_US = 20_000.0
MIN_SPEEDUP = 1.5


@pytest.fixture(scope="module")
def herd_world():
    clear_registry()
    shared_basis_pool().clear()
    world = generate_test_database(
        seed=7, counts=Section5Counts(persons=PERSONS, programs=PROGRAMS)
    )
    rules = generate_rule_series(world, RULE_COUNT)
    yield world, rules
    clear_registry()
    shared_basis_pool().clear()


def herd_context(era: int) -> tuple[str, str]:
    """The shared context of herd block ``era`` — two scenario concepts
    with probabilities that never repeat within the run, so every block
    is novel to every view cache yet identical across its members."""
    first = era % RULE_COUNT
    second = (first + 1 + era // RULE_COUNT) % RULE_COUNT
    p_first = 10 + (era * 7919) % 80
    p_second = 10 + (era * 104729) % 80
    return (
        f"CtxScenario_{first:02d}:0.{p_first:02d}",
        f"CtxScenario_{second:02d}:0.{p_second:02d}",
    )


def build_herd_schedule(requests: int, *, era_offset: int = 0, seed: int = 42):
    """Zipf-tenant traffic where each ``HERD_SPAN`` block shares one
    fresh context (``era_offset`` shifts the block numbering so later
    phases can draw herds no cache has seen)."""
    import random

    rng = random.Random(seed)
    tenant_ids = [f"tenant_{index:05d}" for index in range(TENANTS)]
    weights = zipf_weights(TENANTS, 1.1)
    chosen = rng.choices(tenant_ids, weights=weights, k=requests)
    return [
        TrafficRequest(
            tenant=tenant,
            context=herd_context(era_offset + index // HERD_SPAN),
            top_k=3,
        )
        for index, tenant in enumerate(chosen)
    ]


def make_fleet(world, rules, *, batched: bool) -> RankingService:
    """A fresh registry + service; basis compilation is shared through
    the module pool, so both variants start equally warm."""
    registry = TenantRegistry(
        world, rules=rules, shards=8, max_sessions=max(TENANTS + 16, 64)
    )
    config = ServiceConfig(
        max_concurrency=CONCURRENCY,
        queue_timeout=5.0,
        batch_max_size=BATCH_MAX_SIZE if batched else 0,
        batch_max_wait_us=BATCH_MAX_WAIT_US,
    )
    return RankingService(registry, config)


def warm_fleet(service: RankingService, schedule) -> None:
    """Publish every scheduled tenant's basis before the clock starts —
    both variants pay the identical cold-start outside the window."""
    for tenant in dict.fromkeys(request.tenant for request in schedule):
        reply = service.rank(ServiceRequest(tenant=tenant, top_k=1))
        assert reply.ok, f"warmup failed for {tenant}: {reply.body}"


def in_process_issue(service: RankingService):
    def issue(request: TrafficRequest):
        reply = service.rank(
            ServiceRequest(
                tenant=request.tenant, context=request.context, top_k=request.top_k
            )
        )
        if not reply.ok:
            raise RuntimeError(f"service answered {reply.status}: {reply.body}")
        return reply.body

    return issue


def traffic_config() -> TrafficConfig:
    return TrafficConfig(
        tenants=TENANTS,
        requests=REQUESTS,
        concurrency=CONCURRENCY,
        zipf_exponent=1.1,
        context_churn=1.0,
        top_k=3,
        seed=42,
    )


def score_identity_delta(batched: RankingService, unbatched: RankingService) -> float:
    """One held-out herd round, concurrent against the batched fleet,
    sequential against the unbatched one; returns the worst score delta."""
    probe = build_herd_schedule(HERD_SPAN, era_offset=10_000, seed=97)
    replies: list[dict | None] = [None] * len(probe)

    def hit(index: int, request: TrafficRequest) -> None:
        replies[index] = in_process_issue(batched)(request)

    threads = [
        threading.Thread(target=hit, args=(index, request))
        for index, request in enumerate(probe)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=60)
        assert not thread.is_alive(), "identity probe never returned"
    worst = 0.0
    for request, body in zip(probe, replies):
        assert body is not None
        reference = in_process_issue(unbatched)(request)
        left = {item["document"]: item["score"] for item in body["items"]}
        right = {item["document"]: item["score"] for item in reference["items"]}
        assert set(left) == set(right)
        worst = max(worst, max((abs(left[doc] - right[doc]) for doc in left), default=0.0))
    return worst


def test_e17_batching_throughput(herd_world, save_result, save_json):
    world, rules = herd_world
    schedule = build_herd_schedule(REQUESTS)
    config = traffic_config()

    reports = {}
    batching_metrics: dict = {"enabled": False}
    fleets = {}
    try:
        for name, batched in (("unbatched", False), ("batched", True)):
            fleets[name] = make_fleet(world, rules, batched=batched)
            warm_fleet(fleets[name], schedule)
            reports[name] = run_traffic(
                in_process_issue(fleets[name]), config, schedule
            )
            assert reports[name].errors == 0, f"{name} run saw request errors"
        batching_metrics = fleets["batched"].metrics_snapshot()["batching"]
        worst_delta = score_identity_delta(fleets["batched"], fleets["unbatched"])
    finally:
        for fleet in fleets.values():
            fleet.close()

    assert worst_delta <= 1e-9

    speedup = (
        reports["batched"].throughput_rps / reports["unbatched"].throughput_rps
    )
    table = TextTable(
        ["variant", "requests", "throughput (req/s)", "p50 (ms)", "p95 (ms)", "p99 (ms)"]
    )
    for name, report in reports.items():
        row = report.to_dict()
        table.add_row(
            [
                name,
                row["requests"],
                f"{row['throughput_rps']:.0f}",
                f"{row['latency_p50_ms']:.2f}",
                f"{row['latency_p95_ms']:.2f}",
                f"{row['latency_p99_ms']:.2f}",
            ]
        )
    table.add_row(["speedup", "", f"{speedup:.2f}x", "", "", ""])
    save_result("e17_batching", table.render())
    save_json(
        "e17_batching",
        {
            "experiment": "e17_batching",
            "tenants": TENANTS,
            "requests": REQUESTS,
            "concurrency": CONCURRENCY,
            "herd_span": HERD_SPAN,
            "programs": PROGRAMS,
            "rules": RULE_COUNT,
            "batch_max_size": BATCH_MAX_SIZE,
            "batch_max_wait_us": BATCH_MAX_WAIT_US,
            "speedup": speedup,
            "max_score_delta": worst_delta,
            "paths": {name: report.to_dict() for name, report in reports.items()},
            "batching": batching_metrics,
        },
    )

    assert batching_metrics["enabled"]
    if not SMOKE:
        assert speedup >= MIN_SPEEDUP, (
            f"batched throughput {reports['batched'].throughput_rps:.0f} req/s is "
            f"only {speedup:.2f}x the unbatched "
            f"{reports['unbatched'].throughput_rps:.0f} req/s (need ≥ {MIN_SPEEDUP}x)"
        )
        assert batching_metrics["coalesce_ratio"] > 0.0, (
            "the herd never coalesced — batching degenerated to singleton flushes"
        )
        # Queue-wait p95 is bounded by the batching window plus one flush:
        # a request waits at most the leader's window, then rides one pass.
        wait_bound = BATCH_MAX_WAIT_US / 1e3 + batching_metrics["flush"]["p95_ms"]
        assert batching_metrics["queue_wait"]["p95_ms"] <= wait_bound, (
            f"queue-wait p95 {batching_metrics['queue_wait']['p95_ms']:.2f} ms "
            f"exceeds window + flush ({wait_bound:.2f} ms)"
        )
