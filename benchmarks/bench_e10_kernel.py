"""E10 — the compiled batch-scoring kernel vs the per-document scorer.

Section 6 motivates pruning with scoring cost; PR 2 attacks the
constant factor instead: compile the bound problem once into flat
arrays and score the whole candidate set in one vectorised pass
(:class:`repro.core.kernel.ScoringKernel`), with per-rule breakdowns
lazy.  This bench sweeps candidates x rules on the Section 5 workload
(E9's world) and measures, per cell:

* the **per-document** reference path (prune, split, then
  ``score_document`` per candidate — what ``ContextAwareScorer.score``
  used to do);
* the **kernel (numpy)** and **kernel (python)** batch paths, compiled
  cold per run;
* the **incremental** path: context-only rebind on the compiled
  matrix vs a full re-bind (the engine's context-delta refresh);
* the heap-based **top-k** path with the Section 6 upper-bound prune.

Asserted claims (full mode): at 1000 candidates x 10 rules the numpy
kernel beats the per-document scorer by >= 5x and the pure-python
fallback by >= 1.5x, with value agreement within 1e-9.
"""

import os
import time

import pytest

from repro.core import (
    DocumentBinding,
    DocumentScore,
    ScoringKernel,
    ScoringProblem,
    all_miss_score,
    bind_problem,
    bind_rules,
    prune_rules,
    score_document,
    split_trivial_documents,
)
from repro.dl.vocabulary import Individual
from repro.perf.backend import numpy_or_none
from repro.reporting import TextTable
from repro.workloads import (
    Section5Counts,
    generate_rule_series,
    generate_test_database,
    install_context_series,
)

#: CI smoke mode: one tiny cell, no perf assertions (see conftest).
SMOKE = os.environ.get("REPRO_BENCH_SMOKE", "") not in ("", "0")

RUNS = 2 if SMOKE else 5
SCALE = 0.1 if SMOKE else 0.4
CELLS = [(40, 3)] if SMOKE else [(100, 4), (1000, 4), (1000, 10)]
ASSERT_CELL = (1000, 10)
MIN_NUMPY_SPEEDUP = 5.0
MIN_PYTHON_SPEEDUP = 1.5
TOP_K = 10

HAVE_NUMPY = numpy_or_none() is not None


def best_of(function, runs: int = RUNS) -> float:
    times = []
    for _ in range(runs):
        start = time.perf_counter()
        function()
        times.append(time.perf_counter() - start)
    return min(times)


def per_document_scores(problem: ScoringProblem) -> dict[str, DocumentScore]:
    """The pre-kernel reference path: one ``score_document`` per candidate."""
    pruned = prune_rules(problem)
    results: dict[str, DocumentScore] = {}
    interesting, trivial = split_trivial_documents(pruned)
    shared = all_miss_score(pruned.bindings)
    for document in trivial:
        results[document.document.name] = DocumentScore(
            document.document.name, shared, (), "factorised"
        )
    for document in interesting:
        results[document.document.name] = score_document(pruned, document, "factorised")
    return results


def tile_problem(problem: ScoringProblem, count: int) -> ScoringProblem:
    """Grow the candidate set to ``count`` by tiling real bindings.

    Clones carry fresh names but the original (real) preference events
    and probabilities, so scoring cost is measured on realistic rows
    without paying the DL binding cost for thousands of candidates.
    """
    documents = list(problem.documents)
    tiled = []
    for index in range(count):
        source = documents[index % len(documents)]
        if index < len(documents):
            tiled.append(source)
            continue
        tiled.append(
            DocumentBinding(
                Individual(f"{source.document.name}_clone{index}"),
                source.preference_events,
                source.preference_probabilities,
            )
        )
    return ScoringProblem(problem.bindings, tuple(tiled), problem.space)


@pytest.fixture(scope="module")
def world():
    world = generate_test_database(seed=7, counts=Section5Counts().scaled(SCALE))
    install_context_series(world, k=12, seed=11)
    return world


def _bound_problem(world, rules: int) -> ScoringProblem:
    repository = generate_rule_series(world, rules, seed=13)
    return bind_problem(
        world.abox, world.tbox, world.user, repository, world.programs, world.space
    )


def test_e10_kernel_speedup(world, save_result, save_json):
    table = TextTable(
        ["candidates x rules", "per-document (ms)", "kernel numpy (ms)",
         "kernel python (ms)", "numpy speedup", "python speedup"]
    )
    records = []
    speedups = {}
    base_problems: dict[int, ScoringProblem] = {}
    for candidates, rules in CELLS:
        if rules not in base_problems:
            base_problems[rules] = _bound_problem(world, rules)
        problem = tile_problem(base_problems[rules], candidates)

        reference = per_document_scores(problem)
        reference_seconds = best_of(lambda: per_document_scores(problem))

        def run_kernel(backend):
            kernel = ScoringKernel.compile(problem, backend=backend)
            return kernel.score_documents()

        python_scored = run_kernel("python")
        python_seconds = best_of(lambda: run_kernel("python"))
        numpy_seconds = None
        if HAVE_NUMPY:
            numpy_scored = run_kernel("numpy")
            numpy_seconds = best_of(lambda: run_kernel("numpy"))
            for score in numpy_scored:
                assert score.value == pytest.approx(
                    reference[score.document].value, abs=1e-9
                )
        for score in python_scored:
            assert score.value == pytest.approx(
                reference[score.document].value, abs=1e-9
            )

        numpy_speedup = reference_seconds / numpy_seconds if numpy_seconds else None
        python_speedup = reference_seconds / python_seconds
        speedups[(candidates, rules)] = (numpy_speedup, python_speedup)
        table.add_row(
            [
                f"{candidates} x {rules}",
                reference_seconds * 1e3,
                numpy_seconds * 1e3 if numpy_seconds else "n/a",
                python_seconds * 1e3,
                f"x{numpy_speedup:.1f}" if numpy_speedup else "n/a",
                f"x{python_speedup:.1f}",
            ]
        )
        records.append(
            {
                "candidates": candidates,
                "rules": rules,
                "per_document_ms": reference_seconds * 1e3,
                "kernel_numpy_ms": numpy_seconds * 1e3 if numpy_seconds else None,
                "kernel_python_ms": python_seconds * 1e3,
                "numpy_speedup": numpy_speedup,
                "python_speedup": python_speedup,
            }
        )

    save_result("e10_kernel", table.render())
    save_json(
        "e10_kernel",
        {"experiment": "e10_kernel", "runs": RUNS, "rows": records},
    )

    if SMOKE:
        return
    numpy_speedup, python_speedup = speedups[ASSERT_CELL]
    assert python_speedup >= MIN_PYTHON_SPEEDUP, (
        f"pure-python kernel speedup x{python_speedup:.2f} below "
        f"x{MIN_PYTHON_SPEEDUP} at {ASSERT_CELL}"
    )
    if HAVE_NUMPY:
        assert numpy_speedup >= MIN_NUMPY_SPEEDUP, (
            f"numpy kernel speedup x{numpy_speedup:.2f} below "
            f"x{MIN_NUMPY_SPEEDUP} at {ASSERT_CELL}"
        )


def test_e10_incremental_rescoring(world, save_result, save_json):
    """Context-only rebinds on the compiled matrix vs full re-binds."""
    rules = CELLS[-1][1]
    repository = generate_rule_series(world, rules, seed=13)
    problem = _bound_problem(world, rules)
    kernel = ScoringKernel.compile(problem)
    rule_list = list(repository)

    def cold():
        fresh = bind_problem(
            world.abox, world.tbox, world.user, repository, world.programs, world.space
        )
        return ScoringKernel.compile(fresh).score_documents()

    def incremental():
        bindings = bind_rules(
            world.abox, world.tbox, world.user, rule_list, world.space
        )
        return kernel.with_context(bindings).score_documents()

    cold_scores = {score.document: score.value for score in cold()}
    incremental_scores = {score.document: score.value for score in incremental()}
    assert incremental_scores == pytest.approx(cold_scores, abs=1e-12)

    cold_seconds = best_of(cold)
    incremental_seconds = best_of(incremental)
    speedup = cold_seconds / incremental_seconds

    table = TextTable(["variant", "best (ms)", "speedup"])
    table.add_row(["full re-bind + compile + score", cold_seconds * 1e3, "x1.0"])
    table.add_row(["context-only rebind (incremental)", incremental_seconds * 1e3, f"x{speedup:.1f}"])
    save_result("e10_incremental", table.render())
    save_json(
        "e10_incremental",
        {
            "experiment": "e10_incremental",
            "candidates": len(world.programs),
            "rules": rules,
            "variants": [
                {"variant": "full re-bind", "best_ms": cold_seconds * 1e3},
                {"variant": "incremental", "best_ms": incremental_seconds * 1e3},
            ],
            "speedup": speedup,
        },
    )
    if not SMOKE:
        assert speedup > 2.0, (
            f"incremental rescoring must clearly beat a full re-bind, got x{speedup:.2f}"
        )


def test_e10_top_k(world):
    """The heap-based top-k path agrees with the full ranking."""
    candidates, rules = CELLS[-1]
    problem = tile_problem(_bound_problem(world, rules), candidates)
    kernel = ScoringKernel.compile(problem)
    full = sorted(
        kernel.score_documents(), key=lambda score: (-score.value, score.document)
    )
    top = kernel.rank_top_k(min(TOP_K, candidates))
    assert [(s.document, s.value) for s in top] == [
        (s.document, s.value) for s in full[: len(top)]
    ]
