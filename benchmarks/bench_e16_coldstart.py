"""E16 — cold start: in-process rebuild vs snapshot vs snapshot+shm.

The PR 8 store claims a fleet cold boot no longer scales with world
size × worker count.  This experiment measures **time-to-first-rank**
on the 100k-assertion Section-5 workload (scale 9.0: ~101k assertions,
2700 programs, 8 uncertain context features, 8 rules) for three boot
strategies at 1/2/4 workers:

* **rebuild** — every worker regenerates the world from source and
  ranks; the pre-PR fleet behaviour (cost × worker count, all pages
  private);
* **snapshot** — every worker privately loads the verified snapshot
  (``share_memory=False``) and ranks: the restore path alone;
* **snapshot+shm** — the parent loads once (basis matrix published
  through ``multiprocessing.shared_memory``, reasoner memos seeded),
  then forks workers that only rank: the ``serve --snapshot`` path.

Each worker reports its own boot-to-rank latency and its USS
(``/proc/self/smaps_rollup`` Private_Clean + Private_Dirty) after
ranking, so the *marginal private bytes per extra worker* comparison is
physical, not guessed from RSS.  A final fork after the fleet has
drained measures the **respawn** path (attach, never rebuild).

Full-mode assertions (the ISSUE 8 acceptance targets):

* snapshot-loaded vs rebuilt score identity ≤ 1e-9;
* fleet cold boot (all workers ranked) ≥ 5x faster with the preloaded
  snapshot than with per-worker rebuilds at the widest fleet;
* marginal USS per snapshot+shm worker ≤ 10 % of a rebuild worker's.
"""

import os
import time

import pytest

from repro.engine import shared_basis_pool
from repro.reason import clear_registry
from repro.reporting import TextTable
from repro.service import supports_fleet
from repro.store import load_world, write_world_snapshot
from repro.tenants import TenantRegistry
from repro.workloads import (
    Section5Counts,
    generate_rule_series,
    generate_test_database,
    install_context_series,
)

#: CI smoke mode: tiny world, one worker, no assertions (see conftest).
SMOKE = os.environ.get("REPRO_BENCH_SMOKE", "") not in ("", "0")

SCALE = 1.0 if SMOKE else 9.0
CONTEXT_FEATURES = 4 if SMOKE else 8
WORKER_COUNTS = (1,) if SMOKE else (1, 2, 4)
CONTEXT = "CtxScenario_00"
TENANT = "u_bench"
IDENTITY_BOUND = 1e-9
SPEEDUP_BOUND = 5.0
MARGINAL_USS_BOUND = 0.10


def build_world():
    """The e16 workload: scaled Section-5 world + contexts + rules."""
    world = generate_test_database(seed=7, counts=Section5Counts().scaled(SCALE))
    install_context_series(world, k=CONTEXT_FEATURES, seed=11)
    world.repository = generate_rule_series(world, CONTEXT_FEATURES, seed=13)
    return world


def first_rank(world_like) -> dict[str, float]:
    """Mint a tenant, install the benchmark context, rank once."""
    registry = TenantRegistry(world_like)
    user = getattr(world_like, "user", None)
    session = registry.session(TENANT, user=getattr(user, "name", None))
    session.install_context(CONTEXT)
    response = session.rank()
    return {item.document: item.score for item in response.items}


def uss_of(pid: int) -> int:
    """A process's unique set size (private clean + dirty pages)."""
    total = 0
    with open(f"/proc/{pid}/smaps_rollup") as handle:
        for line in handle:
            if line.startswith(("Private_Clean:", "Private_Dirty:")):
                total += int(line.split()[1]) * 1024
    return total


def _worker(variant: str, snapshot_path, preloaded, queue, release) -> None:
    """One fleet worker: boot per ``variant``, rank once, report.

    After reporting, the worker parks on ``release`` so the parent can
    read its USS while every sibling is still alive — pages a dead
    sibling used to share would otherwise be miscounted as private.
    """
    started = time.monotonic()
    if variant == "rebuild":
        world = build_world()
    elif variant == "snapshot":
        world = load_world(snapshot_path, share_memory=False)
    else:  # snapshot+shm: the world was preloaded before the fork
        world = preloaded
    scores = first_rank(world)
    done = time.monotonic()
    queue.put(
        {"ttfr_seconds": done - started, "done_at": done, "scores": scores}
    )
    release.wait(timeout=300)


def run_fleet(variant: str, workers: int, snapshot_path, preloaded=None) -> dict:
    """Cold-boot a ``variant`` fleet of ``workers`` and collect reports.

    The clock starts before any per-variant work (including the
    parent's snapshot preload for ``snapshot+shm``), so ``wall_*``
    figures are honest end-to-end cold-boot numbers.
    """
    import gc
    import multiprocessing

    ctx = multiprocessing.get_context("fork")
    queue = ctx.SimpleQueue()
    release = ctx.Event()
    t0 = time.monotonic()
    parent_load = 0.0
    if variant == "snapshot+shm":
        load_started = time.monotonic()
        preloaded = load_world(snapshot_path)
        parent_load = time.monotonic() - load_started
    # Freeze the parent heap before forking (the serve-fleet preload
    # does the same): the children's cyclic collector must never
    # traverse the inherited world, or its header writes privatize
    # every copy-on-write page and the sharing evaporates.
    gc.collect()
    gc.freeze()
    try:
        children = [
            ctx.Process(
                target=_worker,
                args=(variant, snapshot_path, preloaded, queue, release),
            )
            for _ in range(workers)
        ]
        for child in children:
            child.start()
        reports = [queue.get() for _ in range(workers)]
        uss = [uss_of(child.pid) for child in children]
        release.set()
        for child in children:
            child.join()
        if variant == "snapshot+shm":
            # The respawn path: a fresh fork off the warm parent
            # attaches to the already-mapped world and only pays the
            # first rank.
            respawn_queue = ctx.SimpleQueue()
            respawn_release = ctx.Event()
            respawn_release.set()
            respawn = ctx.Process(
                target=_worker,
                args=(
                    variant,
                    snapshot_path,
                    preloaded,
                    respawn_queue,
                    respawn_release,
                ),
            )
            respawn.start()
            respawn_report = respawn_queue.get()
            respawn.join()
            preloaded.release()
        else:
            respawn_report = None
    finally:
        gc.unfreeze()
    done_at = [report["done_at"] for report in reports]
    result = {
        "workers": workers,
        "parent_load_seconds": parent_load,
        "wall_first_rank_seconds": min(done_at) - t0,
        "wall_all_ranked_seconds": max(done_at) - t0,
        "ttfr_seconds": [report["ttfr_seconds"] for report in reports],
        "uss_bytes": uss,
        "scores": reports[0]["scores"],
    }
    if respawn_report is not None:
        result["respawn_ttfr_seconds"] = respawn_report["ttfr_seconds"]
    return result


def mean(values) -> float:
    values = list(values)
    return sum(values) / len(values)


@pytest.mark.skipif(not supports_fleet(), reason="needs fork + SO_REUSEPORT")
def test_e16_coldstart(save_result, save_json, tmp_path):
    clear_registry()
    shared_basis_pool().clear()

    # Build once in the parent purely to write the snapshot; the
    # rebuild-variant children regenerate it themselves.
    build_started = time.perf_counter()
    world = build_world()
    build_seconds = time.perf_counter() - build_started
    snapshot_path = tmp_path / "e16.snap"
    write_started = time.perf_counter()
    write_world_snapshot(snapshot_path, world)
    write_seconds = time.perf_counter() - write_started
    assertions = len(world.abox)
    del world
    clear_registry()
    shared_basis_pool().clear()

    variants: dict[str, dict[str, dict]] = {}
    for variant in ("rebuild", "snapshot", "snapshot+shm"):
        variants[variant] = {}
        for workers in WORKER_COUNTS:
            variants[variant][str(workers)] = run_fleet(
                variant, workers, snapshot_path
            )

    # Score identity across boot strategies (the ≤1e-9 bar).
    reference = variants["rebuild"][str(WORKER_COUNTS[0])]["scores"]
    divergence = 0.0
    for variant in ("snapshot", "snapshot+shm"):
        scores = variants[variant][str(WORKER_COUNTS[0])]["scores"]
        assert set(scores) == set(reference)
        divergence = max(
            divergence,
            max(abs(scores[doc] - reference[doc]) for doc in reference),
        )

    widest = str(WORKER_COUNTS[-1])
    rebuild_wide = variants["rebuild"][widest]
    shm_wide = variants["snapshot+shm"][widest]
    fleet_speedup = (
        rebuild_wide["wall_all_ranked_seconds"] / shm_wide["wall_all_ranked_seconds"]
    )
    single = str(WORKER_COUNTS[0])
    single_speedup = mean(variants["rebuild"][single]["ttfr_seconds"]) / mean(
        variants["snapshot"][single]["ttfr_seconds"]
    )
    respawn_ttfr = shm_wide.get("respawn_ttfr_seconds")
    respawn_speedup = (
        mean(rebuild_wide["ttfr_seconds"]) / respawn_ttfr if respawn_ttfr else None
    )
    marginal_ratio = mean(shm_wide["uss_bytes"]) / mean(rebuild_wide["uss_bytes"])

    table = TextTable(
        ["variant", "workers", "wall_first", "wall_all", "mean_ttfr", "uss_mb"]
    )
    for variant, runs in variants.items():
        for workers in WORKER_COUNTS:
            run = runs[str(workers)]
            table.add_row(
                [
                    variant,
                    workers,
                    f"{run['wall_first_rank_seconds']:.3f}",
                    f"{run['wall_all_ranked_seconds']:.3f}",
                    f"{mean(run['ttfr_seconds']):.3f}",
                    f"{mean(run['uss_bytes']) / 1e6:.1f}",
                ]
            )
    summary = (
        f"abox={assertions} build={build_seconds:.2f}s "
        f"snapshot_write={write_seconds:.2f}s "
        f"snapshot_bytes={os.path.getsize(snapshot_path)}\n"
        f"fleet_speedup@{widest}w={fleet_speedup:.1f}x "
        f"single_ttfr_speedup={single_speedup:.1f}x "
        f"respawn_ttfr={respawn_ttfr if respawn_ttfr is None else f'{respawn_ttfr:.3f}s'} "
        f"marginal_uss_ratio={marginal_ratio:.3f}\n"
    )
    save_result("e16_coldstart", summary + table.render())

    record = {
        "experiment": "e16_coldstart",
        "scale": SCALE,
        "abox_assertions": assertions,
        "context_features": CONTEXT_FEATURES,
        "build_seconds": build_seconds,
        "snapshot_write_seconds": write_seconds,
        "snapshot_bytes": os.path.getsize(snapshot_path),
        "worker_counts": list(WORKER_COUNTS),
        "variants": {
            variant: {
                workers: {k: v for k, v in run.items() if k != "scores"}
                for workers, run in runs.items()
            }
            for variant, runs in variants.items()
        },
        "max_score_divergence": divergence,
        "identity_bound": IDENTITY_BOUND,
        "fleet_cold_boot_speedup": fleet_speedup,
        "single_worker_ttfr_speedup": single_speedup,
        "respawn_ttfr_seconds": respawn_ttfr,
        "respawn_speedup": respawn_speedup,
        "marginal_uss_ratio": marginal_ratio,
        "speedup_bound": SPEEDUP_BOUND,
        "marginal_uss_bound": MARGINAL_USS_BOUND,
    }
    save_json("e16_coldstart", record)

    assert divergence <= IDENTITY_BOUND, (
        f"snapshot-loaded scores diverge from rebuilt scores by {divergence}"
    )
    if not SMOKE:
        assert fleet_speedup >= SPEEDUP_BOUND, (
            f"fleet cold boot speedup {fleet_speedup:.2f}x at {widest} workers "
            f"is below the {SPEEDUP_BOUND}x target "
            f"(rebuild {rebuild_wide['wall_all_ranked_seconds']:.2f}s vs "
            f"snapshot+shm {shm_wide['wall_all_ranked_seconds']:.2f}s)"
        )
        assert marginal_ratio <= MARGINAL_USS_BOUND, (
            f"marginal USS per snapshot+shm worker is {marginal_ratio:.1%} of a "
            f"private rebuild worker (bound {MARGINAL_USS_BOUND:.0%})"
        )
    clear_registry()
    shared_basis_pool().clear()
