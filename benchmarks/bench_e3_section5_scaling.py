"""E3 — the Section 5 performance experiment: query time vs rule count.

Paper claim (on the authors' testbed): "for one till four rules, query
times are still acceptable (query time less than 1 second).  Five to
six rules take 4-20 seconds, but as we arrive at seven rules, our
query did not finish within half an hour."

Reproduction: the same naive view-based evaluation on the same
~11,000-tuple database, on this machine.  Absolute numbers differ; the
asserted *shape* is (a) the naive cost grows geometrically (close to
the paper's per-rule doubling), (b) the factorised scorer does not,
and (c) at 7 rules the naive implementation loses by well over an
order of magnitude.  The fitted growth curve extrapolates where the
paper's 30-minute wall lands on this machine.
"""

import pytest

from repro.core import ContextAwareScorer, naive_scores_python, naive_scores_sqlite
from repro.core.problem import bind_problem
from repro.reporting import TextTable, fit_growth, timed
from repro.storage import SqliteBackend
from repro.workloads import generate_rule_series

KS = list(range(1, 8))
WALL_SECONDS = 30 * 60


_SWEEP_CACHE: dict[int, list] = {}


def _run_sweep(world):
    """Time all three implementations for k = 1..7 (cached per world)."""
    cached = _SWEEP_CACHE.get(id(world))
    if cached is not None:
        return cached
    backend = SqliteBackend(world.space)
    backend.load_abox(world.abox)

    rows = []
    for k in KS:
        repository = generate_rule_series(world, k, seed=13)
        problem = bind_problem(world.abox, world.tbox, world.user, repository, [], world.space)
        bindings = list(problem.bindings)

        python_scores, python_seconds = timed(
            lambda: naive_scores_python(
                world.database, world.tbox, world.target, bindings, world.space
            )
        )
        sqlite_scores, sqlite_seconds = timed(
            lambda: naive_scores_sqlite(backend, world.tbox, world.target, bindings)
        )
        scorer = ContextAwareScorer(
            abox=world.abox, tbox=world.tbox, user=world.user,
            repository=repository, space=world.space,
        )
        factorised_scores, factorised_seconds = timed(
            lambda: scorer.score_map(world.programs)
        )
        rows.append(
            {
                "k": k,
                "python": python_seconds,
                "sqlite": sqlite_seconds,
                "factorised": factorised_seconds,
                "python_scores": python_scores,
                "sqlite_scores": sqlite_scores,
                "factorised_scores": factorised_scores,
            }
        )
    backend.close()
    _SWEEP_CACHE[id(world)] = rows
    return rows


def test_e3_scaling_table(benchmark, save_result, save_json, section5_world):
    sweep = benchmark.pedantic(lambda: _run_sweep(section5_world), rounds=1, iterations=1)
    table = TextTable(
        ["rules", "naive python (s)", "naive sqlite (s)", "factorised (s)", "paper (authors' testbed)"]
    )
    paper = {1: "< 1 s", 2: "< 1 s", 3: "< 1 s", 4: "< 1 s", 5: "4-20 s", 6: "4-20 s", 7: "> 30 min (DNF)"}
    for row in sweep:
        table.add_row(
            [row["k"], row["python"], row["sqlite"], row["factorised"], paper[row["k"]]]
        )

    python_fit = fit_growth(KS, [row["python"] for row in sweep])
    wall_k = KS[-1]
    predicted = sweep[-1]["python"]
    while predicted < WALL_SECONDS and wall_k < 40:
        wall_k += 1
        predicted = python_fit.predict(wall_k)
    footer = (
        f"\nnaive growth per extra rule: x{python_fit.ratio:.2f} (paper: combinations double)"
        f"\nextrapolated 30-minute wall on this machine: ~{wall_k} rules"
        f"\n(database: {len(section5_world.abox)} tuples)"
    )
    save_result("e3_section5_scaling", table.render() + footer)
    save_json(
        "e3_section5_scaling",
        {
            "experiment": "e3_section5_scaling",
            "rows": [
                {
                    "rules": row["k"],
                    "naive_python_s": row["python"],
                    "naive_sqlite_s": row["sqlite"],
                    "factorised_s": row["factorised"],
                }
                for row in sweep
            ],
            "naive_growth_per_rule": python_fit.ratio,
            "extrapolated_wall_rules": wall_k,
            "database_tuples": len(section5_world.abox),
        },
    )

    # Shape assertions.
    assert python_fit.ratio > 1.6, "naive cost must grow near-geometrically per rule"
    sqlite_fit = fit_growth(KS, [row["sqlite"] for row in sweep])
    assert sqlite_fit.ratio > 1.6
    final = sweep[-1]
    assert final["python"] > 10 * final["factorised"], "naive must lose by >10x at 7 rules"
    factorised_times = [row["factorised"] for row in sweep]
    assert max(factorised_times) < 4 * max(factorised_times[0], 1e-4) + 0.5, (
        "the factorised scorer must stay near-flat over the rule count"
    )


def test_e3_implementations_agree(benchmark, section5_world):
    """All three implementations compute the same scores (k = 1..7)."""
    sweep = benchmark.pedantic(lambda: _run_sweep(section5_world), rounds=1, iterations=1)
    for row in sweep:
        python_scores = row["python_scores"]
        for doc, value in row["factorised_scores"].items():
            assert python_scores.get(doc, 0.0) == pytest.approx(value, abs=1e-6)
        for doc, value in row["sqlite_scores"].items():
            assert python_scores.get(doc, 0.0) == pytest.approx(value, abs=1e-6)


def test_e3_benchmark_naive_four_rules(benchmark, section5_world):
    """pytest-benchmark point measurement: the paper's 'still acceptable' k=4."""
    world = section5_world
    repository = generate_rule_series(world, 4, seed=13)
    problem = bind_problem(world.abox, world.tbox, world.user, repository, [], world.space)
    bindings = list(problem.bindings)
    benchmark.pedantic(
        lambda: naive_scores_python(world.database, world.tbox, world.target, bindings, world.space),
        rounds=3,
        iterations=1,
    )


def test_e3_benchmark_factorised_seven_rules(benchmark, section5_world):
    """pytest-benchmark point measurement: factorised at the paper's wall."""
    world = section5_world
    repository = generate_rule_series(world, 7, seed=13)
    scorer = ContextAwareScorer(
        abox=world.abox, tbox=world.tbox, user=world.user,
        repository=repository, space=world.space,
    )
    benchmark.pedantic(lambda: scorer.score_map(world.programs), rounds=3, iterations=1)
