"""E11 — the compiled knowledge-base reasoner vs the uncached path.

PR 2 made warm scoring ~4ms for 1000x10; E9 showed the remaining cold
cost lives in *binding*: per (document, rule) the uncached path
rebuilds the membership-event tree — re-expanding the concept,
re-sorting TBox closures, re-scanning the role tables for successors —
and re-runs Shannon expansion per probability, sharing nothing across
candidates.  The compiled reasoner (:class:`repro.reason.CompiledKB`)
evaluates set-at-a-time inside one epoch-guarded session: concepts
expand once, successor walks run off a one-pass role index, filler
events and probabilities are memoised across the whole sweep.

Measured on the E9 workload grown to 1000 candidate programs:

* **uncached bind** — the reference: ``membership_event`` +
  ``probability`` per (document, rule) pair, nothing shared;
* **compiled, cold** — a *fresh* ``CompiledKB`` (empty memos) binding
  the same problem; the claimed >= 5x win;
* **compiled, warm** — the same KB binding again under an unchanged
  epoch (what repeat requests and group members pay).

Plus the Section 6 multi-user scenario: a group over one world ranked
with per-member *private* KBs vs one *shared* KB — the shared KB
reasons each document feature once per group instead of once per
member.

Correctness is asserted alongside: compiled probabilities match the
uncached reference within 1e-9 across all four probability engines,
and again after an ABox mutation (no stale P(f)).
"""

import dataclasses
import os
import time

import pytest

from repro.core import ContextAwareScorer
from repro.core.problem import bind_problem
from repro.dl.instances import membership_event
from repro.events.probability import ENGINES, probability
from repro.multiuser import GroupMember, GroupRanker
from repro.reason import CompiledKB
from repro.reporting import TextTable
from repro.workloads import (
    Section5Counts,
    generate_rule_series,
    generate_test_database,
    install_context_series,
)

#: CI smoke mode: tiny workload, no perf assertions (see conftest).
SMOKE = os.environ.get("REPRO_BENCH_SMOKE", "") not in ("", "0")

RUNS = 2 if SMOKE else 3
CANDIDATES = 40 if SMOKE else 1000
SCALE = 0.1 if SMOKE else 0.4
RULES = 3 if SMOKE else 6
CONTEXTS = 3 if SMOKE else 7
MIN_COLD_SPEEDUP = 5.0
GROUP_SIZE = 2 if SMOKE else 4


def best_of(function, runs: int = RUNS) -> float:
    times = []
    for _ in range(runs):
        start = time.perf_counter()
        function()
        times.append(time.perf_counter() - start)
    return min(times)


@pytest.fixture(scope="module")
def world():
    counts = dataclasses.replace(Section5Counts().scaled(SCALE), programs=CANDIDATES)
    world = generate_test_database(seed=7, counts=counts)
    install_context_series(world, k=CONTEXTS, seed=11)
    return world


@pytest.fixture(scope="module")
def repository(world):
    return generate_rule_series(world, RULES, seed=13)


def uncached_bind(world, rules):
    """The pre-PR-3 reference: nothing shared across the sweep."""
    context = []
    for rule in rules:
        event = membership_event(world.abox, world.tbox, world.user, rule.context)
        context.append(probability(event, world.space))
    matrix = []
    for document in world.programs:
        events = [
            membership_event(world.abox, world.tbox, document, rule.preference)
            for rule in rules
        ]
        matrix.append([probability(event, world.space) for event in events])
    return context, matrix


def test_e11_cold_bind_speedup(world, repository, save_result, save_json):
    rules = list(repository)

    def compiled_cold():
        kb = CompiledKB(world.abox, world.tbox, world.space)
        return bind_problem(
            world.abox, world.tbox, world.user, repository, world.programs,
            world.space, kb=kb,
        )

    _context, reference_matrix = uncached_bind(world, rules)
    problem = compiled_cold()
    for row, binding in zip(reference_matrix, problem.documents):
        for reference_value, compiled_value in zip(row, binding.preference_probabilities):
            assert compiled_value == pytest.approx(reference_value, abs=1e-9)

    uncached_seconds = best_of(lambda: uncached_bind(world, rules))
    cold_seconds = best_of(compiled_cold)

    warm_kb = CompiledKB(world.abox, world.tbox, world.space)
    bind_problem(
        world.abox, world.tbox, world.user, repository, world.programs,
        world.space, kb=warm_kb,
    )
    warm_seconds = best_of(
        lambda: bind_problem(
            world.abox, world.tbox, world.user, repository, world.programs,
            world.space, kb=warm_kb,
        )
    )

    cold_speedup = uncached_seconds / cold_seconds
    warm_speedup = uncached_seconds / warm_seconds

    table = TextTable(["variant", "best (ms)", "vs uncached"])
    table.add_row(["uncached bind (reference)", uncached_seconds * 1e3, "x1.0"])
    table.add_row(["compiled, cold KB", cold_seconds * 1e3, f"x{cold_speedup:.1f}"])
    table.add_row(["compiled, warm KB", warm_seconds * 1e3, f"x{warm_speedup:.1f}"])
    save_result("e11_reasoner", table.render())
    save_json(
        "e11_reasoner",
        {
            "experiment": "e11_reasoner",
            "candidates": len(world.programs),
            "rules": len(rules),
            "runs": RUNS,
            "variants": [
                {"variant": "uncached bind", "best_ms": uncached_seconds * 1e3},
                {"variant": "compiled cold", "best_ms": cold_seconds * 1e3},
                {"variant": "compiled warm", "best_ms": warm_seconds * 1e3},
            ],
            "cold_speedup": cold_speedup,
            "warm_speedup": warm_speedup,
        },
    )

    if SMOKE:
        return
    assert cold_speedup >= MIN_COLD_SPEEDUP, (
        f"compiled cold bind speedup x{cold_speedup:.2f} below x{MIN_COLD_SPEEDUP} "
        f"(uncached {uncached_seconds * 1e3:.1f}ms vs cold {cold_seconds * 1e3:.1f}ms)"
    )
    assert warm_speedup > cold_speedup, "warm KB must beat its own cold path"


def test_e11_multiuser_shared_kb(world, repository, save_result, save_json):
    """One shared KB per group vs one private KB per member."""
    rules = list(repository)
    documents = world.programs

    def members(kb_factory):
        result = []
        for index in range(GROUP_SIZE):
            # Overlapping per-member repositories (a family shares most
            # of its taste vocabulary): member i sees a rotated window.
            from repro.rules import RuleRepository

            window = [rules[(index + offset) % len(rules)] for offset in range(len(rules) - 1)]
            result.append(
                GroupMember(
                    f"member_{index}",
                    ContextAwareScorer(
                        abox=world.abox, tbox=world.tbox, user=world.user,
                        repository=RuleRepository(window), space=world.space,
                        kb=kb_factory(),
                    ),
                )
            )
        return result

    def rank_private():
        group = GroupRanker(
            members(lambda: CompiledKB(world.abox, world.tbox, world.space)),
            strategy="average",
        )
        assert group.shared_kb() is None
        return group.rank(documents)

    shared_holder = {}

    def rank_shared():
        shared_holder["kb"] = CompiledKB(world.abox, world.tbox, world.space)
        group = GroupRanker(
            members(lambda: shared_holder["kb"]), strategy="average"
        )
        assert group.shared_kb() is shared_holder["kb"]
        return group.rank(documents)

    private_ranking = rank_private()
    shared_ranking = rank_shared()
    assert [(s.document, s.value) for s in shared_ranking] == pytest.approx(
        [(s.document, s.value) for s in private_ranking]
    )

    private_seconds = best_of(rank_private)
    shared_seconds = best_of(rank_shared)
    speedup = private_seconds / shared_seconds

    table = TextTable(["variant", "best (ms)", "speedup"])
    table.add_row([f"private KB per member (x{GROUP_SIZE})", private_seconds * 1e3, "x1.0"])
    table.add_row(["one shared KB for the group", shared_seconds * 1e3, f"x{speedup:.1f}"])
    save_result("e11_multiuser_kb", table.render())
    save_json(
        "e11_multiuser_kb",
        {
            "experiment": "e11_multiuser_kb",
            "group_size": GROUP_SIZE,
            "candidates": len(documents),
            "runs": RUNS,
            "variants": [
                {"variant": "private KBs", "best_ms": private_seconds * 1e3},
                {"variant": "shared KB", "best_ms": shared_seconds * 1e3},
            ],
            "speedup": speedup,
        },
    )
    if not SMOKE:
        assert speedup > 1.5, (
            f"shared group KB must clearly beat private KBs, got x{speedup:.2f}"
        )


def test_e11_engines_agree_after_mutation(world, repository):
    """Compiled results match the reference for all four engines,
    including after an ABox mutation (epoch invalidation, no stale P(f))."""
    rules = list(repository)
    kb = CompiledKB(world.abox, world.tbox, world.space)
    sample = world.programs[:3] + [world.programs[-1]]

    def check():
        for document in sample:
            for rule in rules:
                reference_event = membership_event(
                    world.abox, world.tbox, document, rule.preference
                )
                compiled_event = kb.membership_event(document, rule.preference)
                assert compiled_event == reference_event
                for engine in ENGINES:
                    assert kb.probability(compiled_event, engine) == pytest.approx(
                        probability(reference_event, world.space, engine), abs=1e-9
                    )

    check()
    # Give the first sampled program a new genre edge: its events must
    # change under the same KB (fresh epoch), and still match.
    world.abox.assert_role("hasGenre", sample[0], world.genres[-1])
    check()
