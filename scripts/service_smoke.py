"""End-to-end smoke of the serving gateway, as CI runs it.

Starts ``python -m repro serve`` as a real subprocess on an ephemeral
port, waits for the announce line, hits ``/healthz`` and ``/rank``,
asserts a ranked JSON body with the paper's Table 1 winner, then shuts
the server down cleanly (SIGINT, bounded wait).  Exit code 0 only if
every step held.
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import time
import urllib.request

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
ANNOUNCE = "repro serve: listening on "


def wait_for_announce(process: subprocess.Popen) -> str:
    """The base URL from the server's announce line (bounded wait)."""
    deadline = time.time() + 30
    assert process.stdout is not None
    while time.time() < deadline:
        line = process.stdout.readline()
        if not line:
            raise SystemExit(
                f"server exited before announcing (code {process.poll()})"
            )
        sys.stdout.write(line)
        if ANNOUNCE in line:
            return line.split(ANNOUNCE, 1)[1].split()[0]
    raise SystemExit("timed out waiting for the server announce line")


def get_json(url: str) -> dict:
    with urllib.request.urlopen(url, timeout=10) as response:
        assert response.status == 200, f"{url} answered {response.status}"
        return json.loads(response.read())


def main() -> int:
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        filter(None, [os.path.join(REPO_ROOT, "src"), env.get("PYTHONPATH")])
    )
    env["PYTHONUNBUFFERED"] = "1"
    process = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--port", "0"],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
        env=env,
        cwd=REPO_ROOT,
    )
    try:
        base_url = wait_for_announce(process)

        health = get_json(f"{base_url}/healthz")
        assert health["status"] == "ok", health
        print(f"smoke: /healthz ok (shards={health['registry']['shards']})")

        ranked = get_json(
            f"{base_url}/rank?tenant=alice&context=Weekend&context=Breakfast&top_k=3"
        )
        assert ranked["tenant"] == "alice", ranked
        assert ranked["items"], f"empty ranking: {ranked}"
        top = ranked["items"][0]
        assert top["document"] == "channel5_news", ranked
        assert abs(top["score"] - 0.6006) <= 1e-9, ranked
        print(f"smoke: /rank ok (top={top['document']} score={top['score']})")

        metrics = get_json(f"{base_url}/metrics")
        assert metrics["outcomes"].get("ok", 0) >= 1, metrics
        print("smoke: /metrics ok")
    finally:
        process.send_signal(signal.SIGINT)
        try:
            code = process.wait(timeout=15)
        except subprocess.TimeoutExpired:
            process.kill()
            raise SystemExit("server did not shut down within 15s of SIGINT")
    assert code == 0, f"server exited {code} on SIGINT"
    print("smoke: clean shutdown ok")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
