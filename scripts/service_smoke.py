"""End-to-end smoke of the serving gateway, as CI runs it.

Six phases, each a real ``python -m repro serve`` subprocess on an
ephemeral port.  Every phase exercises the default **event-loop
gateway** (``--gateway aio``); the last phase is a thread-per-
connection canary (``--gateway threads``) proving the fallback wire
still serves:

1. **Single process** — waits for the announce line, hits ``/healthz``
   and ``/rank``, asserts a ranked JSON body with the paper's Table 1
   winner, asserts the repeated request is served from the response
   cache with identical scores, then shuts down cleanly (SIGINT,
   bounded wait).
2. **Fleet** (``--workers 2``) — parses the per-worker pid announce
   lines, asserts ranked JSON comes back from the shared port and that
   ``/healthz`` identifies fleet workers, SIGINTs the parent, and
   asserts exit 0 with **no orphaned child processes** left behind.
3. **Chaos fleet** — a 2-worker fleet with ``REPRO_FAULT_KILL_EVERY``
   injected so workers SIGKILL themselves every few responses; ranked
   answers must keep flowing through the kill/respawn churn, ``/readyz``
   must stay ready (respawned slots are not fenced), and shutdown must
   again leave no orphans.
4. **Snapshot boot** — ``repro snapshot build`` writes a world snapshot,
   ``snapshot inspect`` verifies it, then a 2-worker fleet boots with
   ``--snapshot``: ``/healthz`` must report a snapshot-loaded world
   (never a rebuild), ranked answers must match Table 1 exactly, and
   after SIGKILLing a worker the respawned slot must answer again —
   still snapshot-loaded.
5. **Batching** — boots with ``--batch-max-size 8``, drives herd
   rounds of 8 concurrent cross-tenant requests sharing one novel
   context each, asserts identical scores within every round, a
   positive ``/metrics`` coalesce ratio, and a clean SIGTERM drain
   with a herd still queued in the batching window.
6. **Threading canary** — ``--gateway threads``: the Table 1 winner,
   an un-attached ``/metrics`` gateway section, and a clean shutdown
   through the legacy thread-per-connection wire.

Both long-lived phases also assert the liveness/readiness split:
``/healthz`` says "the process is up", ``/readyz`` says "this worker
is willing to take traffic".

Exit code 0 only if every step held.
"""

from __future__ import annotations

import http.client
import json
import os
import re
import signal
import subprocess
import sys
import threading
import time
import urllib.request

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
ANNOUNCE = "repro serve: listening on "
WORKER_LINE = re.compile(r"repro serve: fleet worker (\d+) pid (\d+)")


def spawn(*extra_args: str, extra_env: dict | None = None) -> subprocess.Popen:
    env = dict(os.environ)
    env.update(extra_env or {})
    env["PYTHONPATH"] = os.pathsep.join(
        filter(None, [os.path.join(REPO_ROOT, "src"), env.get("PYTHONPATH")])
    )
    env["PYTHONUNBUFFERED"] = "1"
    return subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--port", "0", *extra_args],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
        env=env,
        cwd=REPO_ROOT,
    )


def wait_for_announce(process: subprocess.Popen) -> str:
    """The base URL from the server's announce line (bounded wait)."""
    deadline = time.time() + 30
    assert process.stdout is not None
    while time.time() < deadline:
        line = process.stdout.readline()
        if not line:
            raise SystemExit(
                f"server exited before announcing (code {process.poll()})"
            )
        sys.stdout.write(line)
        if ANNOUNCE in line:
            return line.split(ANNOUNCE, 1)[1].split()[0]
    raise SystemExit("timed out waiting for the server announce line")


def collect_worker_pids(process: subprocess.Popen, expected: int) -> list[int]:
    """The pids from the fleet's per-worker announce lines."""
    deadline = time.time() + 30
    pids: list[int] = []
    assert process.stdout is not None
    while time.time() < deadline and len(pids) < expected:
        line = process.stdout.readline()
        if not line:
            raise SystemExit(
                f"server exited before announcing workers (code {process.poll()})"
            )
        sys.stdout.write(line)
        match = WORKER_LINE.search(line)
        if match:
            pids.append(int(match.group(2)))
    if len(pids) < expected:
        raise SystemExit(f"only saw {len(pids)}/{expected} worker announce lines")
    return pids


def get_json(url: str) -> dict:
    with urllib.request.urlopen(url, timeout=10) as response:
        assert response.status == 200, f"{url} answered {response.status}"
        return json.loads(response.read())


def shutdown(
    process: subprocess.Popen, what: str, sig: signal.Signals = signal.SIGINT
) -> None:
    process.send_signal(sig)
    try:
        code = process.wait(timeout=15)
    except subprocess.TimeoutExpired:
        process.kill()
        raise SystemExit(f"{what} did not shut down within 15s of {sig.name}")
    assert code == 0, f"{what} exited {code} on {sig.name}"


def assert_table1_winner(ranked: dict) -> dict:
    assert ranked["tenant"] == "alice", ranked
    assert ranked["items"], f"empty ranking: {ranked}"
    top = ranked["items"][0]
    assert top["document"] == "channel5_news", ranked
    assert abs(top["score"] - 0.6006) <= 1e-9, ranked
    return top


def smoke_single_process() -> None:
    process = spawn()
    try:
        base_url = wait_for_announce(process)

        health = get_json(f"{base_url}/healthz")
        assert health["status"] == "ok", health
        print(f"smoke: /healthz ok (shards={health['registry']['shards']})")

        ready = get_json(f"{base_url}/readyz")
        assert ready["status"] == "ready", ready
        assert ready["problems"] == [], ready
        print("smoke: /readyz ready, no problems")

        rank_url = (
            f"{base_url}/rank?tenant=alice&context=Weekend&context=Breakfast&top_k=3"
        )
        ranked = get_json(rank_url)
        top = assert_table1_winner(ranked)
        print(f"smoke: /rank ok (top={top['document']} score={top['score']})")

        repeat = get_json(rank_url)
        assert repeat.get("cached") is True, f"repeat not served from cache: {repeat}"
        assert len(repeat["items"]) == len(ranked["items"])
        for first, second in zip(ranked["items"], repeat["items"]):
            assert first["document"] == second["document"], (ranked, repeat)
            assert abs(first["score"] - second["score"]) <= 1e-9, (ranked, repeat)
        print("smoke: repeated /rank served from the response cache, scores identical")

        metrics = get_json(f"{base_url}/metrics")
        assert metrics["outcomes"].get("ok", 0) >= 1, metrics
        assert metrics["outcomes"].get("ok_cached", 0) >= 1, metrics
        assert metrics["cache"]["hits"] >= 1, metrics
        gateway = metrics["gateway"]
        assert gateway["kind"] == "aio", gateway
        assert gateway["requests"] >= 1, gateway
        print(
            "smoke: /metrics ok "
            f"(cache hits={metrics['cache']['hits']} "
            f"hit_ratio={metrics['cache']['hit_ratio']:.2f} "
            f"gateway={gateway['kind']})"
        )
    finally:
        shutdown(process, "server")
    print("smoke: clean shutdown ok")


def smoke_fleet(workers: int = 2) -> None:
    process = spawn("--workers", str(workers))
    try:
        base_url = wait_for_announce(process)
        worker_pids = collect_worker_pids(process, workers)
        print(f"smoke: fleet of {workers} announced (pids {worker_pids})")

        ranked = get_json(
            f"{base_url}/rank?tenant=alice&context=Weekend&context=Breakfast&top_k=3"
        )
        top = assert_table1_winner(ranked)
        print(f"smoke: fleet /rank ok (top={top['document']} score={top['score']})")

        health = get_json(f"{base_url}/healthz")
        assert health["worker"]["workers"] == workers, health
        assert health["worker"]["pid"] in worker_pids, (health, worker_pids)
        print(f"smoke: fleet /healthz ok (answered by pid {health['worker']['pid']})")

        ready = get_json(f"{base_url}/readyz")
        assert ready["status"] == "ready", ready
        assert ready["failed_workers"] == 0, ready
        print("smoke: fleet /readyz ready, no failed workers")
    finally:
        shutdown(process, "fleet")

    # No orphans: every announced worker must be gone shortly after the
    # parent exits.
    deadline = time.time() + 5
    remaining = set(worker_pids)
    while remaining and time.time() < deadline:
        for pid in list(remaining):
            try:
                os.kill(pid, 0)
            except ProcessLookupError:
                remaining.discard(pid)
        if remaining:
            time.sleep(0.05)
    assert not remaining, f"orphaned fleet workers after shutdown: {sorted(remaining)}"
    print("smoke: fleet clean shutdown ok, no orphan workers")


def smoke_chaos_fleet(workers: int = 2) -> None:
    """Workers SIGKILL themselves every few served responses; the fleet
    must keep answering through the churn and still die clean."""
    process = spawn(
        "--workers",
        str(workers),
        extra_env={"REPRO_FAULT_KILL_EVERY": "5"},
    )
    survivors: set[int] = set()
    try:
        base_url = wait_for_announce(process)
        worker_pids = collect_worker_pids(process, workers)
        survivors.update(worker_pids)
        print(f"smoke: chaos fleet of {workers} announced (pids {worker_pids})")

        rank_url = (
            f"{base_url}/rank?tenant=alice&context=Weekend&context=Breakfast&top_k=3"
        )
        answered = 0
        deadline = time.time() + 60
        # Enough requests that every worker self-kills at least once
        # (kill-every-5 across 2 workers), tolerating the resets the
        # kills cause mid-flight.
        while answered < 25 and time.time() < deadline:
            try:
                ranked = get_json(rank_url)
            except (OSError, http.client.HTTPException):
                # A self-kill can land mid-response (another thread of
                # the same worker trips the counter): connection reset
                # or truncated body while the slot respawns. Retry.
                time.sleep(0.1)
                continue
            assert_table1_winner(ranked)
            answered += 1
        assert answered >= 25, f"only {answered} ranked answers under chaos"
        print(f"smoke: {answered} ranked answers through kill/respawn churn")

        # Respawned slots are healthy slots: readiness must hold.
        deadline = time.time() + 10
        ready = None
        while time.time() < deadline:
            try:
                ready = get_json(f"{base_url}/readyz")
                break
            except (OSError, http.client.HTTPException):
                time.sleep(0.1)
        assert ready is not None and ready["status"] == "ready", ready
        assert ready["failed_workers"] == 0, ready
        print("smoke: chaos fleet /readyz still ready (no slot fenced)")
    finally:
        shutdown(process, "chaos fleet")

    deadline = time.time() + 5
    while survivors and time.time() < deadline:
        for pid in list(survivors):
            try:
                os.kill(pid, 0)
            except ProcessLookupError:
                survivors.discard(pid)
        if survivors:
            time.sleep(0.05)
    assert not survivors, f"orphaned chaos workers after shutdown: {sorted(survivors)}"
    print("smoke: chaos fleet clean shutdown ok, no orphan workers")


def smoke_snapshot_boot(workers: int = 2) -> None:
    """Build a snapshot, boot the fleet from it, survive a worker kill."""
    import tempfile

    snapshot_dir = tempfile.mkdtemp(prefix="repro-smoke-snap-")
    snapshot_path = os.path.join(snapshot_dir, "world.snap")
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        filter(None, [os.path.join(REPO_ROOT, "src"), env.get("PYTHONPATH")])
    )
    for sub in (["build", snapshot_path], ["inspect", snapshot_path]):
        result = subprocess.run(
            [sys.executable, "-m", "repro", "snapshot", *sub],
            capture_output=True,
            text=True,
            env=env,
            cwd=REPO_ROOT,
        )
        assert result.returncode == 0, (sub, result.stdout, result.stderr)
    assert "digest" in result.stdout, result.stdout
    print(f"smoke: snapshot built and verified at {snapshot_path}")

    process = spawn("--workers", str(workers), "--snapshot", snapshot_path)
    try:
        base_url = wait_for_announce(process)
        worker_pids = collect_worker_pids(process, workers)
        print(f"smoke: snapshot fleet of {workers} announced (pids {worker_pids})")

        health = get_json(f"{base_url}/healthz")
        source = health["worker"].get("world_source")
        assert source in ("snapshot", "snapshot+shm", "attach"), health
        print(f"smoke: snapshot fleet world_source={source} (no rebuild)")

        ranked = get_json(
            f"{base_url}/rank?tenant=alice&context=Weekend&context=Breakfast&top_k=3"
        )
        top = assert_table1_winner(ranked)
        print(f"smoke: snapshot fleet /rank ok (top={top['document']} score={top['score']})")

        # Kill one worker hard; the respawned slot must come back
        # serving from the same pre-loaded snapshot, never a rebuild.
        os.kill(worker_pids[0], signal.SIGKILL)
        deadline = time.time() + 30
        recovered = None
        while time.time() < deadline:
            try:
                recovered = get_json(
                    f"{base_url}/rank?tenant=alice&context=Weekend"
                    "&context=Breakfast&top_k=3"
                )
                health = get_json(f"{base_url}/healthz")
                if health["worker"]["pid"] != worker_pids[0]:
                    break
            except (OSError, http.client.HTTPException):
                time.sleep(0.1)
        assert recovered is not None, "no ranked answer after worker kill"
        assert_table1_winner(recovered)
        assert health["worker"].get("world_source") in (
            "snapshot",
            "snapshot+shm",
            "attach",
        ), health
        print("smoke: killed worker respawned, still snapshot-loaded, Table 1 holds")
    finally:
        shutdown(process, "snapshot fleet")
    print("smoke: snapshot fleet clean shutdown ok")


def smoke_batching() -> None:
    """Boot with micro-batching on, drive cross-tenant herds so
    concurrent requests coalesce, then drain cleanly on SIGTERM with
    a herd still in flight."""
    process = spawn(
        "--batch-max-size",
        "8",
        # Wide window so the final mid-flight herd is provably queued
        # when SIGTERM lands; full batches still flush immediately.
        "--batch-max-wait-us",
        "300000",
        "--cache",
        "none",
    )
    try:
        base_url = wait_for_announce(process)

        ranked = get_json(
            f"{base_url}/rank?tenant=alice&context=Weekend&context=Breakfast&top_k=3"
        )
        assert_table1_winner(ranked)
        print("smoke: batching server /rank ok (Table 1 winner holds)")

        def herd(tenants: list[str], context: str) -> list[dict]:
            bodies: list[dict | None] = [None] * len(tenants)

            def hit(index: int, tenant: str) -> None:
                bodies[index] = get_json(
                    f"{base_url}/rank?tenant={tenant}&context={context}&top_k=3"
                )

            threads = [
                threading.Thread(target=hit, args=(index, tenant))
                for index, tenant in enumerate(tenants)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=30)
                assert not thread.is_alive(), "herd request never returned"
            assert all(body is not None for body in bodies), bodies
            return bodies  # type: ignore[return-value]

        # Three herd rounds: 8 distinct tenants share one novel context
        # per round, so every request misses the view caches but its
        # in-flight mates coalesce.  Coalescing must not change answers:
        # identical scores across the round's tenants.
        tenants = [f"herd_{index}" for index in range(8)]
        for round_no in range(3):
            bodies = herd(tenants, f"Weekend:0.{31 + round_no}")
            reference = [(item["document"], item["score"]) for item in bodies[0]["items"]]
            assert reference, bodies[0]
            for body in bodies[1:]:
                got = [(item["document"], item["score"]) for item in body["items"]]
                assert got == reference, (reference, got)
        print("smoke: 3 herd rounds of 8 concurrent tenants, scores identical per round")

        metrics = get_json(f"{base_url}/metrics")
        batching = metrics["batching"]
        assert batching["enabled"] is True, batching
        assert batching["batched_requests"] >= 8, batching
        assert batching["coalesce_ratio"] > 0.0, batching
        print(
            "smoke: /metrics batching on "
            f"(batched_requests={batching['batched_requests']} "
            f"coalesce_ratio={batching['coalesce_ratio']:.2f})"
        )

        # Clean SIGTERM drain: launch one more herd, give the threads a
        # beat to connect (the wide window keeps them queued), then
        # signal.  Every in-flight request must still get its answer
        # and the process must exit 0.
        drain_bodies: list[dict | None] = [None] * 4

        def drain_hit(index: int) -> None:
            drain_bodies[index] = get_json(
                f"{base_url}/rank?tenant=drain_{index}&context=Weekend:0.97&top_k=3"
            )

        drain_threads = [
            threading.Thread(target=drain_hit, args=(index,)) for index in range(4)
        ]
        for thread in drain_threads:
            thread.start()
        time.sleep(0.1)
        shutdown(process, "batching server", sig=signal.SIGTERM)
        for thread in drain_threads:
            thread.join(timeout=10)
            assert not thread.is_alive(), "drain request never returned"
        assert all(body is not None for body in drain_bodies), drain_bodies
        assert all(body["items"] for body in drain_bodies), drain_bodies
        print("smoke: SIGTERM drained 4 in-flight herd requests, clean exit")
    finally:
        if process.poll() is None:
            shutdown(process, "batching server")


def smoke_threads_canary() -> None:
    """The legacy thread-per-connection gateway still serves."""
    process = spawn("--gateway", "threads")
    try:
        base_url = wait_for_announce(process)

        ranked = get_json(
            f"{base_url}/rank?tenant=alice&context=Weekend&context=Breakfast&top_k=3"
        )
        top = assert_table1_winner(ranked)
        print(f"smoke: threads canary /rank ok (top={top['document']})")

        metrics = get_json(f"{base_url}/metrics")
        assert metrics["gateway"] == {"attached": False}, metrics["gateway"]
        print("smoke: threads canary /metrics gateway section un-attached")
    finally:
        shutdown(process, "threads canary")
    print("smoke: threads canary clean shutdown ok")


PHASES = {
    "single": smoke_single_process,
    "fleet": smoke_fleet,
    "chaos": smoke_chaos_fleet,
    "snapshot": smoke_snapshot_boot,
    "batch": smoke_batching,
    "threads": smoke_threads_canary,
}


def main(argv: list[str]) -> int:
    """Run the named phases (all of them with no arguments)."""
    names = argv or list(PHASES)
    unknown = [name for name in names if name not in PHASES]
    if unknown:
        raise SystemExit(f"unknown smoke phase(s) {unknown}; choose from {list(PHASES)}")
    for name in names:
        PHASES[name]()
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
